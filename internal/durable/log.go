package durable

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/media"
	"repro/internal/metrics"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("durable: log closed")

// Options configures Open.
type Options struct {
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval tick (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rolls the active segment past this size
	// (default 8 MiB). Rolls always fsync, so SyncNever's exposure is
	// bounded by one segment.
	SegmentBytes int64
	// SnapshotBytes triggers a background snapshot (and compaction) once
	// the un-snapshotted WAL grows past it. Default 64 MiB; negative
	// disables automatic snapshots.
	SnapshotBytes int64
}

func (o *Options) fillDefaults() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 64 << 20
	}
}

// Stats summarizes a log's activity since Open.
type Stats struct {
	// Records and AppendedBytes count WAL appends by this process.
	Records       int64
	AppendedBytes int64
	// WALBytes is the live WAL not yet covered by a snapshot.
	WALBytes int64
	// ActiveSegment is the sequence number of the segment being
	// appended to.
	ActiveSegment uint64
	// Snapshots counts snapshots taken; LastSnapshotBytes sizes the
	// most recent one.
	Snapshots         int64
	LastSnapshotBytes int64
}

// Log is the durability layer: an append-only WAL plus snapshots over one
// data directory. It implements the mutation-journal interfaces of
// media.Store and ddbms.DB, so attaching it to the recovered state makes
// every subsequent mutation durable. One process may hold a directory's
// log at a time; Open does not lock, it trusts the deployment.
//
// Append errors are sticky: after the first IO failure every further
// append fails and Err reports it, so a server can refuse to acknowledge
// mutations it could not make durable instead of silently dropping them.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	seq      uint64 // active segment sequence
	segBytes int64  // bytes in the active segment
	walBytes int64  // live WAL bytes not covered by a snapshot
	snapDebt int64  // auto-snapshot backoff: walBytes level of the last failure
	dirty    bool   // appended since the last fsync
	err      error  // sticky first append failure
	closed   bool

	st   *State            // live state, snapshotted on demand
	docs map[string][]byte // binary of registered documents, for dedupe + snapshot

	snapshotting atomic.Bool
	snapErr      error // last background-snapshot failure
	snapWG       sync.WaitGroup

	stopSync  chan struct{}
	syncDone  chan struct{}
	closeOnce sync.Once
	closeErr  error

	records   atomic.Int64
	appended  atomic.Int64
	snapshots atomic.Int64
	snapBytes atomic.Int64

	// Mirrored instruments (Instrument); nil when uninstrumented. They
	// move together with the Stats counters above.
	mAppendSec *metrics.Histogram
	mAppends   *metrics.Counter
	mWALBytes  *metrics.Gauge
	mSnapshots *metrics.Counter
	mSnapBytes *metrics.Gauge
}

// Open recovers dir (creating it if needed) and returns the log plus the
// recovered state. The caller wires the state into its server and then
// attaches the log as the store's and database's journal; mutations made
// before attaching are not captured. A torn final record — the residue of
// a crash mid-append — is truncated away; corrupt records fail recovery
// with an error matching ErrCorrupt.
func Open(dir string, opts Options) (*Log, *State, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	st, docs, walBytes, maxSeq, err := recoverDir(dir, true)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		seq:      maxSeq, // rollLocked moves to maxSeq+1
		walBytes: walBytes,
		st:       st,
		docs:     docs,
	}
	l.mu.Lock()
	err = l.rollLocked()
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	// Finish any compaction a previous process started but did not
	// complete, and clear abandoned snapshot temp files.
	l.removeCovered()
	if opts.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, st, nil
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// Err reports the sticky append failure, nil while the log is healthy.
// Servers consult it before acknowledging a mutation.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats reports activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	walBytes, seq := l.walBytes, l.seq
	l.mu.Unlock()
	return Stats{
		Records:           l.records.Load(),
		AppendedBytes:     l.appended.Load(),
		WALBytes:          walBytes,
		ActiveSegment:     seq,
		Snapshots:         l.snapshots.Load(),
		LastSnapshotBytes: l.snapBytes.Load(),
	}
}

// fail records the first append error; later appends return it.
func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = err
	}
}

// rollLocked fsyncs and closes the active segment (if any) and opens the
// next one. Rolling always syncs, so even SyncNever bounds its exposure
// to one segment.
func (l *Log) rollLocked() error {
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	l.seq++
	path := filepath.Join(l.dir, walName(l.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := fsio.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 64<<10)
	l.segBytes = 0
	return nil
}

// syncLocked flushes buffered records and fsyncs the active segment.
func (l *Log) syncLocked() error {
	if l.bw != nil {
		if err := l.bw.Flush(); err != nil {
			return err
		}
	}
	if l.dirty && l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.dirty = false
	}
	return nil
}

// Sync forces buffered records to stable storage under any policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if err := l.syncLocked(); err != nil {
		l.fail(err)
		return err
	}
	return nil
}

// appendLocked frames and writes one record under l.mu, honouring the
// sync policy, and reports whether the auto-snapshot threshold tripped.
func (l *Log) appendLocked(op byte, fields ...[]byte) (snapDue bool, err error) {
	if l.mAppendSec != nil {
		start := time.Now()
		defer func() {
			if err == nil {
				// Append lag: framing, the write syscall, and whatever
				// fsync the policy demanded — the full delay a mutation
				// waits before it may be acknowledged.
				l.mAppendSec.Observe(time.Since(start))
				l.mAppends.Inc()
				l.mWALBytes.Set(l.walBytes)
			}
		}()
	}
	if l.closed {
		return false, ErrClosed
	}
	if l.err != nil {
		return false, l.err
	}
	frame := encodeFrame(op, fields...)
	if len(frame)-frameHeaderSize > maxRecordBytes {
		// A record past the replayer's size bound must never reach the
		// log: it would be journaled and acknowledged now, then rejected
		// as corrupt on every future boot — bricking the directory.
		// Sticky, like any other append failure: the server stops
		// acknowledging rather than diverge from the log.
		err := fmt.Errorf("durable: record of %d bytes exceeds the %d-byte limit",
			len(frame)-frameHeaderSize, maxRecordBytes)
		l.fail(err)
		return false, err
	}
	if l.segBytes > 0 && l.segBytes+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			l.fail(err)
			return false, err
		}
	}
	if _, err := l.bw.Write(frame); err != nil {
		l.fail(err)
		return false, err
	}
	l.dirty = true
	l.segBytes += int64(len(frame))
	l.walBytes += int64(len(frame))
	l.records.Add(1)
	l.appended.Add(int64(len(frame)))
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.fail(err)
			return false, err
		}
	} else {
		// The record must reach the kernel before the mutation is
		// acknowledged: a plain write syscall (no fsync) is what makes
		// SIGKILL lossless under every policy — only a machine crash
		// can take what the interval/never policies have not yet
		// fsynced.
		if err := l.bw.Flush(); err != nil {
			l.fail(err)
			return false, err
		}
	}
	return l.opts.SnapshotBytes > 0 &&
		l.walBytes-l.snapDebt >= l.opts.SnapshotBytes, nil
}

// append is the one-shot wrapper around appendLocked for callers that
// hold no log state of their own.
func (l *Log) append(op byte, fields ...[]byte) error {
	l.mu.Lock()
	snapDue, err := l.appendLocked(op, fields...)
	l.mu.Unlock()
	if snapDue {
		l.snapshotAsync()
	}
	return err
}

// syncLoop is the SyncInterval background flusher.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && l.dirty {
				if err := l.syncLocked(); err != nil {
					l.fail(err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Close flushes, fsyncs and closes the log. Safe to call more than once;
// it reports the first failure among the sticky append error, the final
// flush, and any background snapshot failure.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		// Mark closed first: snapshotAsync's Add checks the flag under
		// l.mu, so no Add can race the Wait below, and an in-flight
		// snapshot finishes (and records its error) before closeErr is
		// computed.
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		if l.stopSync != nil {
			close(l.stopSync)
			<-l.syncDone
		}
		l.snapWG.Wait()
		l.mu.Lock()
		ferr := l.syncLocked()
		var cerr error
		if l.f != nil {
			cerr = l.f.Close()
			l.f = nil
		}
		for _, err := range []error{l.err, ferr, cerr, l.snapErr} {
			if err != nil {
				l.closeErr = err
				break
			}
		}
		l.mu.Unlock()
	})
	return l.closeErr
}

// --- mutation journal -------------------------------------------------

// JournalPutBlock records a block put (media.Journal). Failures are
// sticky: the block is in memory but the server must stop acknowledging.
// The register flag in the record is always 0 — name registrations
// journal as their own recName records (see media.Journal) — but replay
// still honours a set flag for compatibility.
func (l *Log) JournalPutBlock(b *media.Block) {
	desc, err := encodeDescriptor(b.Descriptor)
	if err != nil {
		l.mu.Lock()
		l.fail(fmt.Errorf("durable: block %q descriptor: %w", b.Name, err))
		l.mu.Unlock()
		return
	}
	_ = l.append(recPutBlk,
		[]byte(b.ID), []byte(b.Name), []byte(b.Medium.String()), desc, b.Payload, []byte{0})
}

// JournalDeleteBlock records a block delete (media.Journal).
func (l *Log) JournalDeleteBlock(id string) {
	_ = l.append(recDelBlk, []byte(id))
}

// JournalRegisterName records a name registration (media.Journal).
func (l *Log) JournalRegisterName(name, id string) {
	_ = l.append(recName, []byte(name), []byte(id))
}

// JournalPutDescriptor records a descriptor upsert (ddbms.Journal).
func (l *Log) JournalPutDescriptor(id string, desc attr.List) {
	data, err := encodeDescriptor(desc)
	if err != nil {
		l.mu.Lock()
		l.fail(fmt.Errorf("durable: descriptor %q: %w", id, err))
		l.mu.Unlock()
		return
	}
	_ = l.append(recPutDesc, []byte(id), data)
}

// JournalDeleteDescriptor records a descriptor delete (ddbms.Journal).
func (l *Log) JournalDeleteDescriptor(id string) {
	_ = l.append(recDelDesc, []byte(id))
}

// PutDoc records a document registration, deduping unchanged re-puts (a
// preloaded corpus re-registered on every boot appends nothing).
func (l *Log) PutDoc(name string, d *core.Document) error {
	data, err := codec.EncodeBinary(d)
	if err != nil {
		// Sticky: the document is registered in memory but cannot reach
		// the log, so the server must stop acknowledging.
		l.mu.Lock()
		l.fail(fmt.Errorf("durable: document %q: %w", name, err))
		l.mu.Unlock()
		return err
	}
	l.mu.Lock()
	if prev, ok := l.docs[name]; ok && bytes.Equal(prev, data) {
		l.mu.Unlock()
		return nil
	}
	snapDue, err := l.appendLocked(recPutDoc, []byte(name), data)
	if err == nil {
		l.docs[name] = data
		l.st.Docs[name] = d.Clone()
	}
	l.mu.Unlock()
	if snapDue {
		l.snapshotAsync()
	}
	return err
}

// DelDoc records a document removal.
func (l *Log) DelDoc(name string) error {
	l.mu.Lock()
	if _, ok := l.docs[name]; !ok {
		l.mu.Unlock()
		return nil
	}
	snapDue, err := l.appendLocked(recDelDoc, []byte(name))
	if err == nil {
		delete(l.docs, name)
		delete(l.st.Docs, name)
	}
	l.mu.Unlock()
	if snapDue {
		l.snapshotAsync()
	}
	return err
}

// --- snapshots and compaction ----------------------------------------

// Snapshot writes the live state to a new snapshot file and compacts the
// WAL segments it covers. Concurrent with appends: a mutation racing the
// capture may land in both the snapshot and the tail — harmless, because
// records are full-state puts and deletes, so replaying the tail over the
// snapshot converges on the live state. If a snapshot is already in
// flight, Snapshot returns nil without taking another.
func (l *Log) Snapshot() error {
	if !l.snapshotting.CompareAndSwap(false, true) {
		return nil
	}
	defer l.snapshotting.Store(false)
	return l.snapshot()
}

// snapshotAsync runs Snapshot on a background goroutine, keeping the
// append path fast; failures park in snapErr (surfaced on Close) and
// back the auto-trigger off by one threshold so a sick disk is not
// hammered with a snapshot attempt per append.
func (l *Log) snapshotAsync() {
	if !l.snapshotting.CompareAndSwap(false, true) {
		return
	}
	// The Add must be ordered before Close's Wait: both run under l.mu,
	// and Close marks closed before waiting, so an Add that sees the
	// log open strictly precedes the Wait.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.snapshotting.Store(false)
		return
	}
	l.snapWG.Add(1)
	l.mu.Unlock()
	go func() {
		defer l.snapWG.Done()
		defer l.snapshotting.Store(false)
		// A snapshot overtaken by Close is not a failure worth
		// surfacing — the WAL it would have compacted is intact.
		if err := l.snapshot(); err != nil && err != ErrClosed {
			l.mu.Lock()
			l.snapErr = err
			l.snapDebt = l.walBytes
			l.mu.Unlock()
		}
	}()
}

func (l *Log) snapshot() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.syncLocked(); err != nil {
		l.fail(err)
		l.mu.Unlock()
		return err
	}
	cover := l.seq
	if err := l.rollLocked(); err != nil {
		l.fail(err)
		l.mu.Unlock()
		return err
	}
	// Everything in segments ≤ cover is what the snapshot will absorb;
	// the counter is settled only once the snapshot lands, so a failed
	// write leaves the live-WAL accounting (and the auto-trigger) intact.
	covered := l.walBytes
	docs := make(map[string][]byte, len(l.docs))
	for name, data := range l.docs {
		docs[name] = data
	}
	st := l.st
	l.mu.Unlock()

	size, err := writeSnapshot(l.dir, cover, st, docs)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.walBytes -= covered
	l.snapDebt = 0
	// A landed snapshot supersedes any earlier failure: the WAL it
	// could not compact then is compacted now, so Close must not keep
	// reporting the stale error.
	l.snapErr = nil
	if l.mWALBytes != nil {
		l.mWALBytes.Set(l.walBytes)
	}
	l.mu.Unlock()
	l.snapshots.Add(1)
	l.snapBytes.Store(size)
	if l.mSnapshots != nil {
		l.mSnapshots.Inc()
		l.mSnapBytes.Set(size)
	}
	l.removeCovered()
	return nil
}

// writeSnapshot serializes the state into snap-<seq>.snap via a temp file
// and an atomic rename.
func writeSnapshot(dir string, seq uint64, st *State, docs map[string][]byte) (int64, error) {
	final := filepath.Join(dir, snapName(seq))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var size int64
	write := func(op byte, fields ...[]byte) error {
		frame := encodeFrame(op, fields...)
		size += int64(len(frame))
		_, err := bw.Write(frame)
		return err
	}

	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	var werr error
	for _, name := range names {
		if werr = write(recPutDoc, []byte(name), docs[name]); werr != nil {
			break
		}
	}
	if werr == nil {
		// Blocks go in detached (no name registration): they iterate in
		// arbitrary order, while the registry's name→id pointers depend
		// on mutation order. The recName records that follow rebuild the
		// registry exactly.
		//
		// Chunk-indexed blocks snapshot as manifests: each unique chunk is
		// written once (recChunk, first-containing-block order) and the
		// block itself as a recPutBlkC referencing the hashes, so a
		// dup-heavy corpus snapshots near its unique size. Blocks below
		// the chunk threshold — or whose manifest cannot be fully
		// resolved against the live chunk index — keep the plain
		// recPutBlk form.
		chunksWritten := make(map[media.ChunkHash]bool)
		st.Store.Each(func(b *media.Block) bool {
			desc, err := encodeDescriptor(b.Descriptor)
			if err != nil {
				werr = fmt.Errorf("block %q descriptor: %w", b.Name, err)
				return false
			}
			if hashes, ok := st.Store.Manifest(b.ID); ok {
				manifest := make([]byte, 0, len(hashes)*len(hashes[0]))
				resolved := true
				for _, h := range hashes {
					data, ok := st.Store.GetChunk(h)
					if !ok {
						resolved = false
						break
					}
					if !chunksWritten[h] {
						if werr = write(recChunk, h[:], data); werr != nil {
							return false
						}
						chunksWritten[h] = true
					}
					manifest = append(manifest, h[:]...)
				}
				if resolved {
					werr = write(recPutBlkC,
						[]byte(b.ID), []byte(b.Name), []byte(b.Medium.String()), desc, manifest, []byte{0})
					return werr == nil
				}
			}
			werr = write(recPutBlk,
				[]byte(b.ID), []byte(b.Name), []byte(b.Medium.String()), desc, b.Payload, []byte{0})
			return werr == nil
		})
	}
	if werr == nil {
		for _, name := range st.Store.Names() {
			id, ok := st.Store.Resolve(name)
			if !ok {
				continue
			}
			if werr = write(recName, []byte(name), []byte(id)); werr != nil {
				break
			}
		}
	}
	if werr == nil {
		for _, id := range st.DB.IDs() {
			desc, ok := st.DB.Get(id)
			if !ok {
				continue
			}
			data, err := encodeDescriptor(desc)
			if err != nil {
				werr = fmt.Errorf("descriptor %q: %w", id, err)
				break
			}
			if werr = write(recPutDesc, []byte(id), data); werr != nil {
				break
			}
		}
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("durable: snapshot: %w", werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := fsio.SyncDir(dir); err != nil {
		return 0, fmt.Errorf("durable: snapshot: %w", err)
	}
	return size, nil
}

// removeCovered deletes WAL segments and snapshots made obsolete by the
// newest snapshot, plus abandoned temp files. Best-effort: leftovers are
// retried on the next snapshot or Open.
func (l *Log) removeCovered() {
	listing, err := listDir(l.dir)
	if err != nil {
		return
	}
	var snapSeq uint64
	if n := len(listing.snapSeqs); n > 0 {
		snapSeq = listing.snapSeqs[n-1]
	}
	for _, seq := range listing.walSeqs {
		if seq <= snapSeq {
			os.Remove(filepath.Join(l.dir, walName(seq)))
		}
	}
	for _, seq := range listing.snapSeqs {
		if seq < snapSeq {
			os.Remove(filepath.Join(l.dir, snapName(seq)))
		}
	}
	for _, name := range listing.tmp {
		os.Remove(filepath.Join(l.dir, name))
	}
}
