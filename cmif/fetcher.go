package cmif

import (
	"context"
	"errors"
	"fmt"
)

// Fetcher is the transport-neutral read surface of the facade: everything
// a consumer needs to resolve a document's content — batched block and
// descriptor fetches, document retrieval, live subscription — without
// committing to where the bytes come from. *Client implements it against
// an origin server, *Edge against a local disk cache that reads through
// to an origin, and Chain composes any number of layers into one
// fall-through lookup path. Pipeline (WithFetcher), PrefetchVia and the
// cmd/ tools all consume this interface rather than *Client, so a
// presentation can be resolved against an origin, an edge, or a purely
// local store with the same code.
type Fetcher interface {
	// Blocks fetches many blocks at once. The result aligns with names;
	// an unresolvable name yields a nil entry (partial results are not an
	// error).
	Blocks(ctx context.Context, names []string) ([]*Block, error)
	// Descriptors fetches only the attribute lists of the named blocks.
	// Unresolvable names are absent from the result map.
	Descriptors(ctx context.Context, names []string) (map[string]AttrList, error)
	// OpenDoc fetches the document registered under name. A missing name
	// matches ErrNotFound under errors.Is.
	OpenDoc(ctx context.Context, name string) (*Document, error)
	// Subscribe opens a live replica of the document registered under
	// name (wire protocol v3). Sources that cannot push changes fail
	// with ErrUnsupported.
	Subscribe(ctx context.Context, name string, opts ...SubscribeOption) (*Subscription, error)
}

// subscribeConfig collects the subscription options.
type subscribeConfig struct {
	subtree string
	sched   []ScheduleOption
}

// SubscribeOption configures Fetcher.Subscribe.
type SubscribeOption func(*subscribeConfig)

// WithSubtree restricts the subscription's delta stream to changes
// affecting the subtree rooted at the absolute path (for example
// "/news/story-3"). The opening snapshot is still the whole document —
// replicas stay structurally complete — but deltas only carry change
// records whose pre-edit path or destination lies inside the subtree or
// on the ancestor chain above it (an ancestor's removal or attribute
// change affects everything below). Generations still advance with every
// server-side edit, so a filtered delta may carry zero records; the
// replica is authoritative only within the watched subtree. "" or "/"
// watches everything (the default). An edge serving one section of a
// large corpus leases just that section's change traffic.
func WithSubtree(path string) SubscribeOption {
	return func(c *subscribeConfig) { c.subtree = path }
}

// WithSubscribeSchedule forwards scheduling options to the Plan a
// subscription maintains over its replica (see Schedule).
func WithSubscribeSchedule(opts ...ScheduleOption) SubscribeOption {
	return func(c *subscribeConfig) { c.sched = append(c.sched, opts...) }
}

func subscribeConfigOf(opts []SubscribeOption) subscribeConfig {
	var cfg subscribeConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.subtree == "/" {
		cfg.subtree = ""
	}
	return cfg
}

// PrefetchVia resolves every external file the document references and
// fetches the blocks through f in batched round trips, returning a local
// store ready to back a Pipeline run (WithStore). Blocks the fetcher
// cannot resolve are simply absent from the store — constraint filtering
// reports them as missing data — so a partial corpus is not an error.
func PrefetchVia(ctx context.Context, f Fetcher, d *Document) (*Store, error) {
	store := NewStore()
	names := d.ExternalFiles()
	if len(names) == 0 {
		return store, nil
	}
	blocks, err := f.Blocks(ctx, names)
	if err != nil {
		return nil, err
	}
	for i, b := range blocks {
		if b == nil {
			continue
		}
		if b.Name != names[i] {
			// The source resolved an alias (a re-pointed or duplicate
			// name): register the block under the name the document
			// uses, or the pipeline would see it as missing.
			b = b.Clone()
			b.Name = names[i]
		}
		store.Put(b)
	}
	return store, nil
}

// chain is the Fetcher returned by Chain.
type chain struct {
	layers []Fetcher
}

// Chain composes fetchers into one fall-through lookup path: each
// request tries the layers in order, and whatever the earlier layers
// cannot resolve falls through to the later ones. Blocks and Descriptors
// merge partial results across layers — a name resolves wherever it
// first appears; OpenDoc and Subscribe return the first layer's answer,
// falling through on ErrNotFound (and, for Subscribe, ErrUnsupported).
// The canonical arrangement puts cheap local layers first and the origin
// last: Chain(localStore, edge, origin).
func Chain(fetchers ...Fetcher) Fetcher {
	layers := make([]Fetcher, 0, len(fetchers))
	for _, f := range fetchers {
		if f != nil {
			layers = append(layers, f)
		}
	}
	return &chain{layers: layers}
}

func (ch *chain) Blocks(ctx context.Context, names []string) ([]*Block, error) {
	result := make([]*Block, len(names))
	missing := len(names)
	var firstErr error
	for _, layer := range ch.layers {
		if missing == 0 {
			break
		}
		// Ask this layer only for what earlier layers left unresolved.
		want := make([]string, 0, missing)
		idx := make([]int, 0, missing)
		for i, b := range result {
			if b == nil {
				want = append(want, names[i])
				idx = append(idx, i)
			}
		}
		got, err := layer.Blocks(ctx, want)
		if err != nil {
			// A dead layer resolves nothing; later layers still get
			// their chance. The error surfaces only if every name a
			// healthy layer could have served stays missing.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for j, b := range got {
			if j >= len(idx) {
				break
			}
			if b != nil {
				result[idx[j]] = b
				missing--
			}
		}
	}
	if missing == len(names) && firstErr != nil {
		return nil, firstErr
	}
	return result, nil
}

func (ch *chain) Descriptors(ctx context.Context, names []string) (map[string]AttrList, error) {
	result := make(map[string]AttrList, len(names))
	var firstErr error
	for _, layer := range ch.layers {
		if len(result) == len(names) {
			break
		}
		want := make([]string, 0, len(names)-len(result))
		for _, n := range names {
			if _, ok := result[n]; !ok {
				want = append(want, n)
			}
		}
		got, err := layer.Descriptors(ctx, want)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for n, d := range got {
			result[n] = d
		}
	}
	if len(result) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return result, nil
}

func (ch *chain) OpenDoc(ctx context.Context, name string) (*Document, error) {
	err := error(ErrNotFound)
	for _, layer := range ch.layers {
		d, lerr := layer.OpenDoc(ctx, name)
		if lerr == nil {
			return d, nil
		}
		if errors.Is(lerr, ErrNotFound) || errors.Is(lerr, ErrUnsupported) {
			continue
		}
		err = lerr
	}
	return nil, err
}

func (ch *chain) Subscribe(ctx context.Context, name string, opts ...SubscribeOption) (*Subscription, error) {
	err := error(ErrUnsupported)
	for _, layer := range ch.layers {
		s, lerr := layer.Subscribe(ctx, name, opts...)
		if lerr == nil {
			return s, nil
		}
		if errors.Is(lerr, ErrNotFound) || errors.Is(lerr, ErrUnsupported) {
			continue
		}
		err = lerr
	}
	return nil, err
}

// storeFetcher adapts a local Store to the Fetcher interface.
type storeFetcher struct {
	store *Store
}

// StoreFetcher wraps a local block store as a read-only Fetcher: Blocks
// and Descriptors resolve against the store, OpenDoc and Subscribe
// always miss (ErrNotFound / ErrUnsupported). Useful as the first layer
// of a Chain, so already-materialized content short-circuits the
// network.
func StoreFetcher(s *Store) Fetcher { return &storeFetcher{store: s} }

func (sf *storeFetcher) Blocks(ctx context.Context, names []string) ([]*Block, error) {
	result := make([]*Block, len(names))
	for i, n := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if b, ok := sf.store.GetByName(n); ok {
			result[i] = b
		} else if b, ok := sf.store.Get(n); ok {
			result[i] = b
		}
	}
	return result, nil
}

func (sf *storeFetcher) Descriptors(ctx context.Context, names []string) (map[string]AttrList, error) {
	result := make(map[string]AttrList, len(names))
	blocks, err := sf.Blocks(ctx, names)
	if err != nil {
		return nil, err
	}
	for i, b := range blocks {
		if b != nil {
			result[names[i]] = b.Descriptor
		}
	}
	return result, nil
}

func (sf *storeFetcher) OpenDoc(ctx context.Context, name string) (*Document, error) {
	return nil, tag(fmt.Errorf("cmif: store fetcher holds no documents: %q", name), ErrNotFound)
}

func (sf *storeFetcher) Subscribe(ctx context.Context, name string, opts ...SubscribeOption) (*Subscription, error) {
	return nil, tag(fmt.Errorf("cmif: store fetcher cannot subscribe: %q", name), ErrUnsupported)
}
