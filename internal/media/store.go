package media

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// storeShards is the lock-stripe count. A power of two keeps the modulo a
// mask; 16 stripes is enough that 16 concurrent clients rarely collide on a
// mutex while keeping the per-store footprint trivial.
const storeShards = 16

// shardOf maps a key to its stripe by FNV-1a.
func shardOf(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32() & (storeShards - 1)
}

// blockShard holds the blocks whose content address hashes to one stripe.
type blockShard struct {
	mu   sync.RWMutex
	byID map[string]*Block
}

// nameShard holds the name registrations that hash to one stripe. Names and
// ids stripe independently: a name and the id it points to usually live in
// different shards, and no operation ever holds a block-shard lock and a
// name-shard lock at the same time.
type nameShard struct {
	mu     sync.RWMutex
	byName map[string]string // name -> id
}

// Journal observes store mutations once attached with SetJournal. The
// durability layer (internal/durable) implements it to write-ahead-log
// every change; hooks fire only for mutations that changed state, so
// idempotent re-puts of an already-stored corpus journal nothing.
//
// Hooks run while the mutated shard's lock is held: puts and deletes of
// one id reach the journal in block-map order, and every name
// registration — initial or re-point — journals as its own record inside
// the name-shard critical section, strictly after its block's put record
// (same goroutine). Recovery therefore can never resurrect a deleted
// block, unwind a re-point, or lose a registration to a concurrently
// compacting snapshot. (The cost: under an fsync-per-record journal
// policy, readers of the mutated shard wait out the fsync.)
type Journal interface {
	// JournalPutBlock records a block entering the store; the name
	// registration, if any, journals separately.
	JournalPutBlock(b *Block)
	// JournalDeleteBlock records a block delete (names swept with it).
	JournalDeleteBlock(id string)
	// JournalRegisterName records a name being pointed at a block.
	JournalRegisterName(name, id string)
}

// Store is a content-addressed block store with a name registry. It stands
// in for the paper's storage server: external nodes name blocks via their
// "file" attribute, and the store maps those names to descriptors and
// payloads. Safe for concurrent use.
//
// Internally the store is lock-striped: blocks shard by FNV of their
// content address and name registrations by FNV of the name, so concurrent
// readers and writers touching different blocks do not contend on a single
// mutex (the serialization the scaled-up storage server must avoid).
type Store struct {
	blocks [storeShards]blockShard
	names  [storeShards]nameShard

	// Content-defined dedupe index (dedupe.go): unique chunks and the
	// per-block manifests referencing them, both refcounted.
	chunks    [storeShards]chunkShard
	manifests [storeShards]manifestShard

	journal Journal

	// dedupeObserver, when set, observes every payload byte the chunk
	// index collapsed onto an existing entry (SetDedupeObserver).
	dedupeObserver func(sharedBytes int64)
}

// SetJournal attaches a mutation journal. Attach before serving: the call
// itself is not synchronized against concurrent mutations.
func (s *Store) SetJournal(j Journal) { s.journal = j }

// SetDedupeObserver attaches a callback fired with the byte count each
// time an incoming payload's chunks dedupe against already-indexed
// ones — the feed behind the cmif_bytes_saved_total{reason="dedupe"}
// counter. Attach before serving.
func (s *Store) SetDedupeObserver(fn func(sharedBytes int64)) { s.dedupeObserver = fn }

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.blocks {
		s.blocks[i].byID = make(map[string]*Block)
	}
	for i := range s.names {
		s.names[i].byName = make(map[string]string)
	}
	for i := range s.chunks {
		s.chunks[i].byHash = make(map[ChunkHash]*chunkEntry)
	}
	for i := range s.manifests {
		s.manifests[i].byID = make(map[string][]ChunkHash)
	}
	return s
}

// Put inserts a block, registering its name, and returns its content
// address. Re-putting identical content is idempotent; re-using a name for
// different content re-points the name.
func (s *Store) Put(b *Block) string { return s.putBlock(b, true, true) }

// PutOwned inserts a block, taking ownership instead of cloning: the
// caller must never mutate b, its payload or its descriptor afterwards
// (sharing one immutable descriptor across many PutOwned blocks is fine).
// register says whether b.Name enters the name registry — snapshot replay
// passes false and rebuilds the registry from its own records, in
// mutation order. Recovery uses this to rebuild large corpora without a
// defensive copy per block; everything else should use Put.
func (s *Store) PutOwned(b *Block, register bool) string {
	return s.putBlock(b, register, false)
}

// putBlock is the shared insertion path behind the Put variants.
func (s *Store) putBlock(b *Block, register, clone bool) string {
	bs := &s.blocks[shardOf(b.ID)]
	bs.mu.Lock()
	_, existed := bs.byID[b.ID]
	var stored *Block
	if !existed {
		stored = b
		if clone {
			stored = b.Clone()
		}
		bs.byID[b.ID] = stored
		// Journaled under the block-shard lock: puts and deletes of one
		// id reach the journal in map order (see Journal).
		if s.journal != nil {
			s.journal.JournalPutBlock(b)
		}
	}
	bs.mu.Unlock()
	if stored != nil {
		// Chunk-index outside the shard lock (hashing the payload is the
		// dominant cost). A Delete racing the indexing is resolved like
		// the name rollback below: whichever runs last unindexes.
		s.indexChunks(stored)
		bs.mu.RLock()
		_, alive := bs.byID[b.ID]
		bs.mu.RUnlock()
		if !alive {
			s.unindexChunks(b.ID)
		}
	}
	if register && b.Name != "" {
		ns := &s.names[shardOf(b.Name)]
		ns.mu.Lock()
		if prev, ok := ns.byName[b.Name]; !ok || prev != b.ID {
			ns.byName[b.Name] = b.ID
			// Every registration journals as its own record inside this
			// critical section — never inside the put record — so a
			// snapshot racing this put either sees the registration in
			// its name capture or finds the record in the un-compacted
			// tail; the registration cannot fall between.
			if s.journal != nil {
				s.journal.JournalRegisterName(b.Name, b.ID)
			}
		}
		ns.mu.Unlock()
		// A concurrent Delete of this id may have swept the name shards
		// before the registration above landed. Re-check the block and
		// roll the name back if it is gone, so no name ever dangles:
		// whichever of this re-check and the delete's sweep runs last
		// removes the registration. The journal stays consistent without
		// extra help: the delete's record was appended after this put's
		// (block-shard order), so replay also puts, then sweeps.
		bs.mu.RLock()
		_, alive := bs.byID[b.ID]
		bs.mu.RUnlock()
		if !alive {
			ns.mu.Lock()
			if ns.byName[b.Name] == b.ID {
				delete(ns.byName, b.Name)
			}
			ns.mu.Unlock()
		}
	}
	return b.ID
}

// RegisterName points name at an already-stored block's content address.
// It reports false when no block with that id exists (or name is empty).
func (s *Store) RegisterName(name, id string) bool {
	if name == "" {
		return false
	}
	bs := &s.blocks[shardOf(id)]
	bs.mu.RLock()
	_, ok := bs.byID[id]
	bs.mu.RUnlock()
	if !ok {
		return false
	}
	ns := &s.names[shardOf(name)]
	ns.mu.Lock()
	if ns.byName[name] != id {
		ns.byName[name] = id
		if s.journal != nil {
			s.journal.JournalRegisterName(name, id)
		}
	}
	ns.mu.Unlock()
	return true
}

// Get fetches a block by content address.
func (s *Store) Get(id string) (*Block, bool) {
	bs := &s.blocks[shardOf(id)]
	bs.mu.RLock()
	defer bs.mu.RUnlock()
	b, ok := bs.byID[id]
	if !ok {
		return nil, false
	}
	return b.Clone(), true
}

// GetByName fetches a block by registered name (the "file" attribute value).
func (s *Store) GetByName(name string) (*Block, bool) {
	id, ok := s.Resolve(name)
	if !ok {
		return nil, false
	}
	return s.Get(id)
}

// Resolve maps a name to its content address.
func (s *Store) Resolve(name string) (string, bool) {
	ns := &s.names[shardOf(name)]
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	id, ok := ns.byName[name]
	return id, ok
}

// Delete removes a block by id and any names pointing at it.
func (s *Store) Delete(id string) bool {
	bs := &s.blocks[shardOf(id)]
	bs.mu.Lock()
	_, ok := bs.byID[id]
	if ok {
		delete(bs.byID, id)
		// Journaled under the block-shard lock, mirroring putBlock.
		if s.journal != nil {
			s.journal.JournalDeleteBlock(id)
		}
	}
	bs.mu.Unlock()
	if !ok {
		return false
	}
	// Release the block's chunk references; entries reaching refcount
	// zero are dropped (dedupe GC).
	s.unindexChunks(id)
	for i := range s.names {
		ns := &s.names[i]
		ns.mu.Lock()
		for name, nid := range ns.byName {
			if nid == id {
				delete(ns.byName, name)
			}
		}
		ns.mu.Unlock()
	}
	return true
}

// Each calls fn once per stored block, stopping early when fn returns
// false. The pointers are the store's own copies: stored blocks are
// immutable (Put clones on the way in and nothing mutates them after), so
// fn may read them freely but must not modify or hold them past the call.
// Pointers are collected shard-by-shard under the read lock and fn runs
// outside it, so slow consumers (snapshot writers) do not stall writers.
func (s *Store) Each(fn func(b *Block) bool) {
	for i := range s.blocks {
		bs := &s.blocks[i]
		bs.mu.RLock()
		batch := make([]*Block, 0, len(bs.byID))
		for _, b := range bs.byID {
			batch = append(batch, b)
		}
		bs.mu.RUnlock()
		for _, b := range batch {
			if !fn(b) {
				return
			}
		}
	}
}

// Len reports the number of stored blocks.
func (s *Store) Len() int {
	total := 0
	for i := range s.blocks {
		bs := &s.blocks[i]
		bs.mu.RLock()
		total += len(bs.byID)
		bs.mu.RUnlock()
	}
	return total
}

// Names returns the registered names, sorted.
func (s *Store) Names() []string {
	var out []string
	for i := range s.names {
		ns := &s.names[i]
		ns.mu.RLock()
		for n := range ns.byName {
			out = append(out, n)
		}
		ns.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums payload sizes, the figure the paper contrasts with the
// "relatively small clusters of data (the attributes)".
func (s *Store) TotalBytes() int64 {
	var total int64
	for i := range s.blocks {
		bs := &s.blocks[i]
		bs.mu.RLock()
		for _, b := range bs.byID {
			total += int64(len(b.Payload))
		}
		bs.mu.RUnlock()
	}
	return total
}

// VerifyAll checks every stored block's content address.
func (s *Store) VerifyAll() error {
	for i := range s.blocks {
		bs := &s.blocks[i]
		bs.mu.RLock()
		for id, b := range bs.byID {
			if err := b.Verify(); err != nil {
				bs.mu.RUnlock()
				return fmt.Errorf("media: store entry %s: %w", id[:12], err)
			}
		}
		bs.mu.RUnlock()
	}
	return nil
}
