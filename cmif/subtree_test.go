package cmif

// Facade-level coverage for WithSubtree: a filtered Subscription opens
// with a structurally complete snapshot, stays generation-contiguous
// through foreign edits (empty deltas, no resyncs), and converges with
// the authoritative document inside the watched subtree while foreign
// subtrees are allowed to drift. The wire-level record filtering itself
// is pinned by internal/transport's subtree tests; this exercises the
// same contract through Client.Subscribe.

import (
	"context"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/units"
)

// subtreeTestDoc builds a two-section document whose leaves are all
// immediate (no external blocks), so an empty store serves it.
func subtreeTestDoc(t *testing.T) *Document {
	t.Helper()
	root := NewPar().SetName("news")

	pictures := NewSeq().SetName("pictures").
		SetAttr("channel", ID("subtitles"))
	for _, name := range []string{"pic-1", "pic-2"} {
		pictures.AddChild(NewImm([]byte(name)).SetName(name).
			SetAttr("duration", Qty(Sec(2))))
	}
	voice := NewImm([]byte("voice-over")).SetName("voice").
		SetAttr("channel", ID("subtitles")).
		SetAttr("duration", Qty(Sec(4)))
	root.Add(pictures, voice)

	doc, err := NewDocument(root)
	if err != nil {
		t.Fatal(err)
	}
	cd := NewChannelDict()
	cd.Define(Channel{Name: "subtitles", Medium: MediumText})
	doc.SetChannels(cd)
	return doc
}

func durationAt(t *testing.T, d *Document, path string) units.Quantity {
	t.Helper()
	n, err := d.ResolvePath(path)
	if err != nil {
		t.Fatalf("resolve %q: %v", path, err)
	}
	q, ok := d.DurationOf(n)
	if !ok {
		t.Fatalf("%q has no duration", path)
	}
	return q
}

func TestSubscribeWithSubtreeFacade(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addr := startLiveServer(t, "news", subtreeTestDoc(t), NewStore())

	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	full, err := c.Subscribe(ctx, "news")
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	filtered, err := c.Subscribe(ctx, "news", WithSubtree("/pictures"))
	if err != nil {
		t.Fatalf("Subscribe(WithSubtree): %v", err)
	}
	defer filtered.Close()

	// The opening snapshot is the whole document: the filtered replica
	// still resolves nodes outside its subtree.
	if _, err := filtered.Document().ResolvePath("/voice"); err != nil {
		t.Fatalf("filtered snapshot is not structurally complete: %v", err)
	}

	// An edit outside the subtree: both watchers advance to the same
	// authoritative generation (the filtered one via an empty delta),
	// but only the full replica reflects the change — a filtered
	// replica is authoritative only within its subtree.
	if _, err := c.SubmitEdit(ctx, "news",
		NewEditBatch().SetAttr("/voice", "duration", attr.Quantity(units.MS(4500)))); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := filtered.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if fg, gg := filtered.Generation(), full.Generation(); fg != gg {
		t.Fatalf("generations diverged: filtered %d, full %d", fg, gg)
	}
	if got := durationAt(t, full.Document(), "/voice"); got != units.MS(4500) {
		t.Fatalf("full replica /voice duration = %v, want 4500ms", got)
	}
	if got := durationAt(t, filtered.Document(), "/voice"); got != units.Sec(4) {
		t.Fatalf("filtered replica applied a foreign record: /voice duration = %v", got)
	}

	// An edit inside the subtree reaches the filtered replica with its
	// record, continuing exactly where the empty delta left off — no
	// gap, no resync.
	if _, err := c.SubmitEdit(ctx, "news",
		NewEditBatch().SetAttr("/pictures/pic-1", "duration", attr.Quantity(units.MS(2500)))); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := filtered.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if got := durationAt(t, filtered.Document(), "/pictures/pic-1"); got != units.MS(2500) {
		t.Fatalf("filtered replica missed an in-subtree edit: pic-1 duration = %v", got)
	}
	if fg, gg := filtered.Generation(), full.Generation(); fg != gg {
		t.Fatalf("generations diverged after in-subtree edit: filtered %d, full %d", fg, gg)
	}
	if n := filtered.Resyncs(); n != 0 {
		t.Fatalf("filtered subscription resynced %d times; the empty-delta chain must stay contiguous", n)
	}
}
