package core

import (
	"encoding/binary"
	"fmt"
)

// Change serialization: the Change log records edits as live *Node
// pointers, which cannot travel. A ChangeRecord is the wire form of one
// edit — path-addressed and self-contained, essentially a serialized
// edit operation. Records address nodes by their pre-edit paths, so a
// receiver holding a replica at the sender's generation can re-execute
// the record through internal/edit and land on a structurally identical
// document whose own change log advances exactly like the original's.
// That re-execution property is what makes server-push deltas drive
// incremental rescheduling on thousands of replicas: each watcher pays
// per-edit cost, never refetch-and-resolve.

// EditOp discriminates the edit operation a ChangeRecord re-executes.
// The values are wire-stable; never renumber.
type EditOp byte

const (
	// OpSetAttr sets attribute Name on the node at Path; Payload is the
	// binary-encoded value.
	OpSetAttr EditOp = 1
	// OpAddArc appends a synchronization arc to the node at Path;
	// Payload is the arc's binary-encoded attribute value.
	OpAddArc EditOp = 2
	// OpRemoveArc removes the arc at position Index from the node at
	// Path.
	OpRemoveArc EditOp = 3
	// OpInsert inserts a subtree (Payload, binary node encoding) under
	// the composite at Dest, at position Index.
	OpInsert EditOp = 4
	// OpRemove deletes the subtree at Path.
	OpRemove EditOp = 5
	// OpMove reparents the subtree at Path under the composite at Dest,
	// at position Index.
	OpMove EditOp = 6
	// OpRename renames the node at Path to Name.
	OpRename EditOp = 7
)

// String names the operation for diagnostics.
func (op EditOp) String() string {
	switch op {
	case OpSetAttr:
		return "setattr"
	case OpAddArc:
		return "addarc"
	case OpRemoveArc:
		return "removearc"
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	case OpMove:
		return "move"
	case OpRename:
		return "rename"
	default:
		return fmt.Sprintf("editop(%d)", byte(op))
	}
}

// ChangeRecord is the serialized, path-addressed form of one edit. Which
// fields are meaningful depends on Op; unused fields stay zero. Payload
// bytes are opaque here — internal/edit produces and consumes them with
// the codec package, keeping this package free of codec dependencies.
type ChangeRecord struct {
	Op EditOp
	// Path addresses the edited node, pre-edit (setattr, arcs, remove,
	// move, rename).
	Path string
	// Dest addresses the destination parent, pre-edit (insert, move).
	Dest string
	// Index is the insertion position (insert, move; clamped) or the
	// arc index (removearc).
	Index int
	// Name is the attribute name (setattr) or the new node name (rename).
	Name string
	// Payload carries the encoded value (setattr), arc value (addarc)
	// or subtree (insert).
	Payload []byte
}

// Kind maps the operation to the ChangeKind its re-execution appends to
// the receiving document's change log.
func (rec ChangeRecord) Kind() ChangeKind {
	switch rec.Op {
	case OpSetAttr:
		return ChangeAttr
	case OpAddArc, OpRemoveArc:
		return ChangeArcs
	case OpInsert:
		return ChangeInsert
	case OpRemove:
		return ChangeRemove
	case OpMove:
		return ChangeMove
	case OpRename:
		return ChangeRename
	default:
		return ChangeGlobal
	}
}

// changeWireVersion versions the record blob framing.
const changeWireVersion = 1

// maxChangeRecords bounds how many records one blob may carry, keeping a
// hostile length prefix from driving allocation.
const maxChangeRecords = 1 << 16

// EncodeChangeRecords packs an ordered edit batch into one blob:
//
//	blob   := u8 version | uvarint count | record*
//	record := u8 op | str path | str dest | varint index | str name | str payload
//	str    := uvarint len | bytes
func EncodeChangeRecords(recs []ChangeRecord) []byte {
	var scratch [binary.MaxVarintLen64]byte
	out := []byte{changeWireVersion}
	out = append(out, scratch[:binary.PutUvarint(scratch[:], uint64(len(recs)))]...)
	putStr := func(s string) {
		out = append(out, scratch[:binary.PutUvarint(scratch[:], uint64(len(s)))]...)
		out = append(out, s...)
	}
	for _, rec := range recs {
		out = append(out, byte(rec.Op))
		putStr(rec.Path)
		putStr(rec.Dest)
		out = append(out, scratch[:binary.PutVarint(scratch[:], int64(rec.Index))]...)
		putStr(rec.Name)
		out = append(out, scratch[:binary.PutUvarint(scratch[:], uint64(len(rec.Payload)))]...)
		out = append(out, rec.Payload...)
	}
	return out
}

// DecodeChangeRecords unpacks a record blob. It never panics on hostile
// input: every length is bounds-checked against the remaining bytes
// before use, and trailing garbage is rejected.
func DecodeChangeRecords(data []byte) ([]ChangeRecord, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty change blob")
	}
	if data[0] != changeWireVersion {
		return nil, fmt.Errorf("core: unsupported change blob version %d", data[0])
	}
	off := 1
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("core: truncated varint at offset %d", off)
		}
		off += n
		return v, nil
	}
	take := func() ([]byte, error) {
		n, err := uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)-off) {
			return nil, fmt.Errorf("core: field length %d exceeds %d remaining bytes", n, len(data)-off)
		}
		b := data[off : off+int(n)]
		off += int(n)
		return b, nil
	}
	count, err := uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxChangeRecords {
		return nil, fmt.Errorf("core: change blob declares %d records (limit %d)", count, maxChangeRecords)
	}
	recs := make([]ChangeRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		if off >= len(data) {
			return nil, fmt.Errorf("core: truncated record %d", i)
		}
		rec := ChangeRecord{Op: EditOp(data[off])}
		off++
		if rec.Op < OpSetAttr || rec.Op > OpRename {
			return nil, fmt.Errorf("core: record %d: unknown edit op %d", i, byte(rec.Op))
		}
		path, err := take()
		if err != nil {
			return nil, err
		}
		dest, err := take()
		if err != nil {
			return nil, err
		}
		idx, n := binary.Varint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("core: record %d: truncated index", i)
		}
		off += n
		name, err := take()
		if err != nil {
			return nil, err
		}
		payload, err := take()
		if err != nil {
			return nil, err
		}
		rec.Path, rec.Dest, rec.Index, rec.Name = string(path), string(dest), int(idx), string(name)
		if len(payload) > 0 {
			rec.Payload = append([]byte(nil), payload...)
		}
		recs = append(recs, rec)
	}
	if off != len(data) {
		return nil, fmt.Errorf("core: %d trailing bytes after change records", len(data)-off)
	}
	return recs, nil
}
