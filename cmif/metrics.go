package cmif

import (
	"repro/internal/metrics"
	"repro/internal/transport"
)

// Metrics is a registry of counters, gauges and latency histograms. One
// registry typically serves a whole process: the server instruments
// itself into its own (Server.Metrics), while client-side caches
// (BlockCache.Instrument) and schedulers (WithScheduleMetrics) accept any
// registry — NewMetrics builds a fresh one.
//
// A registry serves its contents three ways: Prometheus text exposition
// (Prometheus, or the cmifd -metrics endpoint), a structured Snapshot
// with read-time p50/p99/p999 quantiles, and an http.Handler for mounting
// wherever the caller already listens.
type Metrics = metrics.Registry

// MetricsSnapshot is a point-in-time reading of a registry: counter and
// gauge values plus per-histogram count, sum and quantiles. It marshals
// to JSON in the shape the -metrics endpoint serves under ?format=json.
type MetricsSnapshot = metrics.Snapshot

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// AdmissionConfig bounds server-wide concurrency: MaxConcurrent requests
// executing at once, MaxQueue more waiting for a slot, MaxWait per queued
// request before it is shed. Excess load is rejected promptly with
// ErrBusy instead of collapsing every request's latency together. The
// zero value disables admission control.
type AdmissionConfig = transport.Admission

// DefaultAdmissionWait is the queue-wait bound when AdmissionConfig
// leaves MaxWait zero.
const DefaultAdmissionWait = transport.DefaultAdmissionWait

// WithAdmission enables server-wide admission control. Under overload the
// server executes at most a.MaxConcurrent requests, queues at most
// a.MaxQueue more (each for at most a.MaxWait), and sheds the rest with a
// fast busy error that clients surface as ErrBusy. Sheds are counted in
// the server's metrics as cmif_busy_rejections_total by reason.
func WithAdmission(a AdmissionConfig) ServeOption {
	return func(c *serverConfig) { c.admission = a }
}

// WithServerMetrics registers the server's instruments in reg instead of
// a private registry — useful when one process wants its server, client
// caches and schedulers in a single exposition. Server.Metrics returns
// reg.
func WithServerMetrics(reg *Metrics) ServeOption {
	return func(c *serverConfig) { c.metrics = reg }
}

// Metrics returns the registry the server's instruments live in: request
// counts and latency by op, in-flight and connection gauges, admission
// queue depth and busy rejections, descriptor-cache effectiveness, and —
// with WithDataDir — WAL append lag, live WAL bytes and snapshot counts.
// Always non-nil; serve it with Metrics.Handler or scrape Prometheus.
func (s *Server) Metrics() *Metrics { return s.metrics }

// WithScheduleMetrics mirrors the solver's pass activity into reg:
// cmif_schedule_seconds and cmif_schedule_passes_total split by
// full/incremental, graph rebuilds, and the size of the last solved
// system.
func WithScheduleMetrics(reg *Metrics) ScheduleOption {
	return func(c *scheduleConfig) { c.metrics = reg }
}
