package transport

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/chunker"
	"repro/internal/core"
	"repro/internal/media"
)

// startServerV4 starts a server with the given compression setting over
// a store of its own.
func startServerV4(t *testing.T, store *media.Store, compress bool) (string, *Server) {
	t.Helper()
	srv := NewServer(NewRegistry(store))
	srv.Compression = compress
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

// randomBlock builds a block with an incompressible pseudo-random
// payload (seeded, so tests are deterministic).
func randomBlock(name string, size int, seed int64) *media.Block {
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, size)
	rng.Read(payload)
	return media.NewBlock(name, core.MediumVideo, payload, attr.List{})
}

// textBlock builds a highly compressible text payload.
func textBlockV4(name string, size int) *media.Block {
	payload := bytes.Repeat([]byte("the quick brown CMIF document fox "), size/34+1)[:size]
	return media.NewBlock(name, core.MediumText, payload, attr.List{})
}

// TestHelloNegotiationMatrix pins the version/codec negotiation grid:
// who ends up on which protocol version, and when the compressed
// request envelope actually activates.
func TestHelloNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name           string
		serverCompress bool
		opts           []DialOption
		wantVersion    int
		wantCompressed bool
	}{
		{"v4 both, codec on", true, nil, protoV4, true},
		{"v4 both, server codec off", false, nil, protoV4, false},
		{"v4 both, client declines", true, []DialOption{WithFrameCompression(false)}, protoV4, false},
		{"client capped at v3", true, []DialOption{WithMaxProtocolVersion(protoV3)}, protoV3, false},
		{"client capped at v2", true, []DialOption{WithMaxProtocolVersion(protoV2)}, protoV2, false},
		{"client capped at v1", true, []DialOption{WithMaxProtocolVersion(protoV1)}, protoV1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := media.NewStore()
			store.Put(textBlockV4("t.txt", 2048))
			addr, _ := startServerV4(t, store, tc.serverCompress)
			c, err := Dial(addr, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.Version() != tc.wantVersion {
				t.Fatalf("negotiated v%d, want v%d", c.Version(), tc.wantVersion)
			}
			if c.Compressed() != tc.wantCompressed {
				t.Fatalf("Compressed() = %v, want %v", c.Compressed(), tc.wantCompressed)
			}
			// Whatever was negotiated, a fetch still round-trips.
			blk, err := c.GetBlock(context.Background(), "t.txt")
			if err != nil {
				t.Fatal(err)
			}
			if len(blk.Payload) != 2048 {
				t.Fatalf("payload %d bytes, want 2048", len(blk.Payload))
			}
		})
	}
}

// TestCompressedRoundTrip moves compressible payloads both directions
// under the negotiated codec and checks the wire actually shrank.
func TestCompressedRoundTrip(t *testing.T) {
	addr, _ := startServerV4(t, media.NewStore(), true)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Compressed() {
		t.Fatal("compression not negotiated")
	}
	ctx := context.Background()

	// Client -> server: a compressible put must ship deflated.
	blk := textBlockV4("story.txt", 256<<10)
	if _, err := c.PutBlock(ctx, blk); err != nil {
		t.Fatal(err)
	}
	if c.CompressedFrames() == 0 {
		t.Error("compressible put shipped no compressed request frames")
	}
	if c.CompressedBytesSaved() <= 0 {
		t.Errorf("CompressedBytesSaved = %d, want > 0", c.CompressedBytesSaved())
	}
	if c.BytesSent() >= int64(len(blk.Payload)) {
		t.Errorf("sent %d bytes for a %d-byte compressible payload", c.BytesSent(), len(blk.Payload))
	}

	// Server -> client: the response frame deflates too.
	before := c.BytesReceived()
	got, err := c.GetBlock(ctx, "story.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, blk.Payload) {
		t.Fatal("payload corrupted through the compressed round trip")
	}
	respBytes := c.BytesReceived() - before
	if respBytes >= int64(len(blk.Payload)) {
		t.Errorf("received %d bytes for a %d-byte compressible payload", respBytes, len(blk.Payload))
	}

	// Incompressible payloads bypass the envelope but stay intact.
	rnd := randomBlock("noise.bin", 128<<10, 7)
	if _, err := c.PutBlock(ctx, rnd); err != nil {
		t.Fatal(err)
	}
	back, err := c.GetBlock(ctx, rnd.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Payload, rnd.Payload) {
		t.Fatal("incompressible payload corrupted")
	}
}

// TestDedupeFetchPath exercises the manifest/chunk path end to end: a
// cold fetch seeds the chunk cache, a warm re-fetch moves only the
// manifest, and a near-duplicate moves only its changed chunks.
func TestDedupeFetchPath(t *testing.T) {
	store := media.NewStore()
	base := randomBlock("video.v1", 512<<10, 42)
	store.Put(base)

	// A near-duplicate: same payload with a small splice in the middle.
	edited := append([]byte(nil), base.Payload...)
	copy(edited[256<<10:], []byte(strings.Repeat("EDIT", 64)))
	variant := media.NewBlock("video.v2", base.Medium, edited, attr.List{})
	store.Put(variant)

	addr, _ := startServerV4(t, store, false)
	c, err := Dial(addr, WithChunkCache(NewChunkCache(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Cold fetch: the manifest path runs but every chunk misses, so the
	// payload still crosses the wire once (as chunks) and seeds the cache.
	cold, err := c.GetBlock(ctx, "video.v1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Payload, base.Payload) {
		t.Fatal("cold dedupe fetch corrupted the payload")
	}
	if c.DedupeFetches() != 1 {
		t.Fatalf("DedupeFetches = %d after cold fetch, want 1", c.DedupeFetches())
	}

	// Warm re-fetch: everything is cached; only the manifest moves.
	before := c.BytesReceived()
	warm, err := c.GetBlock(ctx, "video.v1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm.Payload, base.Payload) {
		t.Fatal("warm dedupe fetch corrupted the payload")
	}
	warmBytes := c.BytesReceived() - before
	if warmBytes >= int64(len(base.Payload))/10 {
		t.Errorf("warm re-fetch moved %d bytes for a %d-byte block", warmBytes, len(base.Payload))
	}
	if c.DedupeBytesSaved() < int64(len(base.Payload)) {
		t.Errorf("DedupeBytesSaved = %d, want >= %d", c.DedupeBytesSaved(), len(base.Payload))
	}

	// Near-duplicate: most chunks are already cached from v1.
	before = c.BytesReceived()
	got, err := c.GetBlock(ctx, "video.v2")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, edited) {
		t.Fatal("variant dedupe fetch corrupted the payload")
	}
	variantBytes := c.BytesReceived() - before
	if variantBytes >= int64(len(edited))/2 {
		t.Errorf("near-duplicate fetch moved %d of %d bytes", variantBytes, len(edited))
	}
}

// TestDedupeFallback pins every road back to the plain path: blocks
// below the chunk threshold, servers older than v4, and a client
// without a cache all still serve correct bytes.
func TestDedupeFallback(t *testing.T) {
	store := media.NewStore()
	small := textBlockV4("small.txt", 512) // below media.ChunkThreshold
	store.Put(small)
	big := randomBlock("big.bin", 64<<10, 3)
	store.Put(big)

	addr, _ := startServerV4(t, store, false)

	t.Run("small block falls back", func(t *testing.T) {
		c, err := Dial(addr, WithChunkCache(NewChunkCache(0)))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		got, err := c.GetBlock(context.Background(), "small.txt")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Payload, small.Payload) {
			t.Fatal("payload mismatch")
		}
		if c.DedupeFetches() != 0 {
			t.Errorf("DedupeFetches = %d for a sub-threshold block", c.DedupeFetches())
		}
	})

	t.Run("v3 client ignores the cache", func(t *testing.T) {
		c, err := Dial(addr, WithChunkCache(NewChunkCache(0)), WithMaxProtocolVersion(protoV3))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		got, err := c.GetBlock(context.Background(), "big.bin")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Payload, big.Payload) {
			t.Fatal("payload mismatch")
		}
		if c.DedupeFetches() != 0 {
			t.Errorf("DedupeFetches = %d on a v3 connection", c.DedupeFetches())
		}
	})

	t.Run("missing block is still not found", func(t *testing.T) {
		c, err := Dial(addr, WithChunkCache(NewChunkCache(0)))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.GetBlock(context.Background(), "ghost"); err == nil {
			t.Fatal("fetch of a missing block succeeded")
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	})
}

// TestVectoredWritePath forces every frame through the writev gather
// path and checks payloads survive byte-for-byte.
func TestVectoredWritePath(t *testing.T) {
	old := vectoredThreshold
	vectoredThreshold = 1
	t.Cleanup(func() { vectoredThreshold = old })

	store := media.NewStore()
	blk := randomBlock("clip.bin", 256<<10, 99)
	store.Put(blk)
	addr, _ := startServerV4(t, store, false)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.GetBlock(context.Background(), "clip.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, blk.Payload) {
		t.Fatal("payload corrupted through the vectored path")
	}
	// A batch with empty and non-empty parts exercises the prefix
	// folding in the gather list.
	names := []string{"clip.bin", "no-such-block", "clip.bin"}
	blks, err := c.GetBlocks(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	if blks[0] == nil || blks[1] != nil || blks[2] == nil {
		t.Fatalf("batch shape wrong: %v", blks)
	}
}

// TestChunkCacheBudget pins the byte-budget LRU behaviour.
func TestChunkCacheBudget(t *testing.T) {
	cc := NewChunkCache(10 << 10)
	data := make([]byte, 4<<10)
	var keys []media.ChunkHash
	for i := 0; i < 4; i++ {
		data[0] = byte(i)
		h := chunker.Sum(data)
		cc.Add(h, data)
		keys = append(keys, h)
	}
	st := cc.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("cache holds %d bytes over a %d budget", st.Bytes, st.Budget)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the budget")
	}
	// The most recent insert is resident, the oldest is gone.
	if _, ok := cc.Get(keys[3]); !ok {
		t.Error("most recent chunk evicted")
	}
	if _, ok := cc.Get(keys[0]); ok {
		t.Error("oldest chunk survived over budget")
	}
	// An over-budget chunk is refused outright.
	huge := make([]byte, 16<<10)
	cc.Add(chunker.Sum(huge), huge)
	if cc.Stats().Bytes > 10<<10 {
		t.Error("over-budget chunk was cached")
	}
}
