// Command cmifplay schedules a CMIF document and simulates its playback,
// printing the table of contents, the channel timeline (Figure 4b view) and
// the playback trace.
//
// Usage:
//
//	cmifplay [-jitter 40ms] [-seed 7] [-seek 8s] [-news N] [file.cmif]
//
// With -news N the built-in evening-news corpus with N stories is played
// instead of a file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmif"
)

func main() {
	jitter := flag.Duration("jitter", 0, "uniform device jitter bound (e.g. 40ms)")
	seed := flag.Uint64("seed", 1, "jitter seed")
	seek := flag.Duration("seek", -1, "analyze a seek to this time instead of playing")
	news := flag.Int("news", 0, "play the built-in evening news with N stories")
	flag.Parse()

	var doc *cmif.Document
	var err error
	switch {
	case *news > 0:
		doc, _, err = cmif.BuildNews(cmif.NewsConfig{Stories: *news})
	case flag.NArg() == 1:
		doc, err = cmif.Open(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: cmifplay [-jitter d] [-seed n] [-seek t] (-news N | file.cmif)")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if verr := doc.Check(); verr != nil {
		if ve, ok := verr.(*cmif.ValidationError); ok {
			for _, e := range ve.Errors() {
				fmt.Fprintln(os.Stderr, e)
			}
		}
		fatal(verr)
	}

	plan, err := cmif.Schedule(doc,
		cmif.WithDefaultLeafDuration(500*time.Millisecond),
		cmif.WithRelaxation(),
	)
	if err != nil {
		fatal(err)
	}

	if *seek >= 0 {
		rep := plan.AnalyzeSeek(*seek)
		fmt.Printf("seek to %v: %d active leaves\n", *seek, len(rep.Active))
		for _, n := range rep.Active {
			fmt.Printf("  active: %s\n", n.PathString())
		}
		for _, a := range rep.Arcs {
			fmt.Printf("  arc %-9s %s\n", a.State, a.Ref)
		}
		return
	}

	fmt.Println("table of contents:")
	fmt.Print(plan.TOC())
	fmt.Println("\nchannel timeline:")
	fmt.Print(plan.Timeline(cmif.TimelineOptions{Resolution: timelineRes(plan.Makespan())}))

	playOpts := []cmif.PlayOption{cmif.WithPlayRelaxation()}
	if *jitter > 0 {
		playOpts = append(playOpts, cmif.WithJitter(cmif.UniformJitter(*seed, *jitter)))
	}
	res, err := plan.Play(playOpts...)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nplayback trace:")
	fmt.Print(res)
	if !res.Success() {
		os.Exit(1)
	}
}

func timelineRes(span time.Duration) time.Duration {
	switch {
	case span <= 2*time.Second:
		return 100 * time.Millisecond
	case span <= 30*time.Second:
		return time.Second
	default:
		return 5 * time.Second
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmifplay:", err)
	os.Exit(1)
}
