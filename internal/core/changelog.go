package core

// The change log makes documents observable: every structured edit appends a
// Change record, and consumers (the incremental scheduler, caches) keep a
// cursor into the log to learn what happened since they last looked. Edits
// performed through internal/edit and the cmif facade are recorded; tools
// that mutate the tree directly through Root must call NoteGlobalChange (or
// re-derive from scratch), since the document cannot see those writes.

// ChangeKind classifies one recorded edit.
type ChangeKind int

const (
	// ChangeAttr records that an attribute changed on Node. Attr names it.
	// Inheritable attributes affect the node's whole subtree.
	ChangeAttr ChangeKind = iota
	// ChangeArcs records that Node's explicit synchronization arcs changed
	// (one added, removed or rewritten).
	ChangeArcs
	// ChangeInsert records that the subtree rooted at Node was inserted
	// under Parent.
	ChangeInsert
	// ChangeRemove records that the subtree rooted at Node was detached
	// from Parent (Node is the now-detached subtree root).
	ChangeRemove
	// ChangeMove records that Node was reparented from OldParent to Parent.
	ChangeMove
	// ChangeRename records that Node's name changed; arcs referencing it
	// were rewritten to keep resolving to the same nodes.
	ChangeRename
	// ChangeGlobal records a document-wide input change (channel or style
	// dictionary, or an untracked direct tree mutation). Consumers must
	// re-derive everything.
	ChangeGlobal
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeAttr:
		return "attr"
	case ChangeArcs:
		return "arcs"
	case ChangeInsert:
		return "insert"
	case ChangeRemove:
		return "remove"
	case ChangeMove:
		return "move"
	case ChangeRename:
		return "rename"
	case ChangeGlobal:
		return "global"
	default:
		return "change(?)"
	}
}

// Change is one recorded edit.
type Change struct {
	Kind ChangeKind
	// Node is the edited node (for ChangeRemove: the detached subtree root).
	Node *Node
	// Parent is the (new) parent for insert/remove/move records.
	Parent *Node
	// OldParent is the previous parent for move records.
	OldParent *Node
	// Attr is the changed attribute's name for ChangeAttr records.
	Attr string
}

// NoteChange appends a change record and advances the generation.
func (d *Document) NoteChange(c Change) { d.changes = append(d.changes, c) }

// NoteGlobalChange records a document-wide invalidation. Call it after
// mutating the tree directly through Root, so incremental consumers know
// their derived state is stale.
func (d *Document) NoteGlobalChange() { d.NoteChange(Change{Kind: ChangeGlobal}) }

// Generation identifies the document's edit state: it advances by one per
// recorded change. Equal generations mean no recorded edits in between.
func (d *Document) Generation() uint64 { return uint64(len(d.changes)) }

// ChangesSince returns the change records appended after generation gen.
// The slice aliases the log; callers must not mutate it.
func (d *Document) ChangesSince(gen uint64) []Change {
	if gen >= uint64(len(d.changes)) {
		return nil
	}
	return d.changes[gen:]
}
