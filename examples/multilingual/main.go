// Multilingual: the paper's caption scenario — "a text-string is
// synchronized with the presentation for providing either multi-lingual
// broadcasts or captioning for the hearing impaired" — built with the
// conditional-node extension of internal/hyper. One document carries Dutch
// and English caption tracks; specialization selects a branch per reader.
//
//	go run ./examples/multilingual [lang]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/hyper"
	"repro/internal/render"
	"repro/internal/sched"
	"repro/internal/units"
)

func buildBroadcast() (*core.Document, error) {
	root := core.NewPar().SetName("broadcast")

	video := core.NewExt().SetName("video").
		SetAttr("channel", attr.ID("video")).
		SetAttr("file", attr.String("report.vid")).
		SetAttr("duration", attr.Quantity(units.Q(250, units.Frames))) // 10s

	audio := core.NewExt().SetName("audio").
		SetAttr("channel", attr.ID("audio")).
		SetAttr("file", attr.String("dutch-narration.aud")).
		SetAttr("duration", attr.Quantity(units.Q(80000, units.Samples))) // 10s

	// Caption tracks: one per language, same slot, conditional.
	texts := map[string][]string{
		"en": {"Stolen van Goghs", "worth ten million...", "witnesses report"},
		"nl": {"Gestolen van Goghs", "ter waarde van tien miljoen...", "getuigen melden"},
	}
	for _, lang := range []string{"en", "nl"} {
		track := core.NewSeq().SetName("captions-" + lang).
			SetAttr("channel", attr.ID("captions"))
		hyper.SetWhen(track, "lang="+lang)
		for i, text := range texts[lang] {
			cap := core.NewImm([]byte(text)).
				SetName(fmt.Sprintf("cap-%d", i+1)).
				SetAttr("duration", attr.Quantity(units.MS(3000)))
			track.AddChild(cap)
		}
		// Captions start with the video, strictly.
		track.AddArc(core.SyncArc{
			DestEnd: core.Begin, Strict: core.Must,
			Source: "../video", SrcEnd: core.Begin, Dest: "",
			MaxDelay: units.MS(0),
		})
		root.AddChild(track)
	}
	root.Add(video, audio)

	d, err := core.NewDocument(root)
	if err != nil {
		return nil, err
	}
	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "video", Medium: core.MediumVideo, Rates: units.Rates{FrameRate: 25}})
	cd.Define(core.Channel{Name: "audio", Medium: core.MediumAudio, Rates: units.Rates{SampleRate: 8000}})
	cd.Define(core.Channel{Name: "captions", Medium: core.MediumText})
	d.SetChannels(cd)
	return d, nil
}

func main() {
	lang := "en"
	if len(os.Args) > 1 {
		lang = os.Args[1]
	}
	doc, err := buildBroadcast()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one document, variables %v; specializing for lang=%s\n\n",
		hyper.Variables(doc), lang)

	specialized, err := hyper.Specialize(doc, hyper.Env{"lang": lang})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("specialized structure:")
	fmt.Print(render.Tree(specialized))

	g, err := sched.Build(specialized, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s, err := g.Solve(sched.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncaption timeline:")
	fmt.Print(render.TOCText(s))

	// The other language is simply absent.
	other := "nl"
	if lang == "nl" {
		other = "en"
	}
	if specialized.Root.FindByName("captions-"+other) != nil {
		log.Fatalf("captions-%s survived specialization", other)
	}
	fmt.Printf("\ncaptions-%s pruned; the same source document serves both audiences\n", other)
}
