// Package repro is a from-scratch Go reproduction of "A Structure for
// Transportable, Dynamic Multimedia Documents" (Bulterman, van Rossum,
// van Liere — USENIX 1991): the CWI Multimedia Interchange Format (CMIF)
// and the CWI/Multimedia Pipeline around it.
//
// The supported entry point is the public facade package repro/cmif; the
// implementation lives under internal/ and is not part of the API. See
// README.md for the surface map and a quickstart, the examples/ directory
// for runnable programs, and cmd/ for the pipeline tools. The benchmarks
// in bench_test.go regenerate the performance side of every figure.
package repro
