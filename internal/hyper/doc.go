// Package hyper implements the extension the paper sketches in section 3.2:
// "we suspect that this general problem [hyper access] can be addressed via
// the definition of conditional synchronization arcs that point to events on
// separate channels."
//
// Two conditional constructs are supported, both predicated on a reader
// environment (a set of key=value bindings such as lang=en or audience=
// expert):
//
//   - conditional nodes: a "when" attribute on any node removes the subtree
//     when the condition is false (multilingual captions, optional detail);
//   - conditional synchronization arcs: the Cond field of core.SyncArc; a
//     false condition removes the arc.
//
// Specialize evaluates a document against an environment, yielding an
// ordinary CMIF document playable by the standard pipeline — hyper
// navigation reduces to re-specialization at choice points.
package hyper
