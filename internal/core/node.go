package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attr"
)

// NodeType enumerates the four CMIF node types of section 5.1.
type NodeType int

const (
	// Seq executes its children sequentially in left-to-right order.
	Seq NodeType = iota
	// Par executes its children in parallel.
	Par
	// Ext is a leaf pointing at a data descriptor (and thus an external
	// data block) via a file attribute.
	Ext
	// Imm is a leaf containing data directly rather than a pointer;
	// "useful for encoding small amounts of data directly in a document or
	// for transporting data across environments that have no common
	// storage server".
	Imm
)

var nodeTypeNames = [...]string{"seq", "par", "ext", "imm"}

// String returns the node-type keyword used in the document syntax.
func (t NodeType) String() string {
	if t >= 0 && int(t) < len(nodeTypeNames) {
		return nodeTypeNames[t]
	}
	return fmt.Sprintf("nodetype(%d)", int(t))
}

// ParseNodeType maps a keyword to its NodeType.
func ParseNodeType(s string) (NodeType, error) {
	for i, n := range nodeTypeNames {
		if n == s {
			return NodeType(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown node type %q", s)
}

// IsLeaf reports whether the type is a data (leaf) node type.
func (t NodeType) IsLeaf() bool { return t == Ext || t == Imm }

// Node is one node of the CMIF document tree. Composite nodes (Seq, Par)
// carry children; leaves (Ext, Imm) carry a reference to, or a copy of, a
// single data block.
type Node struct {
	Type  NodeType
	Attrs attr.List
	// Data holds the payload of an Imm node. "The data is either text (the
	// default) or another medium, as indicated by attributes associated
	// with the node."
	Data []byte

	children []*Node
	parent   *Node
	index    int
}

// NewNode returns a node of the given type with no attributes.
func NewNode(t NodeType) *Node { return &Node{Type: t, index: -1} }

// NewSeq, NewPar, NewExt and NewImm are convenience constructors.
func NewSeq() *Node { return NewNode(Seq) }

// NewPar returns a new parallel composite node.
func NewPar() *Node { return NewNode(Par) }

// NewExt returns a new external (data-descriptor reference) leaf.
func NewExt() *Node { return NewNode(Ext) }

// NewImm returns a new immediate-data leaf holding data.
func NewImm(data []byte) *Node {
	n := NewNode(Imm)
	n.Data = data
	return n
}

// SetAttr binds an attribute on the node and returns the node, enabling
// fluent construction in authoring tools and tests.
func (n *Node) SetAttr(name string, v attr.Value) *Node {
	n.Attrs.Set(name, v)
	return n
}

// SetName assigns the node's name attribute. Names are optional and relative
// to their parent (section 5.2, Figure 7).
func (n *Node) SetName(name string) *Node {
	n.Attrs.Set("name", attr.ID(name))
	return n
}

// Name returns the node's name attribute, or "" if unnamed. Both ID and
// STRING values are accepted for authoring convenience.
func (n *Node) Name() string {
	if v, ok := n.Attrs.Get("name"); ok {
		if s, ok := v.Text(); ok {
			return s
		}
	}
	return ""
}

// AddChild appends child under n and returns n. Only composite nodes may
// have children; adding to a leaf panics, since that is a programming error
// rather than a document error (documents are checked by Validate).
func (n *Node) AddChild(child *Node) *Node {
	if n.Type.IsLeaf() {
		panic(fmt.Sprintf("core: cannot add child to %v leaf", n.Type))
	}
	if child.parent != nil {
		panic("core: node already has a parent")
	}
	child.parent = n
	child.index = len(n.children)
	n.children = append(n.children, child)
	return n
}

// Add appends several children and returns n.
func (n *Node) Add(children ...*Node) *Node {
	for _, c := range children {
		n.AddChild(c)
	}
	return n
}

// RemoveChild detaches the i'th child and returns it; it returns nil when i
// is out of range.
func (n *Node) RemoveChild(i int) *Node {
	if i < 0 || i >= len(n.children) {
		return nil
	}
	c := n.children[i]
	n.children = append(n.children[:i], n.children[i+1:]...)
	for j := i; j < len(n.children); j++ {
		n.children[j].index = j
	}
	c.parent = nil
	c.index = -1
	return c
}

// InsertChild places child at position i (clamped), reindexing siblings.
func (n *Node) InsertChild(i int, child *Node) {
	if n.Type.IsLeaf() {
		panic(fmt.Sprintf("core: cannot add child to %v leaf", n.Type))
	}
	if child.parent != nil {
		panic("core: node already has a parent")
	}
	if i < 0 {
		i = 0
	}
	if i > len(n.children) {
		i = len(n.children)
	}
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = child
	child.parent = n
	for j := i; j < len(n.children); j++ {
		n.children[j].index = j
	}
}

// Children returns the node's children in document order. The slice is
// shared; callers must not mutate it.
func (n *Node) Children() []*Node { return n.children }

// NumChildren reports the number of children.
func (n *Node) NumChildren() int { return len(n.children) }

// Child returns the i'th child or nil.
func (n *Node) Child(i int) *Node {
	if i < 0 || i >= len(n.children) {
		return nil
	}
	return n.children[i]
}

// Parent returns the node's parent, nil at the root.
func (n *Node) Parent() *Node { return n.parent }

// Index returns the node's position among its siblings, -1 if detached.
func (n *Node) Index() int { return n.index }

// Root walks to the tree root. "The root node ... provides an implied timing
// reference point for all other nodes in the document."
func (n *Node) Root() *Node {
	for n.parent != nil {
		n = n.parent
	}
	return n
}

// IsRoot reports whether the node has no parent.
func (n *Node) IsRoot() bool { return n.parent == nil }

// Depth returns the number of ancestors (root has depth 0).
func (n *Node) Depth() int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// NextSibling returns the sibling to the right, or nil.
func (n *Node) NextSibling() *Node {
	if n.parent == nil {
		return nil
	}
	return n.parent.Child(n.index + 1)
}

// PrevSibling returns the sibling to the left, or nil.
func (n *Node) PrevSibling() *Node {
	if n.parent == nil {
		return nil
	}
	return n.parent.Child(n.index - 1)
}

// Walk visits n and every descendant in pre-order. Returning false from f
// prunes the subtree below the visited node.
func (n *Node) Walk(f func(*Node) bool) {
	if !f(n) {
		return
	}
	for _, c := range n.children {
		c.Walk(f)
	}
}

// WalkPost visits every descendant and then n (post-order).
func (n *Node) WalkPost(f func(*Node)) {
	for _, c := range n.children {
		c.WalkPost(f)
	}
	f(n)
}

// Count returns the number of nodes in the subtree rooted at n.
func (n *Node) Count() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Leaves returns the data (leaf) nodes of the subtree in document order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Type.IsLeaf() {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Inherited looks up an attribute on n or, failing that, on its ancestors
// bottom-up. It implements the paper's inheritance rule for attributes such
// as channel and file: "inherited by children (and arbitrary levels of
// grandchildren) of the node on which they are set unless explicitly
// overridden". Only attributes registered as inheritable participate; others
// are looked up on n alone.
func (n *Node) Inherited(name string) (attr.Value, bool) {
	if v, ok := n.Attrs.Get(name); ok {
		return v, true
	}
	if !StandardAttrs.IsInherited(name) {
		return attr.Value{}, false
	}
	for p := n.parent; p != nil; p = p.parent {
		if v, ok := p.Attrs.Get(name); ok {
			return v, true
		}
	}
	return attr.Value{}, false
}

// pathComponent returns the stable component naming n under its parent: the
// node's name if it has one, otherwise "#i" by sibling position.
func (n *Node) pathComponent() string {
	if name := n.Name(); name != "" {
		return name
	}
	return "#" + strconv.Itoa(n.index)
}

// PathString returns an absolute slash-separated path from the root to n,
// e.g. "/news/story-3/caption/intro". The root renders as "/".
func (n *Node) PathString() string {
	if n.parent == nil {
		return "/"
	}
	var parts []string
	for m := n; m.parent != nil; m = m.parent {
		parts = append(parts, m.pathComponent())
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// PathError reports a failure to resolve a relative path name.
type PathError struct {
	From *Node  // node the resolution started at
	Path string // the full path being resolved
	At   string // the component that failed
	Why  string
}

func (e *PathError) Error() string {
	return fmt.Sprintf("core: cannot resolve %q from %s: component %q: %s",
		e.Path, e.From.PathString(), e.At, e.Why)
}

// Resolve resolves a path name relative to n, per section 5.3.2: "the source
// field specifies a relative path name in the tree (by using named nodes)...
// The empty name specifies the current node itself."
//
// Path grammar:
//
//	""           the node itself
//	"."          the node itself
//	".."         the parent
//	"name"       the child named name (or "#i" for the i'th child)
//	"a/b/c"      components resolved left to right
//	"/a/b"       absolute: resolved from the root
func (n *Node) Resolve(path string) (*Node, error) {
	cur := n
	rest := path
	if strings.HasPrefix(path, "/") {
		cur = n.Root()
		rest = strings.TrimPrefix(path, "/")
	}
	if rest == "" {
		return cur, nil
	}
	for _, comp := range strings.Split(rest, "/") {
		switch comp {
		case "", ".":
			continue
		case "..":
			if cur.parent == nil {
				return nil, &PathError{From: n, Path: path, At: comp, Why: "root has no parent"}
			}
			cur = cur.parent
		default:
			next := cur.childByComponent(comp)
			if next == nil {
				return nil, &PathError{From: n, Path: path, At: comp,
					Why: fmt.Sprintf("no such child of %s", cur.PathString())}
			}
			cur = next
		}
	}
	return cur, nil
}

// childByComponent finds a child by name or by "#i" positional reference.
func (n *Node) childByComponent(comp string) *Node {
	if strings.HasPrefix(comp, "#") {
		i, err := strconv.Atoi(comp[1:])
		if err != nil {
			return nil
		}
		return n.Child(i)
	}
	for _, c := range n.children {
		if c.Name() == comp {
			return c
		}
	}
	return nil
}

// FindByName returns the first node in the subtree (pre-order) whose name
// attribute equals name, or nil.
func (n *Node) FindByName(name string) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if found != nil {
			return false
		}
		if m.Name() == name {
			found = m
			return false
		}
		return true
	})
	return found
}

// Clone deep-copies the subtree rooted at n. The clone is detached (no
// parent) and shares no mutable state with the original.
func (n *Node) Clone() *Node {
	c := &Node{
		Type:  n.Type,
		Attrs: n.Attrs.Clone(),
		index: -1,
	}
	if n.Data != nil {
		c.Data = append([]byte(nil), n.Data...)
	}
	for _, child := range n.children {
		cc := child.Clone()
		cc.parent = c
		cc.index = len(c.children)
		c.children = append(c.children, cc)
	}
	return c
}

// String renders a one-line summary for diagnostics.
func (n *Node) String() string {
	name := n.Name()
	if name == "" {
		name = "(anon)"
	}
	return fmt.Sprintf("%s %s [%d children]", n.Type, name, len(n.children))
}
