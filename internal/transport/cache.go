package transport

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/media"
	"repro/internal/metrics"
)

// DefaultCacheSize is the block capacity a BlockCache gets when built with
// a non-positive size.
const DefaultCacheSize = 256

// BlockCache is a client-side LRU cache of data blocks keyed by the string
// they were requested under (name or content address). It implements the
// locally-served pattern of Gray's "Locally Served Network Computers": hot
// blocks are answered from local memory, and concurrent misses for the same
// key are collapsed into a single wire fetch (singleflight), so a burst of
// players starting the same presentation costs one round trip per block.
//
// A cache is safe for concurrent use and is meant to be shared between
// clients: each Client stays single-goroutine, while the cache coordinates
// across them.
type BlockCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight

	hits      int64
	misses    int64
	evictions int64

	// Mirrored instruments (Instrument); nil when uninstrumented. They
	// increment at exactly the sites the fields above do, so the metrics
	// and CacheStats always agree on semantics.
	mHits      *metrics.Counter
	mMisses    *metrics.Counter
	mEvictions *metrics.Counter
}

// Instrument mirrors the cache's effectiveness counters into reg as
// cmif_cache_hits_total / cmif_cache_misses_total /
// cmif_cache_evictions_total, with the exact accounting semantics of
// CacheStats: a hit is any lookup that costs no wire call of its own —
// including waiting on another goroutine's in-flight fetch — and a
// singleflight-collapsed miss counts once, charged to the leader that
// performs the wire fetch. Instrument at construction time; the mirrored
// counters start at zero, so a cache instrumented mid-life disagrees with
// CacheStats by whatever happened before.
func (c *BlockCache) Instrument(reg *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mHits = reg.Counter("cmif_cache_hits_total", "block-cache lookups served without a wire call")
	c.mMisses = reg.Counter("cmif_cache_misses_total", "block-cache lookups that led a wire fetch (collapsed misses count once)")
	c.mEvictions = reg.Counter("cmif_cache_evictions_total", "blocks evicted by LRU pressure")
}

// countHit/countMiss/countEviction move the CacheStats field and its
// mirrored instrument together. Caller holds c.mu.
func (c *BlockCache) countHit() {
	c.hits++
	if c.mHits != nil {
		c.mHits.Inc()
	}
}

func (c *BlockCache) countMiss() {
	c.misses++
	if c.mMisses != nil {
		c.mMisses.Inc()
	}
}

func (c *BlockCache) countEviction() {
	c.evictions++
	if c.mEvictions != nil {
		c.mEvictions.Inc()
	}
}

// cacheEntry is one resident block.
type cacheEntry struct {
	key string
	blk *media.Block
}

// flight is one in-progress fetch other goroutines can wait on.
type flight struct {
	done chan struct{}
	blk  *media.Block
	err  error
}

// NewBlockCache returns a cache holding up to size blocks; a non-positive
// size gets DefaultCacheSize.
func NewBlockCache(size int) *BlockCache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &BlockCache{
		cap:     size,
		order:   list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Get returns a copy of the cached block under key, marking it recently
// used and counting a hit.
func (c *BlockCache) Get(key string) (*media.Block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	c.countHit()
	return el.Value.(*cacheEntry).blk.Clone(), true
}

// Add stores a copy of blk under key, evicting the least recently used
// entry when the cache is full.
func (c *BlockCache) Add(key string, blk *media.Block) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(key, blk)
}

// addLocked inserts a clone of blk under key. Caller holds c.mu.
func (c *BlockCache) addLocked(key string, blk *media.Block) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).blk = blk.Clone()
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, blk: blk.Clone()})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
		c.countEviction()
	}
}

// join is the singleflight entry point shared by the single-block and
// batched fetch paths. It returns exactly one of:
//
//   - a resident block (a hit; blk non-nil),
//   - an existing flight to wait on (another goroutine is fetching; also
//     counted as a hit, since this caller costs no wire call of its own),
//   - a fresh flight with leader=true: the caller must fetch and settle it.
func (c *BlockCache) join(key string) (blk *media.Block, f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.countHit()
		return el.Value.(*cacheEntry).blk.Clone(), nil, false
	}
	if f, ok := c.flights[key]; ok {
		c.countHit()
		return nil, f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.countMiss()
	return nil, f, true
}

// settle resolves a leader's flight with the fetch result, caching the
// block on success and waking every waiter. Errors are never cached.
func (c *BlockCache) settle(key string, f *flight, blk *media.Block, err error) {
	c.mu.Lock()
	delete(c.flights, key)
	if err == nil && blk != nil {
		c.addLocked(key, blk)
	}
	f.blk, f.err = blk, err
	close(f.done)
	c.mu.Unlock()
}

// wait blocks until f settles (or ctx ends) and returns its result.
func (f *flight) wait(ctx context.Context) (*media.Block, error) {
	select {
	case <-f.done:
		if f.err != nil {
			return nil, f.err
		}
		if f.blk == nil {
			return nil, nil
		}
		return f.blk.Clone(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// GetOrFetch returns the block under key, fetching it with fetch on a
// miss. Concurrent callers missing on the same key share one fetch —
// whether they arrive through here or through the batched GetBlocks path:
// the first becomes the leader and runs fetch, the rest wait for its
// result (or their own context's cancellation). Fetch errors are not
// cached.
func (c *BlockCache) GetOrFetch(ctx context.Context, key string, fetch func(context.Context) (*media.Block, error)) (*media.Block, error) {
	blk, f, leader := c.join(key)
	if blk != nil {
		return blk, nil
	}
	if !leader {
		return f.wait(ctx)
	}
	blk, err := fetch(ctx)
	c.settle(key, f, blk, err)
	return blk, err
}

// Len reports the number of resident blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time snapshot of cache effectiveness. A "hit"
// is any lookup that cost no wire call of its own, including waiting on
// another goroutine's in-flight fetch.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Len       int
	Capacity  int
}

// Stats snapshots the counters.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       c.order.Len(),
		Capacity:  c.cap,
	}
}
