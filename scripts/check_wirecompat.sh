#!/bin/sh
# Wire-compatibility matrix: the current tree must interoperate with the
# previous release on the wire, in BOTH directions:
#
#   1. current client -> previous server: the hello negotiation must
#      settle on the older protocol/feature set and every fetch must
#      round-trip (a new client never strands deployed servers);
#   2. previous client -> current server: the current server must keep
#      answering the older hello exactly as before (a rollout never
#      strands deployed clients).
#
# "Previous" is the latest tag when one exists, else the parent commit —
# the newest code a real deployment could be running. The check builds
# cmifd + cmifget from that ref in a temporary git worktree, preloads
# both servers with the same deterministic -news corpus, and requires
# the documents fetched across versions to be byte-identical to the
# current-vs-current baseline (inline fetches included, so block
# payloads cross the version boundary too).
#
# Needs full git history (CI: fetch-depth 0). Run from the repository
# root: ./scripts/check_wirecompat.sh
set -eu

NEW_ADDR=127.0.0.1:7961
OLD_ADDR=127.0.0.1:7962

prev=$(git describe --tags --abbrev=0 2>/dev/null || git rev-parse HEAD~1)
echo "wirecompat: current HEAD vs $prev"

work=$(mktemp -d)
newd=""; oldd=""
cleanup() {
    for pid in $newd $oldd; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in $newd $oldd; do
        wait "$pid" 2>/dev/null || true
    done
    git worktree remove --force "$work/prev" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/new/" ./cmd/cmifd ./cmd/cmifget
git worktree add --detach "$work/prev" "$prev" >/dev/null
(cd "$work/prev" && go build -o "$work/old/" ./cmd/cmifd ./cmd/cmifget)

"$work/new/cmifd" -addr "$NEW_ADDR" -news 2 &
newd=$!
"$work/old/cmifd" -addr "$OLD_ADDR" -news 2 &
oldd=$!

wait_up() { # getter addr
    i=0
    until "$1" -addr "$2" -timeout 2s list >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 50 ] && { echo "server $2 never came up" >&2; exit 1; }
        sleep 0.2
    done
}
wait_up "$work/new/cmifget" "$NEW_ADDR"
wait_up "$work/old/cmifget" "$OLD_ADDR"

# fetch CLIENT SERVER OUT: every surface a deployed pairing exercises —
# the listing, the structured document, and the inline fetch that moves
# the block payloads themselves across the version boundary.
fetch() {
    "$1" -addr "$2" list >"$3.list"
    "$1" -addr "$2" doc news >"$3.doc"
    "$1" -addr "$2" -inline doc news >"$3.inline"
}

# Each client is compared against its own same-version baseline, so a
# deliberate change in the TOOL's output format cannot masquerade as (or
# mask) a wire incompatibility: only the server on the other end varies
# within each pair.
fetch "$work/new/cmifget" "$NEW_ADDR" "$work/nc-ns"  # new client baseline
fetch "$work/new/cmifget" "$OLD_ADDR" "$work/nc-os"  # new client, old server
fetch "$work/old/cmifget" "$OLD_ADDR" "$work/oc-os"  # old client baseline
fetch "$work/old/cmifget" "$NEW_ADDR" "$work/oc-ns"  # old client, new server

fail=0
for pair in "nc-ns nc-os" "oc-os oc-ns"; do
    base=${pair% *}; side=${pair#* }
    for what in list doc inline; do
        if ! cmp -s "$work/$base.$what" "$work/$side.$what"; then
            echo "wirecompat: $side $what differs from the $base baseline:" >&2
            diff "$work/$base.$what" "$work/$side.$what" >&2 || true
            fail=1
        fi
    done
done
[ "$fail" -ne 0 ] && exit 1

echo "wirecompat: both directions byte-identical to baseline against $prev"
