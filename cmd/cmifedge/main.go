// Command cmifedge runs an edge cache: a read-through caching proxy
// that serves the full interchange protocol downstream while sourcing
// everything it serves from one upstream cmifd origin.
//
// Usage:
//
//	cmifedge -origin HOST:PORT -cache DIR [-addr 127.0.0.1:7912]
//	         [-cache-bytes N] [-mem-blocks N] [-pool N]
//	         [-upstream-timeout 10s] [-lease-ttl 2m]
//	         [-idle 2m] [-grace 5s] [-max-inflight 32]
//	         [-metrics ADDR] [-max-concurrent N] [-max-queue N]
//	         [-max-wait D] [-max-subscribers N] [-sub-queue N]
//
// Blocks are immutable under their content address, so the edge caches
// them forever: a miss fetches from the origin once, lands in the
// crash-safe disk cache under -cache (bounded by -cache-bytes, evicted
// least-recently-used), and survives restarts — a SIGKILLed edge comes
// back serving its corpus from disk without refetching. Documents are
// mutable, so the edge leases them: the first access subscribes to the
// origin's change stream and keeps a live local replica that upstream
// edits invalidate incrementally; an idle, unwatched replica is released
// after -lease-ttl. Mutations — document puts, block puts, edit
// batches — are forwarded to the origin and stream back down through
// the lease, so the origin stays the single writer.
//
// With -metrics, an HTTP endpoint serves the standard server instruments
// plus the cmif_edge_* cache and lease series at /metrics. The admission
// flags mirror cmifd's. It runs until SIGINT or SIGTERM, then drains
// gracefully and logs the final counter totals.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cmif"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7912", "downstream listen address")
	origin := flag.String("origin", "", "upstream origin address (required)")
	cacheDir := flag.String("cache", "", "disk block cache directory (required)")
	cacheBytes := flag.Int64("cache-bytes", 0, "disk cache budget in payload bytes (0 = default 256 MiB)")
	memBlocks := flag.Int("mem-blocks", 0, "in-memory block cache size fronting the disk tier (0 = default 1024)")
	pool := flag.Int("pool", 0, "upstream connection pool size (0 = default 4)")
	upstreamTimeout := flag.Duration("upstream-timeout", 0, "per-round-trip bound toward the origin (0 = default 10s)")
	leaseTTL := flag.Duration("lease-ttl", 0, "idle bound before an unwatched document lease is released (0 = default 2m)")
	idle := flag.Duration("idle", 2*time.Minute, "drop downstream connections idle for this long (0 = never)")
	grace := flag.Duration("grace", 5*time.Second, "shutdown grace period for in-flight requests")
	maxInFlight := flag.Int("max-inflight", 0, "max pipelined requests per downstream v2 connection (0 = default 32)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus/JSON metrics over HTTP at this address (empty disables)")
	maxConcurrent := flag.Int("max-concurrent", 0, "edge-wide admission bound on concurrently executing requests (0 disables admission control)")
	maxQueue := flag.Int("max-queue", 0, "requests allowed to queue for an admission slot beyond -max-concurrent")
	maxWait := flag.Duration("max-wait", 0, "longest a queued request may wait before it is shed (0 = default 100ms)")
	maxSubs := flag.Int("max-subscribers", 0, "edge-wide bound on live downstream subscriptions (0 = unlimited)")
	subQueue := flag.Int("sub-queue", 0, "per-subscriber change queue depth before a slow watcher is shed (0 = default 64)")
	flag.Parse()

	if *origin == "" {
		fatal(errors.New("-origin is required"))
	}
	if *cacheDir == "" {
		fatal(errors.New("-cache is required"))
	}

	metrics := cmif.NewMetrics()
	opts := []cmif.EdgeOption{
		cmif.WithOrigin(*origin),
		cmif.WithCacheDir(*cacheDir),
		cmif.WithCacheBytes(*cacheBytes),
		cmif.WithEdgeMemBlocks(*memBlocks),
		cmif.WithUpstreamPool(*pool),
		cmif.WithUpstreamTimeout(*upstreamTimeout),
		cmif.WithLeaseTTL(*leaseTTL),
		cmif.WithEdgeIdleTimeout(*idle),
		cmif.WithEdgeShutdownGrace(*grace),
		cmif.WithEdgeMaxInFlight(*maxInFlight),
		cmif.WithEdgeSubscriberQueue(*subQueue),
		cmif.WithEdgeMetrics(metrics),
	}
	if *maxConcurrent > 0 || *maxSubs > 0 {
		opts = append(opts, cmif.WithEdgeAdmission(cmif.AdmissionConfig{
			MaxConcurrent:  *maxConcurrent,
			MaxQueue:       *maxQueue,
			MaxWait:        *maxWait,
			MaxSubscribers: *maxSubs,
		}))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	e, err := cmif.NewEdge(opts...)
	if err != nil {
		fatal(err)
	}
	bound, err := e.Listen(*addr)
	if err != nil {
		e.Close()
		fatal(err)
	}
	ds := e.DiskStats()
	fmt.Printf("cmifedge: serving on %s, origin %s\n", bound, *origin)
	fmt.Printf("cmifedge: disk cache %s: %d blocks, %d bytes recovered\n",
		*cacheDir, ds.Blocks, ds.Bytes)

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			e.Close()
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		metricsSrv = &http.Server{Handler: mux}
		fmt.Printf("cmifedge: metrics on http://%s/metrics\n", ln.Addr())
		go func() {
			if err := metricsSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "cmifedge: metrics server:", err)
			}
		}()
	}

	err = e.Serve(ctx)

	if metricsSrv != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
		if serr := metricsSrv.Shutdown(drainCtx); serr != nil {
			fmt.Fprintln(os.Stderr, "cmifedge: metrics drain:", serr)
		}
		cancel()
	}
	for _, line := range metrics.CounterTotals() {
		fmt.Println("cmifedge: final", line)
	}

	switch {
	case err == nil:
		fmt.Println("cmifedge: drained, shutting down")
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "cmifedge: grace period expired; remaining connections force-closed")
	default:
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmifedge:", err)
	os.Exit(1)
}
