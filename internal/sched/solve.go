package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// ConflictError reports an unsatisfiable set of synchronization constraints:
// the paper's conflict case 1. Cycle lists the constraints forming a
// negative cycle in the difference-constraint graph; their combined windows
// cannot all hold.
type ConflictError struct {
	Cycle []Constraint
}

func (e *ConflictError) Error() string {
	var b strings.Builder
	b.WriteString("sched: unsatisfiable synchronization constraints:")
	for _, c := range e.Cycle {
		b.WriteString("\n  ")
		b.WriteString(c.Note)
	}
	return b.String()
}

// MustArcs returns the must-strictness explicit arcs on the conflict cycle.
func (e *ConflictError) MustArcs() []ArcRef {
	var out []ArcRef
	for _, c := range e.Cycle {
		if c.Kind == KindArc && c.Arc.Arc.Strict == core.Must {
			out = append(out, c.Arc)
		}
	}
	return out
}

// RelaxStrategy selects which May arc to drop when a conflict cycle offers a
// choice (DESIGN.md ablation 2).
type RelaxStrategy int

const (
	// RelaxFirstMay drops the first May arc encountered on the cycle.
	RelaxFirstMay RelaxStrategy = iota
	// RelaxWidestWindow drops the May arc with the widest delay window,
	// on the theory that wide windows were the author's least-firm wishes.
	RelaxWidestWindow
	// RelaxNarrowestWindow drops the tightest May arc: the constraint most
	// likely to be the binding one.
	RelaxNarrowestWindow
)

// SolveOptions configures the solver.
type SolveOptions struct {
	// Relax enables dropping May arcs to resolve conflicts.
	Relax bool
	// Strategy picks the victim among May arcs on a conflict cycle.
	Strategy RelaxStrategy
	// Workers caps the component worker pool of SolveParallel and the
	// incremental Solver. Zero means GOMAXPROCS.
	Workers int
}

// Solve computes the earliest feasible schedule, optionally relaxing May
// arcs. It returns a ConflictError when the constraints cannot be satisfied
// by dropping May arcs alone. This is the classic single-threaded full
// solve over the whole constraint system; SolveParallel and Solver are the
// component-parallel and incremental paths, which produce identical
// schedules.
func (g *Graph) Solve(opts SolveOptions) (*Schedule, error) {
	dropped := make(map[arcKey]bool)
	var droppedRefs []ArcRef
	for {
		sched, conflict := g.solveOnce(dropped)
		if conflict == nil {
			sched.Dropped = droppedRefs
			return sched, nil
		}
		if !opts.Relax {
			return nil, conflict
		}
		victim, ok := pickVictim(conflict.Cycle, dropped, opts.Strategy)
		if !ok {
			return nil, conflict
		}
		dropped[keyOf(victim)] = true
		droppedRefs = append(droppedRefs, victim)
	}
}

// pickVictim chooses a not-yet-dropped May arc from the cycle.
func pickVictim(cycle []Constraint, dropped map[arcKey]bool, strat RelaxStrategy) (ArcRef, bool) {
	var candidates []ArcRef
	seen := map[arcKey]bool{}
	for _, c := range cycle {
		if c.Kind != KindArc {
			continue
		}
		if c.Arc.Arc.Strict != core.May {
			continue
		}
		k := keyOf(c.Arc)
		if dropped[k] || seen[k] {
			continue
		}
		seen[k] = true
		candidates = append(candidates, c.Arc)
	}
	if len(candidates) == 0 {
		return ArcRef{}, false
	}
	switch strat {
	case RelaxWidestWindow:
		sort.SliceStable(candidates, func(i, j int) bool {
			return windowWidth(candidates[i]) > windowWidth(candidates[j])
		})
	case RelaxNarrowestWindow:
		sort.SliceStable(candidates, func(i, j int) bool {
			return windowWidth(candidates[i]) < windowWidth(candidates[j])
		})
	}
	return candidates[0], true
}

// windowWidth measures ε − δ in raw quantity values (best-effort; used only
// for ordering candidates).
func windowWidth(r ArcRef) int64 {
	return r.Arc.MaxDelay.Value - r.Arc.MinDelay.Value
}

// solveOnce runs feasibility detection and earliest-schedule extraction over
// the constraint set minus the dropped arcs.
func (g *Graph) solveOnce(dropped map[arcKey]bool) (*Schedule, *ConflictError) {
	cons := g.withoutArcs(dropped)
	n := len(g.events)

	sc := newSolveScratch(n, len(cons))
	times, conflict := solveSystem(n, cons, sc)
	if conflict != nil {
		return nil, &ConflictError{Cycle: conflict}
	}
	return &Schedule{graph: g, times: times}, nil
}

// solveSystem runs feasibility detection and, when feasible, extracts the
// earliest schedule with t[src]=0 for src = event 0. It returns the times,
// or the constraints of a negative cycle. The scratch arrays are reused
// across calls; the returned times slice is freshly allocated.
func solveSystem(n int, cons []Constraint, sc *solveScratch) ([]time.Duration, []Constraint) {
	sc.grow(n, len(cons))
	if cycleIdx := findNegativeCycle(n, cons, sc); cycleIdx != nil {
		cycle := make([]Constraint, len(cycleIdx))
		for i, ci := range cycleIdx {
			cycle[i] = cons[ci]
		}
		return nil, cycle
	}

	// Earliest schedule with t[rootBegin] = 0: for difference constraints
	// t_v − t_u ≤ w (edge u→v weight w), the earliest solution is
	// t_v = −dist(v → root), i.e. single-source shortest paths from the
	// root on the reversed graph.
	sc.buildCSR(n, cons, true)
	dist := sc.spfa(n, cons, 0)
	times := make([]time.Duration, n)
	for v := range times {
		if dist[v] == unreachable {
			// No path to the root: the event is unconstrained from below;
			// schedule it at the root (time zero).
			times[v] = 0
			continue
		}
		times[v] = -time.Duration(dist[v])
	}
	return times, nil
}

const unreachable = int64(math.MaxInt64)

// solveScratch is the reusable arena for one solver: CSR adjacency, SPFA
// queues and labels. Component workers each own one, so re-solves allocate
// almost nothing.
type solveScratch struct {
	off  []int32 // CSR offsets, len n+1
	edge []int32 // constraint indices, len m
	pos  []int32 // CSR fill cursor, len n

	dist    []int64
	parent  []int32
	pathlen []int32
	inQueue []bool
	// queue is a ring: the in-queue guard bounds live entries to n, so n
	// slots suffice and the hot loops never grow a slice.
	queue []int32
	order []EventID // optional SPFA seeding order (warm start)
}

func newSolveScratch(n, m int) *solveScratch {
	sc := &solveScratch{}
	sc.grow(n, m)
	return sc
}

// grow sizes every scratch array for n vertices and m constraints.
func (sc *solveScratch) grow(n, m int) {
	if cap(sc.off) < n+1 {
		sc.off = make([]int32, n+1)
		sc.pos = make([]int32, n)
		sc.dist = make([]int64, n)
		sc.parent = make([]int32, n)
		sc.pathlen = make([]int32, n)
		sc.inQueue = make([]bool, n)
		sc.queue = make([]int32, n)
	}
	sc.off = sc.off[:n+1]
	sc.pos = sc.pos[:n]
	sc.dist = sc.dist[:n]
	sc.parent = sc.parent[:n]
	sc.pathlen = sc.pathlen[:n]
	sc.inQueue = sc.inQueue[:n]
	sc.queue = sc.queue[:n]
	if cap(sc.edge) < m {
		sc.edge = make([]int32, m)
	}
	sc.edge = sc.edge[:m]
}

// buildCSR lays the constraints out as compact adjacency. With reverse set,
// edges are keyed by V (the reversed graph used for earliest extraction);
// otherwise by U (the forward graph used for feasibility).
func (sc *solveScratch) buildCSR(n int, cons []Constraint, reverse bool) {
	for i := range sc.off {
		sc.off[i] = 0
	}
	key := func(c *Constraint) int32 {
		if reverse {
			return int32(c.V)
		}
		return int32(c.U)
	}
	for i := range cons {
		sc.off[key(&cons[i])+1]++
	}
	for i := 0; i < n; i++ {
		sc.off[i+1] += sc.off[i]
		sc.pos[i] = sc.off[i]
	}
	for i := range cons {
		k := key(&cons[i])
		sc.edge[sc.pos[k]] = int32(i)
		sc.pos[k]++
	}
}

// spfa computes single-source shortest paths from src over the reversed
// graph laid out by buildCSR(reverse=true). The caller guarantees no
// negative cycles (checked beforehand). The result aliases the scratch.
// The worklist is a ring deque with the smaller-label-first heuristic:
// vertices whose label undercuts the queue front jump the line, which
// drastically cuts re-relaxations on arc-dense documents.
func (sc *solveScratch) spfa(n int, cons []Constraint, src EventID) []int64 {
	dist := sc.dist
	inq := sc.inQueue
	q := sc.queue
	for i := 0; i < n; i++ {
		dist[i] = unreachable
		inq[i] = false
	}
	dist[src] = 0
	head, count := 0, 1
	q[0] = int32(src)
	inq[src] = true
	for count > 0 {
		u := q[head]
		head++
		if head == n {
			head = 0
		}
		count--
		inq[u] = false
		du := dist[u]
		if du == unreachable {
			continue
		}
		for e := sc.off[u]; e < sc.off[u+1]; e++ {
			c := &cons[sc.edge[e]]
			// Reversed edge V→U with weight W.
			if nd := du + int64(c.W); nd < dist[c.U] {
				dist[c.U] = nd
				if !inq[c.U] {
					if count > 0 && nd <= dist[q[head]] {
						head--
						if head < 0 {
							head = n - 1
						}
						q[head] = int32(c.U)
					} else {
						tail := head + count
						if tail >= n {
							tail -= n
						}
						q[tail] = int32(c.U)
					}
					count++
					inq[c.U] = true
				}
			}
		}
	}
	return dist
}

// findNegativeCycle runs a queue-based Bellman–Ford with a virtual source
// (every vertex starts at distance 0) over the forward graph and returns
// the indices (into cons) of the constraints on a negative cycle, or nil
// when the system is feasible. A vertex whose improving path grows to n
// edges must lie on (or hang off) a negative cycle, which is then extracted
// through the parent pointers.
func findNegativeCycle(n int, cons []Constraint, sc *solveScratch) []int32 {
	sc.grow(n, len(cons))
	sc.buildCSR(n, cons, false)
	dist := sc.dist
	parent := sc.parent
	pathlen := sc.pathlen
	inq := sc.inQueue
	for i := 0; i < n; i++ {
		dist[i] = 0
		parent[i] = -1
		pathlen[i] = 0
		inq[i] = true
	}
	q := sc.queue
	// Seed the queue in warm-start order when one is installed, so the
	// first pass sweeps the system in (approximately) scheduled order.
	// Cold solves seed in descending id order: lower bounds propagate from
	// end events to begin events and from successors to predecessors —
	// both toward lower ids — so a descending first pass settles the long
	// seq chains in one sweep instead of one epoch per link.
	if len(sc.order) > 0 {
		seeded := make(map[EventID]bool, len(sc.order))
		fill := 0
		for _, v := range sc.order {
			if int(v) < n && !seeded[v] {
				q[fill] = int32(v)
				fill++
				seeded[v] = true
			}
		}
		for i := n - 1; i >= 0; i-- {
			if !seeded[EventID(i)] {
				q[fill] = int32(i)
				fill++
			}
		}
	} else {
		for i := 0; i < n; i++ {
			q[i] = int32(n - 1 - i)
		}
	}
	head, count := 0, n
	var cycleAt int32 = -1
	for count > 0 && cycleAt < 0 {
		u := q[head]
		head++
		if head == n {
			head = 0
		}
		count--
		inq[u] = false
		du := dist[u]
		for e := sc.off[u]; e < sc.off[u+1]; e++ {
			ci := sc.edge[e]
			c := &cons[ci]
			if nd := du + int64(c.W); nd < dist[c.V] {
				dist[c.V] = nd
				parent[c.V] = ci
				pathlen[c.V] = pathlen[u] + 1
				if int(pathlen[c.V]) >= n {
					cycleAt = int32(c.V)
					break
				}
				if !inq[c.V] {
					if count > 0 && nd <= dist[q[head]] {
						head--
						if head < 0 {
							head = n - 1
						}
						q[head] = int32(c.V)
					} else {
						tail := head + count
						if tail >= n {
							tail -= n
						}
						q[tail] = int32(c.V)
					}
					count++
					inq[c.V] = true
				}
			}
		}
	}
	if cycleAt < 0 {
		return nil
	}
	// Walk parents n times to be sure we are on the cycle, then collect.
	v := EventID(cycleAt)
	for i := 0; i < n; i++ {
		v = cons[parent[v]].U
	}
	var cycle []int32
	start := v
	for {
		ci := parent[v]
		cycle = append(cycle, ci)
		v = cons[ci].U
		if v == start {
			break
		}
	}
	// Reverse so the cycle reads in constraint direction.
	for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return cycle
}

// Verify checks a time assignment against every non-dropped constraint,
// returning the violated ones. Used by tests and by the playback simulator
// to audit traces.
func (g *Graph) Verify(times []time.Duration, dropped []ArcRef) []Constraint {
	droppedSet := make(map[arcKey]bool, len(dropped))
	for _, r := range dropped {
		droppedSet[keyOf(r)] = true
	}
	var violated []Constraint
	for _, c := range g.withoutArcs(droppedSet) {
		if times[c.V]-times[c.U] > c.W {
			violated = append(violated, c)
		}
	}
	return violated
}

// String renders the constraint count summary.
func (g *Graph) String() string {
	var structural, duration, arcs int
	for _, c := range g.flatten() {
		switch c.Kind {
		case KindStructural:
			structural++
		case KindDuration:
			duration++
		case KindArc:
			arcs++
		}
	}
	return fmt.Sprintf("sched.Graph{%d events, %d structural, %d duration, %d arc constraints}",
		len(g.events), structural, duration, arcs)
}
