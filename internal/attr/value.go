// Package attr implements CMIF attribute lists: ordered collections of
// name/value pairs in which each name may occur at most once (a global
// consistency rule from section 5.2 of the paper). Values follow the four
// example definitions the paper gives: ID (a character value without embedded
// spaces), NUMBER (a numeric value, here extended with the media-dependent
// units of section 5.3.2), STRING (a quoted character string) and value*
// (a nested list of further values or attribute pairs).
//
// The package also implements style dictionaries ("style" is a shorthand for
// placing a set of attributes on a node) with the paper's acyclicity rule:
// style definitions may refer to other styles as long as no style refers to
// itself, directly or indirectly.
package attr

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// Kind discriminates the value forms of section 5.2.
type Kind int

const (
	// KindID is a bare identifier (no embedded spaces).
	KindID Kind = iota
	// KindNumber is a numeric value, possibly with a media-dependent unit.
	KindNumber
	// KindString is a quoted character string.
	KindString
	// KindList is the paper's "value*" form: a nested list whose elements
	// are values or named sub-attributes.
	KindList
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindID:
		return "ID"
	case KindNumber:
		return "NUMBER"
	case KindString:
		return "STRING"
	case KindList:
		return "LIST"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a tagged union over the four attribute value forms. The zero
// Value is the empty ID, which renders as "-".
type Value struct {
	kind Kind
	id   string
	str  string
	num  units.Quantity
	list []Item
}

// Item is one element of a list value: either an anonymous Value or a named
// sub-attribute (Name != ""). Named items give lists the shape needed for
// channel and style dictionaries.
type Item struct {
	Name  string
	Value Value
}

// ID constructs an identifier value. Identifiers must not contain spaces;
// offending characters are replaced with '_' to keep documents parseable.
func ID(s string) Value {
	if strings.ContainsAny(s, " \t\n\r()\"") {
		s = strings.Map(func(r rune) rune {
			switch r {
			case ' ', '\t', '\n', '\r', '(', ')', '"':
				return '_'
			}
			return r
		}, s)
	}
	return Value{kind: KindID, id: s}
}

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Number constructs a dimensionless numeric value.
func Number(v int64) Value {
	return Value{kind: KindNumber, num: units.Q(v, units.None)}
}

// Quantity constructs a numeric value with a unit.
func Quantity(q units.Quantity) Value { return Value{kind: KindNumber, num: q} }

// VList constructs a list value of anonymous elements.
func VList(vs ...Value) Value {
	items := make([]Item, len(vs))
	for i, v := range vs {
		items[i] = Item{Value: v}
	}
	return Value{kind: KindList, list: items}
}

// ListOf constructs a list from explicit items (named or anonymous).
func ListOf(items ...Item) Value {
	return Value{kind: KindList, list: append([]Item(nil), items...)}
}

// Named is a convenience constructor for a named list item.
func Named(name string, v Value) Item { return Item{Name: name, Value: v} }

// Kind reports the value's form.
func (v Value) Kind() Kind { return v.kind }

// AsID returns the identifier text if the value is an ID.
func (v Value) AsID() (string, bool) {
	if v.kind == KindID {
		return v.id, true
	}
	return "", false
}

// AsString returns the string text if the value is a STRING.
func (v Value) AsString() (string, bool) {
	if v.kind == KindString {
		return v.str, true
	}
	return "", false
}

// AsNumber returns the quantity if the value is a NUMBER.
func (v Value) AsNumber() (units.Quantity, bool) {
	if v.kind == KindNumber {
		return v.num, true
	}
	return units.Quantity{}, false
}

// AsInt returns the integer value of a dimensionless NUMBER.
func (v Value) AsInt() (int64, bool) {
	if v.kind == KindNumber && v.num.Unit == units.None {
		return v.num.Value, true
	}
	return 0, false
}

// AsList returns the items if the value is a LIST.
func (v Value) AsList() ([]Item, bool) {
	if v.kind == KindList {
		return v.list, true
	}
	return nil, false
}

// Text returns a best-effort textual rendering of scalar values: the ID
// text, the string text, or the formatted number. Lists return false.
func (v Value) Text() (string, bool) {
	switch v.kind {
	case KindID:
		return v.id, true
	case KindString:
		return v.str, true
	case KindNumber:
		return v.num.String(), true
	default:
		return "", false
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindID:
		return v.id == o.id
	case KindString:
		return v.str == o.str
	case KindNumber:
		return v.num == o.num
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if v.list[i].Name != o.list[i].Name ||
				!v.list[i].Value.Equal(o.list[i].Value) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Clone returns a deep copy of the value.
func (v Value) Clone() Value {
	if v.kind != KindList {
		return v
	}
	items := make([]Item, len(v.list))
	for i, it := range v.list {
		items[i] = Item{Name: it.Name, Value: it.Value.Clone()}
	}
	return Value{kind: KindList, list: items}
}

// String renders the value in the document text syntax. Strings are quoted
// with Go-style escaping; lists render parenthesized.
func (v Value) String() string {
	var b strings.Builder
	v.write(&b)
	return b.String()
}

func (v Value) write(b *strings.Builder) {
	switch v.kind {
	case KindID:
		if v.id == "" {
			b.WriteString("-")
			return
		}
		b.WriteString(v.id)
	case KindString:
		b.WriteString(quote(v.str))
	case KindNumber:
		b.WriteString(v.num.String())
	case KindList:
		// Lists use square brackets so that anonymous lists can never be
		// confused with named "(name value)" groups in the document text.
		b.WriteByte('[')
		for i, it := range v.list {
			if i > 0 {
				b.WriteByte(' ')
			}
			if it.Name != "" {
				b.WriteByte('(')
				b.WriteString(it.Name)
				b.WriteByte(' ')
				it.Value.write(b)
				b.WriteByte(')')
			} else {
				it.Value.write(b)
			}
		}
		b.WriteByte(']')
	}
}

// quote renders s as a double-quoted string with minimal escaping.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Unquote reverses quote; it accepts the escapes quote emits.
func Unquote(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("attr: not a quoted string: %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("attr: dangling escape in %q", s)
		}
		switch body[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Errorf("attr: unknown escape \\%c in %q", body[i], s)
		}
	}
	return b.String(), nil
}
