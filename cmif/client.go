package cmif

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Client talks to an interchange server over one or more pooled
// connections. Safe for concurrent use: on protocol v2 (negotiated by
// default) concurrent operations are pipelined and multiplexed over each
// connection, and WithPoolSize spreads them across several connections;
// on protocol v1 operations serialize per connection. Every operation
// takes a context.Context whose deadline and cancellation are enforced
// on the wire; on v2 a cancelled call abandons only that request — the
// connection survives.
type Client struct {
	conns []*transport.Client
	next  atomic.Uint32
}

// clientConfig collects the dial options.
type clientConfig struct {
	timeout    time.Duration
	cache      *BlockCache
	chunkCache *ChunkCache
	poolSize   int
	maxVersion int
	compress   bool
}

// DialOption configures Dial. Dial options are a distinct type from the
// server's ServeOption and the edge tier's EdgeOption, so mixing option
// sets across constructors is a compile error rather than a silent
// misconfiguration.
type DialOption func(*clientConfig)

// WithRequestTimeout bounds each round trip that carries no context
// deadline of its own. Zero (the default) means unbounded.
func WithRequestTimeout(d time.Duration) DialOption {
	return func(c *clientConfig) { c.timeout = d }
}

// WithPoolSize dials n connections instead of one and spreads operations
// across them round-robin. With protocol v2 each connection already
// pipelines many concurrent requests, so a small pool goes a long way;
// under v1 (old servers) the pool is the only source of concurrency.
// Values below 1 mean 1.
func WithPoolSize(n int) DialOption {
	return func(c *clientConfig) { c.poolSize = n }
}

// WithProtocolVersion caps the wire protocol version the client offers
// at connect: 1 forces the legacy strict request/response protocol, 2
// the multiplexed protocol without live documents, 3 adds subscriptions
// and edit submission, and 4 (the default) adds negotiated frame
// compression and chunk-deduped block fetches. Negotiation falls back
// to the newest version the server speaks; only the newer operations
// fail (with ErrUnsupported) on a downgraded connection.
func WithProtocolVersion(v int) DialOption {
	return func(c *clientConfig) { c.maxVersion = v }
}

// WithCompression turns negotiated per-frame compression on or off for
// this client (the default is on). It takes effect only when the server
// also speaks protocol v4 with compression enabled; either side
// declining leaves frames plain.
func WithCompression(on bool) DialOption {
	return func(c *clientConfig) { c.compress = on }
}

// ChunkCache is a client-side LRU cache of content-defined chunks,
// byte-budgeted, backing the protocol-v4 dedupe fetch path: a client
// holding most of a block's chunks fetches only the manifest plus the
// missing chunks. Safe for concurrent use and shareable across clients
// with WithSharedChunkCache.
type ChunkCache = transport.ChunkCache

// ChunkCacheStats snapshots a ChunkCache's effectiveness counters.
type ChunkCacheStats = transport.ChunkCacheStats

// NewChunkCache returns a chunk cache with the given byte budget (a
// non-positive budget gets 64 MiB).
func NewChunkCache(budgetBytes int64) *ChunkCache { return transport.NewChunkCache(budgetBytes) }

// WithChunkCache gives the client a private chunk cache with the given
// byte budget, enabling dedupe block fetches on protocol v4: warm
// re-fetches of near-duplicate blocks move only the chunks the client
// does not already hold. Shared across the client's pooled connections.
func WithChunkCache(budgetBytes int64) DialOption {
	return func(c *clientConfig) { c.chunkCache = transport.NewChunkCache(budgetBytes) }
}

// WithSharedChunkCache attaches an existing chunk cache (NewChunkCache),
// so several clients dedupe fetches against common local memory.
func WithSharedChunkCache(cc *ChunkCache) DialOption {
	return func(c *clientConfig) { c.chunkCache = cc }
}

// BlockCache is a client-side LRU block cache with singleflight miss
// de-duplication. Safe for concurrent use; shared automatically across a
// client's pooled connections, and shareable across clients with
// WithSharedCache.
type BlockCache = transport.BlockCache

// CacheStats snapshots a BlockCache's effectiveness counters.
type CacheStats = transport.CacheStats

// NewBlockCache returns a cache holding up to size blocks (a non-positive
// size gets a default of 256). Attach it to clients with WithSharedCache.
func NewBlockCache(size int) *BlockCache { return transport.NewBlockCache(size) }

// WithCache gives the client a private LRU block cache holding up to size
// blocks: repeated Block fetches of the same name hit the network once,
// and concurrent fetches of one block collapse into a single wire call.
// The cache is shared across the client's pooled connections. To share a
// cache across clients, use WithSharedCache.
func WithCache(size int) DialOption {
	return func(c *clientConfig) { c.cache = transport.NewBlockCache(size) }
}

// WithSharedCache attaches an existing cache (NewBlockCache), so several
// clients serve block fetches from common local memory and de-duplicate
// concurrent misses process-wide.
func WithSharedCache(cache *BlockCache) DialOption {
	return func(c *clientConfig) { c.cache = cache }
}

// Dial connects to an interchange server, honouring ctx during connection
// establishment and the protocol handshake.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := clientConfig{poolSize: 1, maxVersion: 4, compress: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.poolSize < 1 {
		cfg.poolSize = 1
	}
	c := &Client{}
	for i := 0; i < cfg.poolSize; i++ {
		dialOpts := []transport.DialOption{
			transport.WithMaxProtocolVersion(cfg.maxVersion),
			transport.WithFrameCompression(cfg.compress),
		}
		if cfg.chunkCache != nil {
			dialOpts = append(dialOpts, transport.WithChunkCache(cfg.chunkCache))
		}
		tc, err := transport.DialContext(ctx, addr, dialOpts...)
		if err != nil {
			c.Close()
			return nil, wireError(err)
		}
		tc.Timeout = cfg.timeout
		tc.Cache = cfg.cache
		c.conns = append(c.conns, tc)
	}
	return c, nil
}

// pick returns the connection the next operation rides: round-robin over
// the pool.
func (c *Client) pick() *transport.Client {
	if len(c.conns) == 1 {
		return c.conns[0]
	}
	return c.conns[int(c.next.Add(1)-1)%len(c.conns)]
}

// Close says goodbye on every pooled connection and closes them all.
func (c *Client) Close() error {
	var first error
	for _, tc := range c.conns {
		if err := tc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PoolSize reports how many connections the client pools.
func (c *Client) PoolSize() int { return len(c.conns) }

// ProtocolVersion reports the wire protocol version the connections
// negotiated (1 through 4).
func (c *Client) ProtocolVersion() int {
	if len(c.conns) == 0 {
		return 0
	}
	return c.conns[0].Version()
}

// Compressed reports whether negotiated frame compression is active on
// the pooled connections.
func (c *Client) Compressed() bool {
	return len(c.conns) > 0 && c.conns[0].Compressed()
}

// ChunkCacheStats snapshots the attached chunk cache's counters; ok is
// false when the client was dialled without one.
func (c *Client) ChunkCacheStats() (stats ChunkCacheStats, ok bool) {
	if len(c.conns) == 0 || c.conns[0].ChunkCache == nil {
		return ChunkCacheStats{}, false
	}
	return c.conns[0].ChunkCache.Stats(), true
}

// DedupeFetches reports how many block fetches across the pool were
// served by the chunk-dedupe path (manifest plus missing chunks) rather
// than a whole-payload transfer.
func (c *Client) DedupeFetches() int64 {
	var n int64
	for _, tc := range c.conns {
		n += tc.DedupeFetches()
	}
	return n
}

// DedupeBytesSaved reports payload bytes the dedupe path kept off the
// wire across the pool — chunk bytes served from the local cache during
// dedupe fetches.
func (c *Client) DedupeBytesSaved() int64 {
	var n int64
	for _, tc := range c.conns {
		n += tc.DedupeBytesSaved()
	}
	return n
}

// BytesSent reports accumulated request traffic across the pool, for
// transport-cost accounting.
func (c *Client) BytesSent() int64 {
	var n int64
	for _, tc := range c.conns {
		n += tc.BytesSent()
	}
	return n
}

// BytesReceived reports accumulated response traffic across the pool.
func (c *Client) BytesReceived() int64 {
	var n int64
	for _, tc := range c.conns {
		n += tc.BytesReceived()
	}
	return n
}

// wireConfig collects the per-call wire options.
type wireConfig struct {
	encoding transport.Encoding
	inline   bool
}

// WireOption configures document transfers (Client.Document, Client.Put).
type WireOption func(*wireConfig)

// WithBinaryWire ships the document in the compact binary encoding instead
// of the text default.
func WithBinaryWire() WireOption {
	return func(c *wireConfig) { c.encoding = transport.EncodingBinary }
}

// WithInline asks the server to inline data payloads into the tree, so the
// transfer is self-contained (no shared storage server). Fetch-only.
func WithInline() WireOption {
	return func(c *wireConfig) { c.inline = true }
}

func wireConfigOf(opts []WireOption) wireConfig {
	cfg := wireConfig{encoding: transport.EncodingText}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Document fetches the document registered under name. A missing name
// matches both ErrRemote and ErrNotFound under errors.Is.
func (c *Client) Document(ctx context.Context, name string, opts ...WireOption) (*Document, error) {
	cfg := wireConfigOf(opts)
	d, err := c.pick().GetDoc(ctx, name, transport.GetDocOptions{
		Encoding: cfg.encoding, Inline: cfg.inline,
	})
	if err != nil {
		return nil, wireError(err)
	}
	return wrapDocument(d), nil
}

// OpenDoc fetches the document registered under name — the Fetcher
// surface of Document, always in the default wire encoding.
func (c *Client) OpenDoc(ctx context.Context, name string) (*Document, error) {
	return c.Document(ctx, name)
}

// Put registers a document under name on the server. Inlined payloads are
// absorbed into the server's store.
func (c *Client) Put(ctx context.Context, name string, d *Document, opts ...WireOption) error {
	cfg := wireConfigOf(opts)
	return wireError(c.pick().PutDoc(ctx, name, d.doc, cfg.encoding))
}

// Block fetches a data block by name or content address. A missing block
// matches both ErrRemote and ErrNotFound under errors.Is. On protocol v2
// a block too large for a single response frame arrives transparently as
// a chunked stream; under v1 such blocks fail with ErrRemote.
func (c *Client) Block(ctx context.Context, name string) (*Block, error) {
	b, err := c.pick().GetBlock(ctx, name)
	if err != nil {
		return nil, wireError(err)
	}
	return b, nil
}

// Blocks fetches many blocks in batched round trips: up to 64 names per
// request frame instead of one round trip per block. The result aligns
// with names; a name the server cannot resolve yields a nil entry (partial
// results are not an error). A cache attached at Dial time serves hits
// locally and absorbs the fetched blocks.
func (c *Client) Blocks(ctx context.Context, names []string) ([]*Block, error) {
	blocks, err := c.pick().GetBlocks(ctx, names)
	if err != nil {
		return nil, wireError(err)
	}
	return blocks, nil
}

// Descriptors fetches only the attribute lists of the named blocks,
// batched, without moving payloads — the paper's cheap queries over
// "relatively small clusters of data (the attributes)". Unresolvable
// names are absent from the result map.
func (c *Client) Descriptors(ctx context.Context, names []string) (map[string]AttrList, error) {
	descs, err := c.pick().GetDescriptors(ctx, names)
	if err != nil {
		return nil, wireError(err)
	}
	return descs, nil
}

// Prefetch resolves every external file the document references and
// fetches the blocks in batched round trips, returning a local store ready
// to back a Pipeline run (WithStore). Blocks the server does not hold are
// simply absent from the store — constraint filtering reports them as
// missing data — so a partial corpus is not an error. With a cache
// attached, repeated prefetches of overlapping presentations hit the
// network once per block.
func (c *Client) Prefetch(ctx context.Context, d *Document) (*Store, error) {
	return PrefetchVia(ctx, c, d)
}

// CacheStats snapshots the attached cache's counters; ok is false when the
// client was dialled without a cache.
func (c *Client) CacheStats() (stats CacheStats, ok bool) {
	if len(c.conns) == 0 || c.conns[0].Cache == nil {
		return CacheStats{}, false
	}
	return c.conns[0].Cache.Stats(), true
}

// PutBlock stores a block on the server, returning its content address.
func (c *Client) PutBlock(ctx context.Context, b *Block) (string, error) {
	id, err := c.pick().PutBlock(ctx, b)
	if err != nil {
		return "", wireError(err)
	}
	return id, nil
}

// List returns the names of documents the server offers, sorted.
func (c *Client) List(ctx context.Context) ([]string, error) {
	names, err := c.pick().ListDocs(ctx)
	if err != nil {
		return nil, wireError(err)
	}
	return names, nil
}
