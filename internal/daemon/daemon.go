// Package daemon factors out the lifecycle scaffolding shared by the
// cmif daemons (cmifd, cmifedge, cmifcluster): the serving flags every
// entrypoint exposes with identical semantics, the optional metrics
// HTTP endpoint, signal-driven graceful drain, and exit classification.
// Each command keeps only what makes it itself — its own flags, its
// constructor, its banner.
package daemon

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
)

// Flags holds the serving knobs every daemon exposes. Register them on
// a FlagSet with Register, parse, then read the fields.
type Flags struct {
	Addr           string
	Idle           time.Duration
	Grace          time.Duration
	MaxInFlight    int
	Metrics        string
	MaxConcurrent  int
	MaxQueue       int
	MaxWait        time.Duration
	MaxSubscribers int
	SubQueue       int
}

// Register installs the shared flags on fs. defaultAddr seeds -addr and
// scope names the admission bound's breadth in help text ("server-wide",
// "edge-wide", "node-wide").
func (f *Flags) Register(fs *flag.FlagSet, defaultAddr, scope string) {
	fs.StringVar(&f.Addr, "addr", defaultAddr, "listen address")
	fs.DurationVar(&f.Idle, "idle", 2*time.Minute, "drop connections that deliver no data for this long (0 = never)")
	fs.DurationVar(&f.Grace, "grace", 5*time.Second, "shutdown grace period for in-flight requests")
	fs.IntVar(&f.MaxInFlight, "max-inflight", 0, "max pipelined requests per v2 connection (0 = default 32)")
	fs.StringVar(&f.Metrics, "metrics", "", "serve Prometheus/JSON metrics over HTTP at this address (empty disables)")
	fs.IntVar(&f.MaxConcurrent, "max-concurrent", 0, scope+" admission bound on concurrently executing requests (0 disables admission control)")
	fs.IntVar(&f.MaxQueue, "max-queue", 0, "requests allowed to queue for an admission slot beyond -max-concurrent")
	fs.DurationVar(&f.MaxWait, "max-wait", 0, "longest a queued request may wait before it is shed (0 = default 100ms)")
	fs.IntVar(&f.MaxSubscribers, "max-subscribers", 0, scope+" bound on live document subscriptions (0 = unlimited)")
	fs.IntVar(&f.SubQueue, "sub-queue", 0, "per-subscriber change queue depth before a slow watcher is shed (0 = default 64)")
}

// Admission converts the admission flags into a transport config,
// reporting whether any bound was requested at all.
func (f *Flags) Admission() (transport.Admission, bool) {
	if f.MaxConcurrent <= 0 && f.MaxSubscribers <= 0 {
		return transport.Admission{}, false
	}
	return transport.Admission{
		MaxConcurrent:  f.MaxConcurrent,
		MaxQueue:       f.MaxQueue,
		MaxWait:        f.MaxWait,
		MaxSubscribers: f.MaxSubscribers,
	}, true
}

// Server is the lifecycle surface Run drives: block serving until the
// context is cancelled, drain, and report how the drain went.
type Server interface {
	Serve(ctx context.Context) error
	Close() error
}

// RunConfig parameterizes Run for one daemon.
type RunConfig struct {
	Name        string            // command name, prefixes every log line
	Grace       time.Duration     // metrics drain bound after the wire listener drains
	MetricsAddr string            // HTTP metrics address; empty disables the endpoint
	Metrics     *metrics.Registry // instruments to expose and total on exit
}

// SignalContext returns a context cancelled by SIGINT or SIGTERM, plus
// its stop function.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Run drives the daemon to completion: it exposes the metrics endpoint,
// serves until ctx is cancelled, drains the metrics listener only after
// the wire server has drained (a scraper watching the shutdown sees the
// final request totals), prints the counter totals, and classifies the
// outcome into an exit code. The caller has already bound the listener
// and printed its banner; on return, os.Exit with the code.
func Run(ctx context.Context, s Server, cfg RunConfig) int {
	var metricsSrv *http.Server
	if cfg.MetricsAddr != "" && cfg.Metrics != nil {
		ln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			s.Close()
			fmt.Fprintf(os.Stderr, "%s: metrics listener: %v\n", cfg.Name, err)
			return 1
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", cfg.Metrics.Handler())
		metricsSrv = &http.Server{Handler: mux}
		fmt.Printf("%s: metrics on http://%s/metrics\n", cfg.Name, ln.Addr())
		go func() {
			if err := metricsSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "%s: metrics server: %v\n", cfg.Name, err)
			}
		}()
	}

	err := s.Serve(ctx)

	if metricsSrv != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), cfg.Grace)
		if serr := metricsSrv.Shutdown(drainCtx); serr != nil {
			fmt.Fprintf(os.Stderr, "%s: metrics drain: %v\n", cfg.Name, serr)
		}
		cancel()
	}
	if cfg.Metrics != nil {
		for _, line := range cfg.Metrics.CounterTotals() {
			fmt.Printf("%s: final %s\n", cfg.Name, line)
		}
	}

	switch {
	case err == nil:
		fmt.Printf("%s: drained, shutting down\n", cfg.Name)
		return 0
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "%s: grace period expired; remaining connections force-closed\n", cfg.Name)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.Name, err)
		return 1
	}
}
