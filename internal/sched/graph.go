// Package sched implements the timing semantics of CMIF documents: the
// default synchronization arcs derived from the tree structure (section
// 5.3.1), the explicit synchronization arcs of Figure 9, the synchronization
// equation tref + δ ≤ tactual ≤ tref + ε, and the detection of the paper's
// conflict case 1 ("an unreasonable synchronization constraint may have been
// defined, directly or indirectly, by a user").
//
// The document's events (begin/end of every node) and their constraints form
// a system of difference constraints t_v − t_u ≤ w. The system is solved
// with a queue-based Bellman–Ford; a negative cycle is exactly an
// unsatisfiable set of synchronization relationships and is reported with
// the provenance of every constraint on the cycle. "May" arcs that appear on
// a conflict cycle can be relaxed (dropped) — must arcs can not, mirroring
// the paper's May/Must semantics.
package sched

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/units"
)

// EventID identifies one begin/end event. Events are numbered densely:
// node k's begin is 2k, its end 2k+1.
type EventID int32

// Event is the schedulable unit: one endpoint of one node.
type Event struct {
	Node *core.Node
	End  core.EndPoint
}

// String renders e.g. "/story-3/intro.begin".
func (e Event) String() string {
	return e.Node.PathString() + "." + e.End.String()
}

// ConstraintKind records where a constraint came from, for conflict
// reporting and for the relaxation pass.
type ConstraintKind int

const (
	// KindStructural marks a default arc derived from the tree (seq
	// ordering, par containment).
	KindStructural ConstraintKind = iota
	// KindDuration marks a leaf's presentation-duration constraint.
	KindDuration
	// KindArc marks an explicit synchronization arc.
	KindArc
	// KindRuntime marks a constraint injected by a presentation
	// environment (device latency, user interaction), not by the document.
	KindRuntime
)

func (k ConstraintKind) String() string {
	switch k {
	case KindStructural:
		return "structural"
	case KindDuration:
		return "duration"
	case KindArc:
		return "arc"
	case KindRuntime:
		return "runtime"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ArcRef points at one explicit arc in the document: the node carrying it
// and its position in that node's syncarcs list.
type ArcRef struct {
	Node  *core.Node
	Index int
	Arc   core.SyncArc
}

func (r ArcRef) String() string {
	return fmt.Sprintf("%s syncarcs[%d] %s", r.Node.PathString(), r.Index, r.Arc)
}

// Constraint is one difference constraint t[V] − t[U] ≤ W.
type Constraint struct {
	U, V EventID
	W    time.Duration
	Kind ConstraintKind
	// Arc is set for KindArc constraints.
	Arc ArcRef
	// Note is a human-readable description of the constraint's origin.
	Note string
}

// Graph is the constraint system for one document.
type Graph struct {
	doc         *core.Document
	events      []Event
	nodeIndex   map[*core.Node]int32
	constraints []Constraint
	arcs        []ArcRef
}

// Options configures graph construction.
type Options struct {
	// DurationOf overrides the duration source for leaves. When nil, the
	// document's duration attribute (converted with the leaf's channel
	// rates) is used.
	DurationOf func(n *core.Node) (time.Duration, bool)
	// DefaultLeafDuration is used for leaves with no known duration.
	// Zero means such leaves are flexible (any non-negative length).
	DefaultLeafDuration time.Duration
	// RigidLeaves adds upper bounds end ≤ begin + D so leaf events cannot
	// be stretched (no freeze-frame). The paper's section 5.3.4 example
	// relies on stretching ("this may require a freeze-frame video
	// operation"), so the default is stretchable.
	RigidLeaves bool
	// SeqGaps permits dead time between consecutive children of a
	// sequential node. The default (false) pins each successor's begin to
	// its predecessor's end, so a delayed successor stretches the
	// predecessor — the freeze-frame semantics of section 5.3.4. With
	// SeqGaps, a delayed successor instead leaves the channel idle.
	SeqGaps bool
}

// Begin returns the begin-event id of node n.
func (g *Graph) Begin(n *core.Node) EventID { return EventID(g.nodeIndex[n] * 2) }

// End returns the end-event id of node n.
func (g *Graph) End(n *core.Node) EventID { return EventID(g.nodeIndex[n]*2 + 1) }

// Event returns the event for an id.
func (g *Graph) Event(id EventID) Event { return g.events[id] }

// NumEvents reports the number of events (2 per node).
func (g *Graph) NumEvents() int { return len(g.events) }

// Constraints returns the constraint list. Shared; do not mutate.
func (g *Graph) Constraints() []Constraint { return g.constraints }

// Arcs returns every explicit arc found in the document.
func (g *Graph) Arcs() []ArcRef { return append([]ArcRef(nil), g.arcs...) }

// Doc returns the document the graph was built from.
func (g *Graph) Doc() *core.Document { return g.doc }

// eventOf resolves an arc endpoint to an event id.
func (g *Graph) eventOf(n *core.Node, ep core.EndPoint) EventID {
	if ep == core.End {
		return g.End(n)
	}
	return g.Begin(n)
}

// Build constructs the constraint graph for the document.
func Build(d *core.Document, opts Options) (*Graph, error) {
	g := &Graph{doc: d, nodeIndex: make(map[*core.Node]int32)}

	// Enumerate events.
	d.Root.Walk(func(n *core.Node) bool {
		g.nodeIndex[n] = int32(len(g.events) / 2)
		g.events = append(g.events,
			Event{Node: n, End: core.Begin},
			Event{Node: n, End: core.End})
		return true
	})

	durationOf := opts.DurationOf
	if durationOf == nil {
		durationOf = func(n *core.Node) (time.Duration, bool) {
			q, ok := d.DurationOf(n)
			if !ok {
				return 0, false
			}
			dur, err := d.ResolverFor(n).Duration(q)
			if err != nil {
				return 0, false
			}
			return dur, true
		}
	}

	var buildErr error
	d.Root.Walk(func(n *core.Node) bool {
		if buildErr != nil {
			return false
		}
		g.addStructural(n, durationOf, opts)
		if err := g.addExplicitArcs(n); err != nil {
			buildErr = err
			return false
		}
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	return g, nil
}

// lower adds t[v] ≥ t[u] + w, i.e. t[u] − t[v] ≤ −w (edge v→u).
func (g *Graph) lower(u, v EventID, w time.Duration, kind ConstraintKind, arc ArcRef, note string) {
	g.constraints = append(g.constraints, Constraint{
		U: v, V: u, W: -w, Kind: kind, Arc: arc, Note: note,
	})
}

// upper adds t[v] ≤ t[u] + w (edge u→v).
func (g *Graph) upper(u, v EventID, w time.Duration, kind ConstraintKind, arc ArcRef, note string) {
	g.constraints = append(g.constraints, Constraint{
		U: u, V: v, W: w, Kind: kind, Arc: arc, Note: note,
	})
}

// addStructural encodes the default synchronization arcs of section 5.3.1:
//
//   - "Within a sequential node, a default synchronization arc exists from
//     the starting node of the arc to its sequentially first child. There
//     are also arcs from the end of leaf nodes to the start of the successor
//     leaf. Finally, an arc exists from the last child of a sequential node
//     to the end of its parent."
//   - "Parallel nodes have default arcs from the parallel parent node to
//     each of the children ... synchronization arcs also exist from the end
//     of each of the children to the end of the parent."
//
// The seq relation is "start the successor as soon as possible": a lower
// bound whose earliest solution is equality. The par end relation is "start
// the successor when the slowest parallel node finishes": end(parent) is
// bounded below by every child's end, and the earliest solution is the max.
func (g *Graph) addStructural(n *core.Node, durationOf func(*core.Node) (time.Duration, bool), opts Options) {
	nb, ne := g.Begin(n), g.End(n)

	// Every node runs forward in time.
	g.lower(nb, ne, 0, KindStructural, ArcRef{}, "end after begin of "+n.PathString())

	if n.Type.IsLeaf() {
		dur, known := durationOf(n)
		if !known {
			dur = opts.DefaultLeafDuration
		}
		if dur > 0 {
			g.lower(nb, ne, dur, KindDuration, ArcRef{},
				fmt.Sprintf("duration %v of %s", dur, n.PathString()))
			if opts.RigidLeaves {
				g.upper(nb, ne, dur, KindDuration, ArcRef{},
					fmt.Sprintf("rigid duration %v of %s", dur, n.PathString()))
			}
		}
		return
	}

	children := n.Children()
	switch n.Type {
	case core.Seq:
		prev := EventID(-1)
		for i, c := range children {
			cb, ce := g.Begin(c), g.End(c)
			if i == 0 {
				g.lower(nb, cb, 0, KindStructural, ArcRef{},
					"seq parent begin to first child "+c.PathString())
			} else {
				g.lower(prev, cb, 0, KindStructural, ArcRef{},
					"seq successor "+c.PathString())
				if !opts.SeqGaps {
					// Gap-free: the successor begins exactly when the
					// predecessor ends, so delays propagate backwards as
					// stretch (freeze-frame) rather than dead air.
					g.upper(prev, cb, 0, KindStructural, ArcRef{},
						"seq gap-free adjacency before "+c.PathString())
				}
			}
			prev = ce
		}
		if len(children) > 0 {
			g.lower(prev, ne, 0, KindStructural, ArcRef{},
				"seq last child to parent end "+n.PathString())
			if !opts.SeqGaps {
				g.upper(prev, ne, 0, KindStructural, ArcRef{},
					"seq parent ends with last child "+n.PathString())
			}
		}
	case core.Par:
		for _, c := range children {
			cb, ce := g.Begin(c), g.End(c)
			g.lower(nb, cb, 0, KindStructural, ArcRef{},
				"par parent begin to child "+c.PathString())
			g.lower(ce, ne, 0, KindStructural, ArcRef{},
				"par child end to parent end "+c.PathString())
		}
	}
}

// addExplicitArcs encodes the node's explicit synchronization arcs via the
// synchronization equation: with tref = t[srcEvent] + offset,
//
//	tref + δ ≤ t[dstEvent] ≤ tref + ε.
//
// The offset is converted with the source node's channel rates ("offsets may
// be expressed in terms of media-dependent units"); δ and ε with the
// destination's.
func (g *Graph) addExplicitArcs(n *core.Node) error {
	arcs, err := n.Arcs()
	if err != nil {
		return err
	}
	for i, a := range arcs {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("sched: %s arc %d: %w", n.PathString(), i, err)
		}
		src, dst, err := n.ResolveArc(a)
		if err != nil {
			return fmt.Errorf("sched: %s arc %d: %w", n.PathString(), i, err)
		}
		ref := ArcRef{Node: n, Index: i, Arc: a}
		g.arcs = append(g.arcs, ref)

		srcEv := g.eventOf(src, a.SrcEnd)
		dstEv := g.eventOf(dst, a.DestEnd)

		offset, err := g.doc.ResolverFor(src).Duration(a.Offset)
		if err != nil {
			return fmt.Errorf("sched: %s arc %d offset: %w", n.PathString(), i, err)
		}
		dstRes := g.doc.ResolverFor(dst)
		minD, err := dstRes.Duration(a.MinDelay)
		if err != nil {
			return fmt.Errorf("sched: %s arc %d min_delay: %w", n.PathString(), i, err)
		}
		note := ref.String()
		g.lower(srcEv, dstEv, offset+minD, KindArc, ref, note)
		if !units.IsInfinite(a.MaxDelay) {
			maxD, err := dstRes.Duration(a.MaxDelay)
			if err != nil {
				return fmt.Errorf("sched: %s arc %d max_delay: %w", n.PathString(), i, err)
			}
			g.upper(srcEv, dstEv, offset+maxD, KindArc, ref, note)
		}
	}
	return nil
}

// Clone returns a graph sharing the document and event table but with an
// independent constraint list, so runtime constraints can be added without
// disturbing the original.
func (g *Graph) Clone() *Graph {
	return &Graph{
		doc:         g.doc,
		events:      g.events,
		nodeIndex:   g.nodeIndex,
		constraints: append([]Constraint(nil), g.constraints...),
		arcs:        append([]ArcRef(nil), g.arcs...),
	}
}

// AddRuntimeLower adds the runtime constraint t[v] ≥ t[u] + w: presentation
// environments use this to inject device latencies and interaction delays
// (section 5.3.3 case 2 analysis).
func (g *Graph) AddRuntimeLower(u, v EventID, w time.Duration, note string) {
	g.lower(u, v, w, KindRuntime, ArcRef{}, note)
}

// AddRuntimeUpper adds the runtime constraint t[v] ≤ t[u] + w.
func (g *Graph) AddRuntimeUpper(u, v EventID, w time.Duration, note string) {
	g.upper(u, v, w, KindRuntime, ArcRef{}, note)
}

// WithoutArc returns a clone of the graph with every constraint of the
// given explicit arc removed. Playback environments use this to record and
// bypass Must arcs they cannot honour.
func (g *Graph) WithoutArc(r ArcRef) *Graph {
	c := g.Clone()
	key := keyOf(r)
	kept := c.constraints[:0]
	for _, con := range c.constraints {
		if con.Kind == KindArc && keyOf(con.Arc) == key {
			continue
		}
		kept = append(kept, con)
	}
	c.constraints = kept
	return c
}

// withoutArcs returns a copy of the constraint list with every constraint of
// the listed arcs removed. Used by the relaxation pass.
func (g *Graph) withoutArcs(dropped map[arcKey]bool) []Constraint {
	if len(dropped) == 0 {
		return g.constraints
	}
	out := make([]Constraint, 0, len(g.constraints))
	for _, c := range g.constraints {
		if c.Kind == KindArc && dropped[keyOf(c.Arc)] {
			continue
		}
		out = append(out, c)
	}
	return out
}

// arcKey identifies an arc by carrier node and index.
type arcKey struct {
	node  *core.Node
	index int
}

func keyOf(r ArcRef) arcKey { return arcKey{node: r.Node, index: r.Index} }
