// Package sched implements the timing semantics of CMIF documents: the
// default synchronization arcs derived from the tree structure (section
// 5.3.1), the explicit synchronization arcs of Figure 9, the synchronization
// equation tref + δ ≤ tactual ≤ tref + ε, and the detection of the paper's
// conflict case 1 ("an unreasonable synchronization constraint may have been
// defined, directly or indirectly, by a user").
//
// The document's events (begin/end of every node) and their constraints form
// a system of difference constraints t_v − t_u ≤ w. The system is solved
// with a queue-based Bellman–Ford; a negative cycle is exactly an
// unsatisfiable set of synchronization relationships and is reported with
// the provenance of every constraint on the cycle. "May" arcs that appear on
// a conflict cycle can be relaxed (dropped) — must arcs can not, mirroring
// the paper's May/Must semantics.
//
// Constraints are stored in dense per-owner blocks: every node owns the
// structural and duration constraints its visit emits plus the constraints
// of the explicit arcs it carries. Block storage is what makes the graph
// patchable — the incremental Solver replaces the blocks of edited nodes
// and leaves everything else untouched — while Constraints() still exposes
// the classic flat, document-ordered view.
package sched

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/units"
)

// EventID identifies one begin/end event. Events are numbered densely:
// node k's begin is 2k, its end 2k+1. Event 0 is always the root's begin
// and event 1 the root's end.
type EventID int32

// Event is the schedulable unit: one endpoint of one node. A zero Event
// (nil Node) is a tombstone left behind by an incremental deletion.
type Event struct {
	Node *core.Node
	End  core.EndPoint
}

// String renders e.g. "/story-3/intro.begin".
func (e Event) String() string {
	if e.Node == nil {
		return "(deleted)"
	}
	return e.Node.PathString() + "." + e.End.String()
}

// ConstraintKind records where a constraint came from, for conflict
// reporting and for the relaxation pass.
type ConstraintKind int

const (
	// KindStructural marks a default arc derived from the tree (seq
	// ordering, par containment).
	KindStructural ConstraintKind = iota
	// KindDuration marks a leaf's presentation-duration constraint.
	KindDuration
	// KindArc marks an explicit synchronization arc.
	KindArc
	// KindRuntime marks a constraint injected by a presentation
	// environment (device latency, user interaction), not by the document.
	KindRuntime
)

func (k ConstraintKind) String() string {
	switch k {
	case KindStructural:
		return "structural"
	case KindDuration:
		return "duration"
	case KindArc:
		return "arc"
	case KindRuntime:
		return "runtime"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ArcRef points at one explicit arc in the document: the node carrying it
// and its position in that node's syncarcs list.
type ArcRef struct {
	Node  *core.Node
	Index int
	Arc   core.SyncArc
}

func (r ArcRef) String() string {
	return fmt.Sprintf("%s syncarcs[%d] %s", r.Node.PathString(), r.Index, r.Arc)
}

// Constraint is one difference constraint t[V] − t[U] ≤ W.
type Constraint struct {
	U, V EventID
	W    time.Duration
	Kind ConstraintKind
	// Arc is set for KindArc constraints.
	Arc ArcRef
	// Note is a human-readable description of the constraint's origin.
	Note string
}

// Graph is the constraint system for one document.
type Graph struct {
	doc       *core.Document
	events    []Event
	nodeIndex map[*core.Node]int32
	// structBlocks[k] holds the structural and duration constraints node k
	// owns; arcBlocks[k] the constraints of the explicit arcs node k
	// carries; arcRefs[k] those arcs. Blocks are replaced, never mutated,
	// so clones can share them.
	structBlocks [][]Constraint
	arcBlocks    [][]Constraint
	arcRefs      [][]ArcRef
	// runtime holds constraints injected after construction.
	runtime []Constraint
	// flat caches the document-ordered flattened constraint list.
	flat   []Constraint
	flatOK bool
	// consCount and liveEvents track the live system size without
	// flattening (tombstones excluded).
	consCount  int
	liveEvents int

	opts       Options
	durationOf func(n *core.Node) (time.Duration, bool)
	// nameIdx memoizes child-name lookups per composite during arc
	// resolution (documents routinely carry thousands of arcs naming
	// siblings in wide composites). Cleared whenever the tree is patched.
	nameIdx map[*core.Node]map[string]*core.Node
}

// Options configures graph construction.
type Options struct {
	// DurationOf overrides the duration source for leaves. When nil, the
	// document's duration attribute (converted with the leaf's channel
	// rates) is used.
	DurationOf func(n *core.Node) (time.Duration, bool)
	// DefaultLeafDuration is used for leaves with no known duration.
	// Zero means such leaves are flexible (any non-negative length).
	DefaultLeafDuration time.Duration
	// RigidLeaves adds upper bounds end ≤ begin + D so leaf events cannot
	// be stretched (no freeze-frame). The paper's section 5.3.4 example
	// relies on stretching ("this may require a freeze-frame video
	// operation"), so the default is stretchable.
	RigidLeaves bool
	// SeqGaps permits dead time between consecutive children of a
	// sequential node. The default (false) pins each successor's begin to
	// its predecessor's end, so a delayed successor stretches the
	// predecessor — the freeze-frame semantics of section 5.3.4. With
	// SeqGaps, a delayed successor instead leaves the channel idle.
	SeqGaps bool
}

// Begin returns the begin-event id of node n.
func (g *Graph) Begin(n *core.Node) EventID { return EventID(g.nodeIndex[n] * 2) }

// End returns the end-event id of node n.
func (g *Graph) End(n *core.Node) EventID { return EventID(g.nodeIndex[n]*2 + 1) }

// Event returns the event for an id.
func (g *Graph) Event(id EventID) Event { return g.events[id] }

// NumEvents reports the size of the event table (2 per node, tombstones
// included).
func (g *Graph) NumEvents() int { return len(g.events) }

// Constraints returns the flat constraint list in document order, runtime
// constraints last. Shared; do not mutate.
func (g *Graph) Constraints() []Constraint { return g.flatten() }

// flatten materializes (and caches) the document-ordered constraint view:
// for every node in pre-order, its structural block then its arc block,
// followed by the runtime constraints. Tombstoned nodes are not in the tree
// and therefore drop out naturally.
func (g *Graph) flatten() []Constraint {
	if g.flatOK {
		return g.flat
	}
	// Nodes missing from the index were added to the tree behind the
	// graph's back (untracked edits); skip them rather than alias the
	// root's slot — a stale graph stays consistent with its build.
	total := len(g.runtime)
	g.doc.Root.Walk(func(n *core.Node) bool {
		if k, ok := g.nodeIndex[n]; ok {
			total += len(g.structBlocks[k]) + len(g.arcBlocks[k])
		}
		return true
	})
	flat := make([]Constraint, 0, total)
	g.doc.Root.Walk(func(n *core.Node) bool {
		if k, ok := g.nodeIndex[n]; ok {
			flat = append(flat, g.structBlocks[k]...)
			flat = append(flat, g.arcBlocks[k]...)
		}
		return true
	})
	flat = append(flat, g.runtime...)
	g.flat, g.flatOK = flat, true
	return flat
}

// invalidate drops the cached flat view after a mutation.
func (g *Graph) invalidate() { g.flat, g.flatOK = nil, false }

// Arcs returns every explicit arc found in the document, in document order.
func (g *Graph) Arcs() []ArcRef {
	var out []ArcRef
	g.doc.Root.Walk(func(n *core.Node) bool {
		if k, ok := g.nodeIndex[n]; ok {
			out = append(out, g.arcRefs[k]...)
		}
		return true
	})
	return out
}

// Doc returns the document the graph was built from.
func (g *Graph) Doc() *core.Document { return g.doc }

// eventOf resolves an arc endpoint to an event id.
func (g *Graph) eventOf(n *core.Node, ep core.EndPoint) EventID {
	if ep == core.End {
		return g.End(n)
	}
	return g.Begin(n)
}

// childByName is core.Node's by-name child lookup backed by the graph's
// memo: first child carrying the name wins, matching Resolve's semantics.
func (g *Graph) childByName(p *core.Node, name string) *core.Node {
	if g.nameIdx == nil {
		g.nameIdx = make(map[*core.Node]map[string]*core.Node)
	}
	m, ok := g.nameIdx[p]
	if !ok {
		m = make(map[string]*core.Node, p.NumChildren())
		for _, c := range p.Children() {
			if nm := c.Name(); nm != "" {
				if _, dup := m[nm]; !dup {
					m[nm] = c
				}
			}
		}
		g.nameIdx[p] = m
	}
	return m[name]
}

// resolvePath mirrors core.Node.Resolve's path grammar ("", ".", "..",
// "name", "#i", "/abs") using the memoized name index.
func (g *Graph) resolvePath(n *core.Node, path string) (*core.Node, error) {
	cur := n
	rest := path
	if strings.HasPrefix(path, "/") {
		cur = n.Root()
		rest = strings.TrimPrefix(path, "/")
	}
	if rest == "" {
		return cur, nil
	}
	for _, comp := range strings.Split(rest, "/") {
		switch comp {
		case "", ".":
			continue
		case "..":
			if cur.Parent() == nil {
				return nil, &core.PathError{From: n, Path: path, At: comp, Why: "root has no parent"}
			}
			cur = cur.Parent()
		default:
			var next *core.Node
			if strings.HasPrefix(comp, "#") {
				i, err := strconv.Atoi(comp[1:])
				if err == nil {
					next = cur.Child(i)
				}
			} else {
				next = g.childByName(cur, comp)
			}
			if next == nil {
				return nil, &core.PathError{From: n, Path: path, At: comp,
					Why: fmt.Sprintf("no such child of %s", cur.PathString())}
			}
			cur = next
		}
	}
	return cur, nil
}

// resolveArc resolves an arc's endpoints like core.Node.ResolveArc, through
// the memoized index.
func (g *Graph) resolveArc(n *core.Node, a core.SyncArc) (src, dst *core.Node, err error) {
	if src, err = g.resolvePath(n, a.Source); err != nil {
		return nil, nil, err
	}
	if dst, err = g.resolvePath(n, a.Dest); err != nil {
		return nil, nil, err
	}
	return src, dst, nil
}

// Build constructs the constraint graph for the document. The event table
// and constraint blocks are laid out densely up front: one walk enumerates
// events, a second emits every node's constraints into a shared arena.
func Build(d *core.Document, opts Options) (*Graph, error) {
	nodes := d.Root.Count()
	g := &Graph{
		doc:          d,
		events:       make([]Event, 0, 2*nodes),
		nodeIndex:    make(map[*core.Node]int32, nodes),
		structBlocks: make([][]Constraint, nodes),
		arcBlocks:    make([][]Constraint, nodes),
		arcRefs:      make([][]ArcRef, nodes),
		opts:         opts,
	}

	// Enumerate events.
	d.Root.Walk(func(n *core.Node) bool {
		g.nodeIndex[n] = int32(len(g.events) / 2)
		g.events = append(g.events,
			Event{Node: n, End: core.Begin},
			Event{Node: n, End: core.End})
		return true
	})

	g.durationOf = opts.DurationOf
	if g.durationOf == nil {
		g.durationOf = func(n *core.Node) (time.Duration, bool) {
			q, ok := d.DurationOf(n)
			if !ok {
				return 0, false
			}
			dur, err := d.ResolverFor(n).Duration(q)
			if err != nil {
				return 0, false
			}
			return dur, true
		}
	}

	// Emit constraints into one arena; blocks are full-capacity sub-slices
	// so later appends can never scribble over a neighbour.
	arena := make([]Constraint, 0, 4*nodes)
	var buildErr error
	d.Root.Walk(func(n *core.Node) bool {
		if buildErr != nil {
			return false
		}
		k := g.nodeIndex[n]
		start := len(arena)
		arena = g.emitStructural(arena, n)
		g.structBlocks[k] = arena[start:len(arena):len(arena)]

		start = len(arena)
		var refs []ArcRef
		var err error
		arena, refs, err = g.emitArcs(arena, n)
		if err != nil {
			buildErr = err
			return false
		}
		g.arcBlocks[k] = arena[start:len(arena):len(arena)]
		g.arcRefs[k] = refs
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	g.consCount = len(arena)
	g.liveEvents = len(g.events)
	return g, nil
}

// NumConstraints reports the number of live constraints.
func (g *Graph) NumConstraints() int { return g.consCount }

// NumLiveEvents reports the number of live (non-tombstoned) events.
func (g *Graph) NumLiveEvents() int { return g.liveEvents }

// lower appends t[v] ≥ t[u] + w, i.e. t[u] − t[v] ≤ −w (edge v→u).
func lower(buf []Constraint, u, v EventID, w time.Duration, kind ConstraintKind, arc ArcRef, note string) []Constraint {
	return append(buf, Constraint{U: v, V: u, W: -w, Kind: kind, Arc: arc, Note: note})
}

// upper appends t[v] ≤ t[u] + w (edge u→v).
func upper(buf []Constraint, u, v EventID, w time.Duration, kind ConstraintKind, arc ArcRef, note string) []Constraint {
	return append(buf, Constraint{U: u, V: v, W: w, Kind: kind, Arc: arc, Note: note})
}

// emitStructural encodes the default synchronization arcs of section 5.3.1:
//
//   - "Within a sequential node, a default synchronization arc exists from
//     the starting node of the arc to its sequentially first child. There
//     are also arcs from the end of leaf nodes to the start of the successor
//     leaf. Finally, an arc exists from the last child of a sequential node
//     to the end of its parent."
//   - "Parallel nodes have default arcs from the parallel parent node to
//     each of the children ... synchronization arcs also exist from the end
//     of each of the children to the end of the parent."
//
// The seq relation is "start the successor as soon as possible": a lower
// bound whose earliest solution is equality. The par end relation is "start
// the successor when the slowest parallel node finishes": end(parent) is
// bounded below by every child's end, and the earliest solution is the max.
func (g *Graph) emitStructural(buf []Constraint, n *core.Node) []Constraint {
	opts := g.opts
	nb, ne := g.Begin(n), g.End(n)

	// Every node runs forward in time.
	buf = lower(buf, nb, ne, 0, KindStructural, ArcRef{}, "end after begin of "+n.PathString())

	if n.Type.IsLeaf() {
		dur, known := g.durationOf(n)
		if !known {
			dur = opts.DefaultLeafDuration
		}
		if dur > 0 {
			buf = lower(buf, nb, ne, dur, KindDuration, ArcRef{},
				fmt.Sprintf("duration %v of %s", dur, n.PathString()))
			if opts.RigidLeaves {
				buf = upper(buf, nb, ne, dur, KindDuration, ArcRef{},
					fmt.Sprintf("rigid duration %v of %s", dur, n.PathString()))
			}
		}
		return buf
	}

	children := n.Children()
	switch n.Type {
	case core.Seq:
		prev := EventID(-1)
		for i, c := range children {
			cb, ce := g.Begin(c), g.End(c)
			if i == 0 {
				buf = lower(buf, nb, cb, 0, KindStructural, ArcRef{},
					"seq parent begin to first child "+c.PathString())
			} else {
				buf = lower(buf, prev, cb, 0, KindStructural, ArcRef{},
					"seq successor "+c.PathString())
				if !opts.SeqGaps {
					// Gap-free: the successor begins exactly when the
					// predecessor ends, so delays propagate backwards as
					// stretch (freeze-frame) rather than dead air.
					buf = upper(buf, prev, cb, 0, KindStructural, ArcRef{},
						"seq gap-free adjacency before "+c.PathString())
				}
			}
			prev = ce
		}
		if len(children) > 0 {
			buf = lower(buf, prev, ne, 0, KindStructural, ArcRef{},
				"seq last child to parent end "+n.PathString())
			if !opts.SeqGaps {
				buf = upper(buf, prev, ne, 0, KindStructural, ArcRef{},
					"seq parent ends with last child "+n.PathString())
			}
		}
	case core.Par:
		for _, c := range children {
			cb, ce := g.Begin(c), g.End(c)
			buf = lower(buf, nb, cb, 0, KindStructural, ArcRef{},
				"par parent begin to child "+c.PathString())
			buf = lower(buf, ce, ne, 0, KindStructural, ArcRef{},
				"par child end to parent end "+c.PathString())
		}
	}
	return buf
}

// emitArcs encodes the node's explicit synchronization arcs via the
// synchronization equation: with tref = t[srcEvent] + offset,
//
//	tref + δ ≤ t[dstEvent] ≤ tref + ε.
//
// The offset is converted with the source node's channel rates ("offsets may
// be expressed in terms of media-dependent units"); δ and ε with the
// destination's.
func (g *Graph) emitArcs(buf []Constraint, n *core.Node) ([]Constraint, []ArcRef, error) {
	arcs, err := n.Arcs()
	if err != nil {
		return buf, nil, err
	}
	var refs []ArcRef
	for i, a := range arcs {
		if err := a.Validate(); err != nil {
			return buf, nil, fmt.Errorf("sched: %s arc %d: %w", n.PathString(), i, err)
		}
		src, dst, err := g.resolveArc(n, a)
		if err != nil {
			return buf, nil, fmt.Errorf("sched: %s arc %d: %w", n.PathString(), i, err)
		}
		ref := ArcRef{Node: n, Index: i, Arc: a}
		refs = append(refs, ref)

		srcEv := g.eventOf(src, a.SrcEnd)
		dstEv := g.eventOf(dst, a.DestEnd)

		offset, err := g.doc.ResolverFor(src).Duration(a.Offset)
		if err != nil {
			return buf, nil, fmt.Errorf("sched: %s arc %d offset: %w", n.PathString(), i, err)
		}
		dstRes := g.doc.ResolverFor(dst)
		minD, err := dstRes.Duration(a.MinDelay)
		if err != nil {
			return buf, nil, fmt.Errorf("sched: %s arc %d min_delay: %w", n.PathString(), i, err)
		}
		note := ref.String()
		buf = lower(buf, srcEv, dstEv, offset+minD, KindArc, ref, note)
		if !units.IsInfinite(a.MaxDelay) {
			maxD, err := dstRes.Duration(a.MaxDelay)
			if err != nil {
				return buf, nil, fmt.Errorf("sched: %s arc %d max_delay: %w", n.PathString(), i, err)
			}
			buf = upper(buf, srcEv, dstEv, offset+maxD, KindArc, ref, note)
		}
	}
	return buf, refs, nil
}

// Clone returns a graph sharing the document, event table and constraint
// blocks (blocks are replaced, never mutated, so sharing is safe) but with
// an independent runtime-constraint list, so runtime constraints can be
// added without disturbing the original.
func (g *Graph) Clone() *Graph {
	return &Graph{
		doc:          g.doc,
		events:       g.events,
		nodeIndex:    g.nodeIndex,
		structBlocks: append([][]Constraint(nil), g.structBlocks...),
		arcBlocks:    append([][]Constraint(nil), g.arcBlocks...),
		arcRefs:      append([][]ArcRef(nil), g.arcRefs...),
		runtime:      append([]Constraint(nil), g.runtime...),
		opts:         g.opts,
		durationOf:   g.durationOf,
		consCount:    g.consCount,
		liveEvents:   g.liveEvents,
	}
}

// AddRuntimeLower adds the runtime constraint t[v] ≥ t[u] + w: presentation
// environments use this to inject device latencies and interaction delays
// (section 5.3.3 case 2 analysis).
func (g *Graph) AddRuntimeLower(u, v EventID, w time.Duration, note string) {
	g.runtime = lower(g.runtime, u, v, w, KindRuntime, ArcRef{}, note)
	g.consCount++
	g.invalidate()
}

// AddRuntimeUpper adds the runtime constraint t[v] ≤ t[u] + w.
func (g *Graph) AddRuntimeUpper(u, v EventID, w time.Duration, note string) {
	g.runtime = upper(g.runtime, u, v, w, KindRuntime, ArcRef{}, note)
	g.consCount++
	g.invalidate()
}

// WithoutArc returns a clone of the graph with every constraint of the
// given explicit arc removed. Playback environments use this to record and
// bypass Must arcs they cannot honour.
func (g *Graph) WithoutArc(r ArcRef) *Graph {
	c := g.Clone()
	k, ok := c.nodeIndex[r.Node]
	if !ok {
		return c
	}
	var kept []Constraint
	for _, con := range c.arcBlocks[k] {
		if con.Arc.Index == r.Index {
			continue
		}
		kept = append(kept, con)
	}
	c.consCount -= len(c.arcBlocks[k]) - len(kept)
	c.arcBlocks[k] = kept
	return c
}

// withoutArcs returns the flat constraint list minus every constraint of
// the listed arcs. Used by the relaxation pass.
func (g *Graph) withoutArcs(dropped map[arcKey]bool) []Constraint {
	flat := g.flatten()
	if len(dropped) == 0 {
		return flat
	}
	out := make([]Constraint, 0, len(flat))
	for _, c := range flat {
		if c.Kind == KindArc && dropped[keyOf(c.Arc)] {
			continue
		}
		out = append(out, c)
	}
	return out
}

// arcKey identifies an arc by carrier node and index.
type arcKey struct {
	node  *core.Node
	index int
}

func keyOf(r ArcRef) arcKey { return arcKey{node: r.Node, index: r.Index} }
