package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// ConflictError reports an unsatisfiable set of synchronization constraints:
// the paper's conflict case 1. Cycle lists the constraints forming a
// negative cycle in the difference-constraint graph; their combined windows
// cannot all hold.
type ConflictError struct {
	Cycle []Constraint
}

func (e *ConflictError) Error() string {
	var b strings.Builder
	b.WriteString("sched: unsatisfiable synchronization constraints:")
	for _, c := range e.Cycle {
		b.WriteString("\n  ")
		b.WriteString(c.Note)
	}
	return b.String()
}

// MustArcs returns the must-strictness explicit arcs on the conflict cycle.
func (e *ConflictError) MustArcs() []ArcRef {
	var out []ArcRef
	for _, c := range e.Cycle {
		if c.Kind == KindArc && c.Arc.Arc.Strict == core.Must {
			out = append(out, c.Arc)
		}
	}
	return out
}

// RelaxStrategy selects which May arc to drop when a conflict cycle offers a
// choice (DESIGN.md ablation 2).
type RelaxStrategy int

const (
	// RelaxFirstMay drops the first May arc encountered on the cycle.
	RelaxFirstMay RelaxStrategy = iota
	// RelaxWidestWindow drops the May arc with the widest delay window,
	// on the theory that wide windows were the author's least-firm wishes.
	RelaxWidestWindow
	// RelaxNarrowestWindow drops the tightest May arc: the constraint most
	// likely to be the binding one.
	RelaxNarrowestWindow
)

// SolveOptions configures the solver.
type SolveOptions struct {
	// Relax enables dropping May arcs to resolve conflicts.
	Relax bool
	// Strategy picks the victim among May arcs on a conflict cycle.
	Strategy RelaxStrategy
}

// Solve computes the earliest feasible schedule, optionally relaxing May
// arcs. It returns a ConflictError when the constraints cannot be satisfied
// by dropping May arcs alone.
func (g *Graph) Solve(opts SolveOptions) (*Schedule, error) {
	dropped := make(map[arcKey]bool)
	var droppedRefs []ArcRef
	for {
		sched, conflict := g.solveOnce(dropped)
		if conflict == nil {
			sched.Dropped = droppedRefs
			return sched, nil
		}
		if !opts.Relax {
			return nil, conflict
		}
		victim, ok := pickVictim(conflict.Cycle, dropped, opts.Strategy)
		if !ok {
			return nil, conflict
		}
		dropped[keyOf(victim)] = true
		droppedRefs = append(droppedRefs, victim)
	}
}

// pickVictim chooses a not-yet-dropped May arc from the cycle.
func pickVictim(cycle []Constraint, dropped map[arcKey]bool, strat RelaxStrategy) (ArcRef, bool) {
	var candidates []ArcRef
	seen := map[arcKey]bool{}
	for _, c := range cycle {
		if c.Kind != KindArc {
			continue
		}
		if c.Arc.Arc.Strict != core.May {
			continue
		}
		k := keyOf(c.Arc)
		if dropped[k] || seen[k] {
			continue
		}
		seen[k] = true
		candidates = append(candidates, c.Arc)
	}
	if len(candidates) == 0 {
		return ArcRef{}, false
	}
	switch strat {
	case RelaxWidestWindow:
		sort.SliceStable(candidates, func(i, j int) bool {
			return windowWidth(candidates[i]) > windowWidth(candidates[j])
		})
	case RelaxNarrowestWindow:
		sort.SliceStable(candidates, func(i, j int) bool {
			return windowWidth(candidates[i]) < windowWidth(candidates[j])
		})
	}
	return candidates[0], true
}

// windowWidth measures ε − δ in raw quantity values (best-effort; used only
// for ordering candidates).
func windowWidth(r ArcRef) int64 {
	return r.Arc.MaxDelay.Value - r.Arc.MinDelay.Value
}

// solveOnce runs feasibility detection and earliest-schedule extraction over
// the constraint set minus the dropped arcs.
func (g *Graph) solveOnce(dropped map[arcKey]bool) (*Schedule, *ConflictError) {
	cons := g.withoutArcs(dropped)
	n := len(g.events)

	// Feasibility: Bellman–Ford (SPFA) from a virtual source connected to
	// every vertex. A negative cycle means the difference constraints are
	// unsatisfiable.
	if cycle := findNegativeCycle(n, cons); cycle != nil {
		return nil, &ConflictError{Cycle: cycle}
	}

	// Earliest schedule with t[rootBegin] = 0: for difference constraints
	// t_v − t_u ≤ w (edge u→v weight w), the earliest solution is
	// t_v = −dist(v → root), i.e. single-source shortest paths from the
	// root on the reversed graph.
	rev := make([][]edge, n)
	for i, c := range cons {
		rev[c.V] = append(rev[c.V], edge{to: c.U, w: c.W, idx: i})
	}
	dist := spfa(n, rev, 0) // event 0 is the root's begin
	times := make([]time.Duration, n)
	for v := range times {
		if dist[v] == unreachable {
			// No path to the root: the event is unconstrained from below;
			// schedule it at the root (time zero).
			times[v] = 0
			continue
		}
		times[v] = -time.Duration(dist[v])
	}
	return &Schedule{graph: g, times: times}, nil
}

type edge struct {
	to  EventID
	w   time.Duration
	idx int // constraint index, for cycle extraction
}

const unreachable = int64(math.MaxInt64)

// spfa computes single-source shortest paths over adj from src. The caller
// guarantees no negative cycles (checked beforehand).
func spfa(n int, adj [][]edge, src EventID) []int64 {
	dist := make([]int64, n)
	inQueue := make([]bool, n)
	for i := range dist {
		dist[i] = unreachable
	}
	dist[src] = 0
	queue := make([]EventID, 0, n)
	queue = append(queue, src)
	inQueue[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		du := dist[u]
		for _, e := range adj[u] {
			if nd := du + int64(e.w); nd < dist[e.to] {
				dist[e.to] = nd
				if !inQueue[e.to] {
					queue = append(queue, e.to)
					inQueue[e.to] = true
				}
			}
		}
	}
	return dist
}

// findNegativeCycle runs Bellman–Ford with a virtual source and returns the
// constraints on a negative cycle, or nil when the system is feasible.
func findNegativeCycle(n int, cons []Constraint) []Constraint {
	// dist starts at 0 everywhere == virtual source edges of weight 0.
	dist := make([]int64, n)
	parent := make([]int, n) // constraint index that last relaxed the vertex
	for i := range parent {
		parent[i] = -1
	}
	var last EventID = -1
	for iter := 0; iter < n; iter++ {
		improved := false
		for ci, c := range cons {
			if dist[c.U] == unreachable {
				continue
			}
			if nd := dist[c.U] + int64(c.W); nd < dist[c.V] {
				dist[c.V] = nd
				parent[c.V] = ci
				improved = true
				last = c.V
			}
		}
		if !improved {
			return nil
		}
	}
	if last < 0 {
		return nil
	}
	// A relaxation happened on the n'th pass: a negative cycle exists.
	// Walk parents n times to be sure we are on the cycle, then collect.
	v := last
	for i := 0; i < n; i++ {
		v = EventID(cons[parent[v]].U)
	}
	var cycle []Constraint
	start := v
	for {
		ci := parent[v]
		cycle = append(cycle, cons[ci])
		v = EventID(cons[ci].U)
		if v == start {
			break
		}
	}
	// Reverse so the cycle reads in constraint direction.
	for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return cycle
}

// Verify checks a time assignment against every non-dropped constraint,
// returning the violated ones. Used by tests and by the playback simulator
// to audit traces.
func (g *Graph) Verify(times []time.Duration, dropped []ArcRef) []Constraint {
	droppedSet := make(map[arcKey]bool, len(dropped))
	for _, r := range dropped {
		droppedSet[keyOf(r)] = true
	}
	var violated []Constraint
	for _, c := range g.withoutArcs(droppedSet) {
		if times[c.V]-times[c.U] > c.W {
			violated = append(violated, c)
		}
	}
	return violated
}

// String renders the constraint count summary.
func (g *Graph) String() string {
	var structural, duration, arcs int
	for _, c := range g.constraints {
		switch c.Kind {
		case KindStructural:
			structural++
		case KindDuration:
			duration++
		case KindArc:
			arcs++
		}
	}
	return fmt.Sprintf("sched.Graph{%d events, %d structural, %d duration, %d arc constraints}",
		len(g.events), structural, duration, arcs)
}
