package transport

import (
	"fmt"
	"net"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/media"
)

// Client is one connection to an interchange server. Not safe for
// concurrent use; open one client per goroutine.
type Client struct {
	conn net.Conn
	// Stats accumulate wire traffic for the transport-cost experiments.
	BytesSent     int64
	BytesReceived int64
}

// Dial connects to an interchange server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close says goodbye and closes the connection.
func (c *Client) Close() error {
	_ = writeFrame(c.conn, opGoodbye)
	return c.conn.Close()
}

// roundTrip sends a request and decodes the response, tracking sizes.
func (c *Client) roundTrip(op byte, parts ...[]byte) ([][]byte, error) {
	sent := int64(7)
	for _, p := range parts {
		sent += 4 + int64(len(p))
	}
	if err := writeFrame(c.conn, op, parts...); err != nil {
		return nil, err
	}
	c.BytesSent += sent
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	recvd := int64(7)
	for _, p := range resp.parts {
		recvd += 4 + int64(len(p))
	}
	c.BytesReceived += recvd
	if resp.op == opErr {
		msg := "unknown"
		if len(resp.parts) > 0 {
			msg = string(resp.parts[0])
		}
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	if resp.op != opOK {
		return nil, fmt.Errorf("transport: unexpected response op %d", resp.op)
	}
	return resp.parts, nil
}

// GetDoc fetches the document registered under name.
func (c *Client) GetDoc(name string, opts GetDocOptions) (*core.Document, error) {
	if opts.Encoding == 0 {
		opts.Encoding = EncodingText
	}
	inline := byte(0)
	if opts.Inline {
		inline = 1
	}
	parts, err := c.roundTrip(opGetDoc, []byte(name), []byte{byte(opts.Encoding)}, []byte{inline})
	if err != nil {
		return nil, err
	}
	if len(parts) != 1 {
		return nil, fmt.Errorf("transport: getdoc returned %d parts", len(parts))
	}
	return decodeDoc(parts[0], opts.Encoding)
}

// PutDoc registers a document under name on the server. Inlined payloads
// are absorbed into the server's store.
func (c *Client) PutDoc(name string, d *core.Document, enc Encoding) error {
	if enc == 0 {
		enc = EncodingText
	}
	data, err := encodeDoc(d, enc)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(opPutDoc, []byte(name), []byte{byte(enc)}, data)
	return err
}

// GetBlock fetches a data block by name or content address.
func (c *Client) GetBlock(name string) (*media.Block, error) {
	parts, err := c.roundTrip(opGetBlk, []byte(name))
	if err != nil {
		return nil, err
	}
	if len(parts) != 4 {
		return nil, fmt.Errorf("transport: getblk returned %d parts", len(parts))
	}
	return blockFromParts(parts)
}

// PutBlock stores a block on the server, returning its content address.
func (c *Client) PutBlock(b *media.Block) (string, error) {
	descText, err := codec.EncodeNode(descriptorNode(b), codec.WriteOptions{Form: codec.Embedded})
	if err != nil {
		return "", err
	}
	parts, err := c.roundTrip(opPutBlk,
		[]byte(b.Name), []byte(b.Medium.String()), []byte(descText), b.Payload)
	if err != nil {
		return "", err
	}
	if len(parts) != 1 {
		return "", fmt.Errorf("transport: putblk returned %d parts", len(parts))
	}
	return string(parts[0]), nil
}

// ListDocs returns the names of documents the server offers.
func (c *Client) ListDocs() ([]string, error) {
	parts, err := c.roundTrip(opList)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = string(p)
	}
	return out, nil
}
