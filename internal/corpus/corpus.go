// Package corpus generates realistic CMIF document corpora for load
// testing: multilingual news webs (the paper's running example scaled
// out), journal/archive collections (many small, text-heavy issues), and
// deep seq/par nestings with dense synchronization arcs (the solver's
// worst case). Generators are seeded and deterministic — the same Spec
// always yields byte-identical documents and media — so soak runs are
// reproducible and two processes can agree on a corpus without shipping
// it.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/units"
)

// Shape selects a generator.
type Shape string

const (
	// NewsWeb is a web of parallel news stories: per-story video/audio
	// tracks plus one caption track per language, cross-linked with
	// Must/May arcs — wide documents, mixed media, moderate arc density.
	NewsWeb Shape = "newsweb"
	// Archive is a journal archive: a long sequence of small issues,
	// each a par of title/articles/figure — many shallow nodes, text
	// heavy, light on arcs. The shape of a document server's long tail.
	Archive Shape = "archive"
	// DeepNest alternates par/seq nesting to a configurable depth and
	// sprays May arcs between random leaves — small payloads, dense
	// constraints, the scheduler-bound shape.
	DeepNest Shape = "deepnest"
)

// Shapes lists every generator shape.
func Shapes() []Shape { return []Shape{NewsWeb, Archive, DeepNest} }

// Spec sizes one generated document. The zero value of everything but
// Shape is usable.
type Spec struct {
	Shape Shape
	// Seed drives every random choice; equal specs generate equal output.
	Seed uint64
	// Size scales the shape: stories (NewsWeb), issues (Archive), or
	// fanout per level (DeepNest). Default 4.
	Size int
	// Languages is the caption-track count for NewsWeb; default 3.
	Languages int
	// Depth is the nesting depth for DeepNest; default 5.
	Depth int
}

func (s *Spec) defaults() {
	if s.Size <= 0 {
		s.Size = 4
	}
	if s.Languages <= 0 {
		s.Languages = 3
	}
	if s.Depth <= 0 {
		s.Depth = 5
	}
}

// languages is the pool NewsWeb draws caption tracks from.
var languages = []string{"en", "nl", "fr", "de", "es", "it", "pt", "sv"}

// Generate builds one document and the media store holding its external
// blocks. The document validates (core.NewDocument + Refresh) before it
// is returned. DeepNest documents carry deliberately conflicting May
// arcs, so schedule them with relaxation enabled (the paper's conflict
// resolution); NewsWeb and Archive schedule without it.
func Generate(spec Spec) (*core.Document, *media.Store, error) {
	spec.defaults()
	switch spec.Shape {
	case NewsWeb:
		return newsWeb(spec)
	case Archive:
		return archive(spec)
	case DeepNest:
		return deepNest(spec)
	default:
		return nil, nil, fmt.Errorf("corpus: unknown shape %q", spec.Shape)
	}
}

// Named is one generated document under its corpus name.
type Named struct {
	Name  string
	Doc   *core.Document
	Store *media.Store
}

// GenerateSet builds a mixed corpus: one document per shape per round,
// sizes varied by the seed. It is what the soak driver loads into a
// fresh daemon.
func GenerateSet(seed uint64, rounds int) ([]Named, error) {
	if rounds <= 0 {
		rounds = 1
	}
	var out []Named
	for r := 0; r < rounds; r++ {
		for _, sh := range Shapes() {
			spec := Spec{
				Shape: sh,
				Seed:  seed + uint64(r)*1009,
				Size:  3 + (r % 3),
			}
			if sh == DeepNest {
				// Leaves grow as Size^Depth; keep the scheduler-bound
				// shape heavy but not the corpus bottleneck.
				spec.Size = 3
				spec.Depth = 4
			}
			d, st, err := Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("corpus: %s round %d: %w", sh, r, err)
			}
			out = append(out, Named{
				Name:  fmt.Sprintf("%s-%d", sh, r),
				Doc:   d,
				Store: st,
			})
		}
	}
	return out, nil
}

// rng builds the deterministic stream for one spec.
func rng(spec Spec) *rand.Rand {
	return rand.New(rand.NewSource(int64(spec.Seed ^ 0x9e3779b97f4a7c15)))
}

// --- newsweb -----------------------------------------------------------

// newsWeb is the paper's evening news scaled out: Size stories, each a
// par of a video sequence, a narration track and Languages caption
// sequences. Captions hard-start with their story's video; translated
// tracks are loosely synchronized to the primary language; stories chain
// with hard begin-after-end arcs.
func newsWeb(spec Spec) (*core.Document, *media.Store, error) {
	rnd := rng(spec)
	store := media.NewStore()
	root := core.NewPar().SetName("newsweb")
	root.Attrs.Set("title", attr.String("Generated News Web"))

	if spec.Languages > len(languages) {
		spec.Languages = len(languages)
	}
	langs := languages[:spec.Languages]

	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "video", Medium: core.MediumVideo, Rates: units.Rates{FrameRate: 25}})
	cd.Define(core.Channel{Name: "audio", Medium: core.MediumAudio, Rates: units.Rates{SampleRate: 8000}})
	for _, lang := range langs {
		ch := core.Channel{Name: "captions-" + lang, Medium: core.MediumText}
		ch.Attrs.Set("lang", attr.ID(lang))
		cd.Define(ch)
	}

	for i := 0; i < spec.Size; i++ {
		story := core.NewPar().SetName(fmt.Sprintf("story-%d", i))

		vseq := core.NewSeq().SetName("video").SetAttr("channel", attr.ID("video"))
		shots := 2 + rnd.Intn(3)
		for j := 0; j < shots; j++ {
			frames := 25 * (2 + rnd.Intn(6)) // 2..7 s at 25 fps
			file := fmt.Sprintf("nw%d-s%d-shot%d.vid", spec.Seed, i, j)
			store.Put(media.CaptureVideo(file, frames, 32, 24, 25, spec.Seed+uint64(i*100+j)))
			vseq.AddChild(core.NewExt().SetName(fmt.Sprintf("shot-%d", j)).
				SetAttr("file", attr.String(file)).
				SetAttr("duration", attr.Quantity(units.Q(int64(frames), units.Frames))))
		}

		aseq := core.NewSeq().SetName("audio").SetAttr("channel", attr.ID("audio"))
		voiceMS := int64(4000 + rnd.Intn(8000))
		voice := fmt.Sprintf("nw%d-s%d-voice.aud", spec.Seed, i)
		store.Put(media.CaptureAudio(voice, voiceMS, 8000, 220+int64(rnd.Intn(440)), spec.Seed+uint64(i)))
		aseq.AddChild(core.NewExt().SetName("voice").
			SetAttr("file", attr.String(voice)).
			SetAttr("duration", attr.Quantity(units.Q(voiceMS*8, units.Samples))))

		story.Add(vseq, aseq)

		caps := 2 + rnd.Intn(4)
		for _, lang := range langs {
			cseq := core.NewSeq().SetName("caption-"+lang).
				SetAttr("channel", attr.ID("captions-"+lang))
			for j := 0; j < caps; j++ {
				text := fmt.Sprintf("[%s] story %d caption %d", lang, i, j)
				cseq.AddChild(core.NewImm([]byte(text)).
					SetName(fmt.Sprintf("cap-%d", j)).
					SetAttr("duration", attr.Quantity(units.MS(int64(1500+rnd.Intn(2500))))))
			}
			story.AddChild(cseq)
			if lang == langs[0] {
				// The primary track hard-starts with the video.
				cseq.AddArc(core.SyncArc{
					DestEnd: core.Begin, Strict: core.Must,
					Source: "../video", SrcEnd: core.Begin,
					MaxDelay: units.MS(0),
				})
			} else {
				// Translations follow the primary loosely.
				cseq.AddArc(core.SyncArc{
					DestEnd: core.Begin, Strict: core.May,
					Source: "../caption-" + langs[0], SrcEnd: core.Begin,
					MaxDelay: units.MS(int64(100 + rnd.Intn(200))),
				})
			}
		}

		root.AddChild(story)
		if i > 0 {
			story.AddArc(core.SyncArc{
				DestEnd: core.Begin, Strict: core.Must,
				Source: fmt.Sprintf("../story-%d", i-1), SrcEnd: core.End,
				MaxDelay: units.MS(0),
			})
		}
	}

	d, err := core.NewDocument(root)
	if err != nil {
		return nil, nil, err
	}
	d.SetChannels(cd)
	if err := d.Refresh(); err != nil {
		return nil, nil, err
	}
	return d, store, nil
}

// --- archive -----------------------------------------------------------

// archive is a journal back-catalogue: a seq of Size issues, each a par
// of a title, an article sequence and one figure, the figure's display
// loosely tied to its article.
func archive(spec Spec) (*core.Document, *media.Store, error) {
	rnd := rng(spec)
	store := media.NewStore()
	root := core.NewSeq().SetName("archive")
	root.Attrs.Set("title", attr.String("Generated Journal Archive"))

	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "text", Medium: core.MediumText})
	cd.Define(core.Channel{Name: "figures", Medium: core.MediumImage})

	for i := 0; i < spec.Size; i++ {
		issue := core.NewPar().SetName(fmt.Sprintf("issue-%d", i))
		issue.AddChild(core.NewImm([]byte(fmt.Sprintf("Journal issue %d", i))).
			SetName("title").
			SetAttr("channel", attr.ID("text")).
			SetAttr("duration", attr.Quantity(units.MS(2000))))

		articles := core.NewSeq().SetName("articles").SetAttr("channel", attr.ID("text"))
		n := 2 + rnd.Intn(4)
		for j := 0; j < n; j++ {
			body := fmt.Sprintf("issue %d article %d: %x", i, j, rnd.Uint64())
			articles.AddChild(core.NewImm([]byte(body)).
				SetName(fmt.Sprintf("article-%d", j)).
				SetAttr("duration", attr.Quantity(units.MS(int64(3000+rnd.Intn(5000))))))
		}
		issue.AddChild(articles)

		figFile := fmt.Sprintf("ar%d-issue%d-fig.img", spec.Seed, i)
		store.Put(media.CaptureImage(figFile, 64, 48, spec.Seed+uint64(i)))
		fig := core.NewExt().SetName("figure").
			SetAttr("channel", attr.ID("figures")).
			SetAttr("file", attr.String(figFile)).
			SetAttr("duration", attr.Quantity(units.MS(int64(2000+rnd.Intn(4000)))))
		issue.AddChild(fig)
		// The figure comes up with a mid-issue article, not the cover.
		fig.AddArc(core.SyncArc{
			DestEnd: core.Begin, Strict: core.May,
			Source: fmt.Sprintf("../articles/article-%d", rnd.Intn(n)), SrcEnd: core.Begin,
			MaxDelay: units.MS(int64(200 + rnd.Intn(300))),
		})
		root.AddChild(issue)
	}

	d, err := core.NewDocument(root)
	if err != nil {
		return nil, nil, err
	}
	d.SetChannels(cd)
	if err := d.Refresh(); err != nil {
		return nil, nil, err
	}
	return d, store, nil
}

// --- deepnest ----------------------------------------------------------

// deepNest alternates par and seq composites down to spec.Depth with
// spec.Size children per level, then sprays one May arc per leaf at a
// random earlier leaf. The arcs are deliberately allowed to conflict:
// scheduling this shape exercises relaxation, so solve it with Relax.
func deepNest(spec Spec) (*core.Document, *media.Store, error) {
	rnd := rng(spec)
	root := core.NewPar().SetName("deepnest")
	root.Attrs.Set("title", attr.String("Generated Deep Nesting"))

	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "text", Medium: core.MediumText})

	// leafPaths collects absolute paths as targets for the arc spray.
	var leafPaths []string
	var build func(parent *core.Node, path string, depth int)
	build = func(parent *core.Node, path string, depth int) {
		for i := 0; i < spec.Size; i++ {
			if depth >= spec.Depth {
				name := fmt.Sprintf("leaf-%d", i)
				leaf := core.NewImm([]byte(fmt.Sprintf("payload %s/%s %x", path, name, rnd.Uint32()))).
					SetName(name).
					SetAttr("channel", attr.ID("text")).
					SetAttr("duration", attr.Quantity(units.MS(int64(500+rnd.Intn(1500)))))
				parent.AddChild(leaf)
				leafPaths = append(leafPaths, path+"/"+name)
				continue
			}
			var n *core.Node
			var name string
			if depth%2 == 0 {
				name = fmt.Sprintf("seq-%d", i)
				n = core.NewSeq().SetName(name)
			} else {
				name = fmt.Sprintf("par-%d", i)
				n = core.NewPar().SetName(name)
			}
			parent.AddChild(n)
			build(n, path+"/"+name, depth+1)
		}
	}
	build(root, "", 0)

	// Dense arc spray: every third leaf points a May arc at a random
	// earlier leaf — cross-component, cross-depth, and free to conflict
	// (relaxation drops the losers). Density is capped at a third because
	// each dropped arc costs the solver a relaxation iteration; a spray
	// on every leaf makes big documents quadratically expensive to
	// schedule without making the shape harder.
	d, err := core.NewDocument(root)
	if err != nil {
		return nil, nil, err
	}
	for i, path := range leafPaths {
		if i == 0 || i%3 != 0 {
			continue
		}
		src := leafPaths[rnd.Intn(i)]
		leaf, rerr := root.Resolve(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		srcEnd := core.End
		if rnd.Intn(2) == 0 {
			srcEnd = core.Begin
		}
		leaf.AddArc(core.SyncArc{
			DestEnd: core.Begin, Strict: core.May,
			Source: src, SrcEnd: srcEnd,
			MaxDelay: units.MS(int64(50 + rnd.Intn(500))),
		})
	}
	d.SetChannels(cd)
	if err := d.Refresh(); err != nil {
		return nil, nil, err
	}
	return d, media.NewStore(), nil
}
