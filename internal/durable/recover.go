package durable

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// File naming: 16 hex digits keep lexical and numeric order identical, so
// a directory listing is already replay order.
const (
	walPrefix  = "wal-"
	walSuffix  = ".wal"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func walName(seq uint64) string  { return fmt.Sprintf("%s%016x%s", walPrefix, seq, walSuffix) }
func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }

// parseSeq extracts the sequence number from a wal/snap file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(digits, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// dirListing is the classified contents of a data directory.
type dirListing struct {
	walSeqs  []uint64 // ascending
	snapSeqs []uint64 // ascending
	tmp      []string // abandoned temp files (crash mid-snapshot)
}

func listDir(dir string) (*dirListing, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l := &dirListing{}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			l.tmp = append(l.tmp, name)
			continue
		}
		if seq, ok := parseSeq(name, walPrefix, walSuffix); ok {
			l.walSeqs = append(l.walSeqs, seq)
		} else if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			l.snapSeqs = append(l.snapSeqs, seq)
		}
	}
	sort.Slice(l.walSeqs, func(i, j int) bool { return l.walSeqs[i] < l.walSeqs[j] })
	sort.Slice(l.snapSeqs, func(i, j int) bool { return l.snapSeqs[i] < l.snapSeqs[j] })
	return l, nil
}

// replayStream applies every record in r to st. When tornOK, an
// incomplete final record is tolerated and replay stops cleanly at the
// last good offset; otherwise it is corruption. The returned offset is the
// end of the last applied record — the truncation point for a torn tail.
// docs, when non-nil, collects the raw binary of registered documents so
// the log can dedupe and snapshot them without re-encoding.
func replayStream(r io.Reader, path string, st *State, docs map[string][]byte, tornOK bool) (int64, error) {
	sc := newRecordScanner(r, path)
	var fieldsBuf [][]byte
	for {
		start := sc.offset
		payload, err := sc.next()
		if err == io.EOF {
			return sc.offset, nil
		}
		if err == errTorn {
			if !tornOK {
				return start, &CorruptError{Path: path, Offset: start,
					Reason: "torn record outside the final segment tail"}
			}
			return start, nil
		}
		if err != nil {
			return start, err
		}
		op, fields, derr := decodeRecord(payload, fieldsBuf)
		if derr != nil {
			return start, &CorruptError{Path: path, Offset: start, Reason: derr.Error()}
		}
		fieldsBuf = fields
		if op == recPutDoc && len(fields) == 2 {
			// Document bytes outlive this record (the decoded tree and
			// the docs map both retain them), so detach them from the
			// scanner's reused scratch buffer before applying.
			fields[1] = append([]byte(nil), fields[1]...)
		}
		if aerr := st.apply(op, fields); aerr != nil {
			return start, &CorruptError{Path: path, Offset: start, Reason: aerr.Error()}
		}
		if docs != nil {
			switch op {
			case recPutDoc:
				docs[string(fields[0])] = fields[1]
			case recDelDoc:
				delete(docs, string(fields[0]))
			}
		}
	}
}

// replayFile replays one segment or snapshot file. repair truncates a
// tolerated torn tail in place so the file is clean for appending and for
// the next recovery.
func replayFile(path string, st *State, docs map[string][]byte, tornOK, repair bool) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	end, rerr := replayStream(br, path, st, docs, tornOK)
	cerr := f.Close()
	if rerr != nil {
		return end, rerr
	}
	if cerr != nil {
		return end, cerr
	}
	if repair {
		if info, err := os.Stat(path); err == nil && info.Size() > end {
			if err := os.Truncate(path, end); err != nil {
				return end, fmt.Errorf("durable: truncating torn tail of %s: %w", path, err)
			}
		}
	}
	return end, nil
}

// recoverDir rebuilds the state from dir: newest snapshot first, then the
// WAL segments it does not cover, in sequence order. It returns the live
// (uncompacted) WAL byte count and the highest sequence number in use.
// repair additionally truncates a torn tail off the final segment.
func recoverDir(dir string, repair bool) (st *State, docs map[string][]byte, walBytes int64, maxSeq uint64, err error) {
	// Replay is a tight rebuild loop whose garbage is all short-lived;
	// letting the collector run at its default cadence costs a third of
	// the recovery time. Back it off (bounded — the heap still caps at
	// a small multiple of the corpus) and restore on the way out.
	defer relaxGC()()

	listing, err := listDir(dir)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	st = newState()
	docs = make(map[string][]byte)

	var snapSeq uint64
	if n := len(listing.snapSeqs); n > 0 {
		snapSeq = listing.snapSeqs[n-1]
		maxSeq = snapSeq
		// Snapshots are written to a temp file and renamed into place,
		// so a snapshot that exists at all must read back perfectly:
		// no torn tail is tolerated.
		path := filepath.Join(dir, snapName(snapSeq))
		if _, err := replayFile(path, st, docs, false, false); err != nil {
			return nil, nil, 0, 0, fmt.Errorf("durable: snapshot %s: %w", snapName(snapSeq), err)
		}
	}

	live := listing.walSeqs[:0:0]
	for _, seq := range listing.walSeqs {
		if seq > snapSeq {
			live = append(live, seq)
		}
	}
	for i, seq := range live {
		last := i == len(live)-1
		path := filepath.Join(dir, walName(seq))
		n, err := replayFile(path, st, docs, last, repair && last)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		walBytes += n
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	// Snapshot chunk staging is replay-only scratch; drop it before the
	// state goes live so the unique-chunk copies don't shadow the corpus.
	st.releaseReplayChunks()
	return st, docs, walBytes, maxSeq, nil
}

// The GC back-off is a process-global knob, so overlapping recoveries
// must not each save-and-restore it (the restores would interleave and
// leave a wrong value behind). A refcount makes the first recovery set
// it and the last one restore it.
var (
	gcMu    sync.Mutex
	gcDepth int
	gcPrev  int
)

// relaxGC raises GOGC for the duration of a recovery; call the returned
// function to undo it. Reentrant across concurrent recoveries.
func relaxGC() func() {
	gcMu.Lock()
	gcDepth++
	if gcDepth == 1 {
		gcPrev = debug.SetGCPercent(300)
	}
	gcMu.Unlock()
	return func() {
		gcMu.Lock()
		gcDepth--
		if gcDepth == 0 {
			debug.SetGCPercent(gcPrev)
		}
		gcMu.Unlock()
	}
}

// Load performs a read-only recovery of dir: no repair, no compaction, no
// open log. It is what offline tools (and the bench harness) use to
// inspect a data directory, and what Open builds on.
//
// Load requires the directory to be quiescent, like Open: reading under
// a live writer can race a compaction (a listed segment vanishes) or
// catch the active segment mid-append and mistake the half-written
// record for a torn tail, silently dropping acknowledged mutations.
// Stop the server, or snapshot-copy the directory, before loading it.
func Load(dir string) (*State, error) {
	st, _, _, _, err := recoverDir(dir, false)
	return st, err
}
