package edit

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/newsdoc"
	"repro/internal/sched"
	"repro/internal/units"
)

func news(t *testing.T) *core.Document {
	t.Helper()
	d, _, err := newsdoc.Build(newsdoc.Config{Stories: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCheckArcsCleanCorpus(t *testing.T) {
	d := news(t)
	if broken := CheckArcs(d); len(broken) != 0 {
		t.Errorf("clean corpus has broken arcs: %v", broken)
	}
}

func TestDeleteNodeSeversArcs(t *testing.T) {
	d := news(t)
	// cap-4 gates the crime scene; deleting it severs that arc.
	res, err := DeleteNode(d, "story-0/caption/cap-4")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Broken) == 0 {
		t.Fatal("deleting an arc source reported no broken arcs")
	}
	found := false
	for _, b := range res.Broken {
		if b.Carrier.Name() == "crime-scene" {
			found = true
		}
		if b.String() == "" {
			t.Error("empty broken-arc description")
		}
	}
	if !found {
		t.Errorf("crime-scene arc not reported: %v", res.Broken)
	}
}

func TestDeleteNodeErrors(t *testing.T) {
	d := news(t)
	if _, err := DeleteNode(d, "ghost"); err == nil {
		t.Error("deleting missing node succeeded")
	}
	if _, err := DeleteNode(d, ""); err == nil {
		t.Error("deleting root succeeded")
	}
}

func TestInsertNode(t *testing.T) {
	d := news(t)
	leaf := core.NewImm([]byte("breaking")).SetName("breaking").
		SetAttr("style", attr.ID("caption-style")).
		SetAttr("duration", attr.Quantity(units.MS(1000)))
	res, err := InsertNode(d, "story-0/caption", 0, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Broken) != 0 {
		t.Errorf("insert broke arcs: %v", res.Broken)
	}
	if d.Root.FindByName("breaking") == nil {
		t.Fatal("node not inserted")
	}
	// Still schedulable.
	g, err := sched.Build(d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Solve(sched.SolveOptions{Relax: true}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertNodeErrors(t *testing.T) {
	d := news(t)
	if _, err := InsertNode(d, "story-0/caption/cap-1", 0, core.NewImm(nil)); err == nil {
		t.Error("insert under leaf succeeded")
	}
	if _, err := InsertNode(d, "ghost", 0, core.NewImm(nil)); err == nil {
		t.Error("insert under missing parent succeeded")
	}
	dup := core.NewImm(nil).SetName("cap-1")
	if _, err := InsertNode(d, "story-0/caption", 0, dup); err == nil {
		t.Error("duplicate sibling name accepted")
	}
}

func TestRenameRewritesArcs(t *testing.T) {
	d := news(t)
	// cap-4 is referenced by the crime-scene gate arc.
	res, err := RenameNode(d, "story-0/caption/cap-4", "value-caption")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Broken) != 0 {
		t.Fatalf("rename broke arcs: %v", res.Broken)
	}
	if res.Rewritten == 0 {
		t.Error("no arcs rewritten despite reference")
	}
	// The gate still points at the renamed node.
	crime := d.Root.FindByName("crime-scene")
	arcs, err := crime.Arcs()
	if err != nil || len(arcs) == 0 {
		t.Fatal("crime-scene lost its arc")
	}
	src, _, err := crime.ResolveArc(arcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "value-caption" {
		t.Errorf("arc resolves to %q", src.Name())
	}
	// Timing is unchanged by a pure rename.
	g, err := sched.Build(d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Solve(sched.SolveOptions{Relax: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(crime).Seconds() != 8 {
		t.Errorf("crime scene moved to %v after rename", s.StartOf(crime))
	}
}

func TestRenameErrors(t *testing.T) {
	d := news(t)
	if _, err := RenameNode(d, "ghost", "x"); err == nil {
		t.Error("renaming missing node succeeded")
	}
	if _, err := RenameNode(d, "story-0/caption/cap-1", ""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := RenameNode(d, "story-0/caption/cap-1", "cap-2"); err == nil {
		t.Error("duplicate sibling name accepted")
	}
}

func TestMoveNodeRewritesArcs(t *testing.T) {
	d := news(t)
	// Move the whole caption sequence under a new wrapper; the arcs from
	// video (crime-scene gate) and graphic (painting-two offset) must be
	// rewritten and still resolve.
	wrapper := core.NewPar().SetName("wrapper")
	if _, err := InsertNode(d, "story-0", 5, wrapper); err != nil {
		t.Fatal(err)
	}
	res, err := MoveNode(d, "story-0/caption", "story-0/wrapper", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Broken) != 0 {
		t.Fatalf("move broke arcs: %v", res.Broken)
	}
	if res.Rewritten == 0 {
		t.Error("no arcs rewritten by the move")
	}
	// The crime-scene gate resolves to the moved cap-4.
	crime := d.Root.FindByName("crime-scene")
	arcs, _ := crime.Arcs()
	src, _, err := crime.ResolveArc(arcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "cap-4" {
		t.Errorf("gate resolves to %q", src.Name())
	}
	// Still schedulable with the same gate time.
	g, err := sched.Build(d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Solve(sched.SolveOptions{Relax: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(crime).Seconds() != 8 {
		t.Errorf("crime scene at %v after move", s.StartOf(crime))
	}
}

func TestMoveNodeErrors(t *testing.T) {
	d := news(t)
	if _, err := MoveNode(d, "", "story-0", 0); err == nil {
		t.Error("moving root succeeded")
	}
	if _, err := MoveNode(d, "ghost", "story-0", 0); err == nil {
		t.Error("moving missing node succeeded")
	}
	if _, err := MoveNode(d, "story-0/caption", "ghost", 0); err == nil {
		t.Error("moving to missing parent succeeded")
	}
	if _, err := MoveNode(d, "story-0/caption", "story-0/caption/cap-1", 0); err == nil {
		t.Error("moving under leaf succeeded")
	}
	if _, err := MoveNode(d, "story-0", "story-0/caption", 0); err == nil {
		t.Error("moving node into own subtree succeeded")
	}
	// Sibling name clash at destination.
	clash := core.NewSeq().SetName("caption")
	if _, err := InsertNode(d, "", 1, core.NewPar().SetName("annex").AddChild(clash)); err != nil {
		t.Fatal(err)
	}
	if _, err := MoveNode(d, "story-0/caption", "annex", 0); err == nil {
		t.Error("duplicate name at destination accepted")
	}
}

func TestRelativePath(t *testing.T) {
	d := news(t)
	crime := d.Root.FindByName("crime-scene")
	cap4 := d.Root.FindByName("cap-4")
	p := relativePath(crime, cap4)
	got, err := crime.Resolve(p)
	if err != nil || got != cap4 {
		t.Errorf("relativePath %q resolves to %v, %v", p, got, err)
	}
	if relativePath(crime, crime) != "" {
		t.Error("self path not empty")
	}
	// From deep to root.
	p = relativePath(cap4, d.Root)
	if got, err := cap4.Resolve(p); err != nil || got != d.Root {
		t.Errorf("path to root %q: %v, %v", p, got, err)
	}
	// Detached node falls back to an absolute path.
	stray := core.NewSeq().SetName("stray")
	if p := relativePath(stray, cap4); p == "" {
		t.Error("no fallback for disjoint trees")
	}
}
