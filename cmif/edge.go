package cmif

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/edge"
	"repro/internal/transport"
)

// Edge is the facade over cmifedge, the read-through caching proxy tier:
// a daemon that serves the full interchange protocol downstream while
// sourcing everything from one upstream origin. Blocks are cached on
// disk forever (content addressing makes them immutable) behind an
// in-memory LRU; documents are leased — the first access subscribes the
// edge to the origin's change stream, and upstream edits invalidate the
// cached replica incrementally. Mutations forward upstream, so the
// origin stays the single writer.
//
// Edge implements Fetcher through a loopback connection to its own
// listener, so a Pipeline or a Chain can resolve against a running edge
// exactly as it would against an origin Client.
type Edge struct {
	inner *edge.Edge
	grace time.Duration

	mu   sync.Mutex
	loop *Client // lazily dialed loopback client backing the Fetcher surface
}

// edgeConfig collects the edge options.
type edgeConfig struct {
	cfg   edge.Config
	grace time.Duration
}

// EdgeOption configures NewEdge. Edge options are a distinct type from
// DialOption and ServeOption, so mixing option sets across constructors
// is a compile error rather than a silent misconfiguration.
type EdgeOption func(*edgeConfig)

// WithOrigin names the upstream server the edge reads through to
// (host:port). Required.
func WithOrigin(addr string) EdgeOption {
	return func(c *edgeConfig) { c.cfg.Origin = addr }
}

// WithCacheDir roots the edge's crash-safe disk block cache at dir
// (created if absent). Required: the disk tier is what lets a restarted
// edge serve its corpus without refetching the world.
func WithCacheDir(dir string) EdgeOption {
	return func(c *edgeConfig) { c.cfg.CacheDir = dir }
}

// WithCacheBytes bounds the disk cache's payload bytes; least recently
// used blocks are evicted past the budget. Zero (the default) means
// 256 MiB.
func WithCacheBytes(n int64) EdgeOption {
	return func(c *edgeConfig) { c.cfg.CacheBytes = n }
}

// WithEdgeMemBlocks bounds the in-memory block cache fronting the disk
// tier. Zero (the default) means 1024 blocks.
func WithEdgeMemBlocks(n int) EdgeOption {
	return func(c *edgeConfig) { c.cfg.MemBlocks = n }
}

// WithLeaseTTL bounds how long an idle, unwatched document stays leased
// before the edge releases its upstream subscription and drops the
// cached replica (the next access re-leases). Zero (the default) means
// 2 minutes.
func WithLeaseTTL(d time.Duration) EdgeOption {
	return func(c *edgeConfig) { c.cfg.LeaseTTL = d }
}

// WithUpstreamPool sets how many origin connections the edge spreads its
// misses, forwards and lease subscriptions across. Zero (the default)
// means 4.
func WithUpstreamPool(n int) EdgeOption {
	return func(c *edgeConfig) { c.cfg.UpstreamPool = n }
}

// WithUpstreamTimeout bounds each upstream round trip and lease
// handshake. Zero (the default) means 10 seconds.
func WithUpstreamTimeout(d time.Duration) EdgeOption {
	return func(c *edgeConfig) { c.cfg.UpstreamTimeout = d }
}

// WithEdgeIdleTimeout hangs up downstream connections idle longer than
// d; zero keeps them forever.
func WithEdgeIdleTimeout(d time.Duration) EdgeOption {
	return func(c *edgeConfig) { c.cfg.IdleTimeout = d }
}

// WithEdgeWriteTimeout bounds each downstream response write; zero means
// no bound.
func WithEdgeWriteTimeout(d time.Duration) EdgeOption {
	return func(c *edgeConfig) { c.cfg.WriteTimeout = d }
}

// WithEdgeMaxInFlight bounds in-flight requests per downstream v2
// connection; zero means the protocol default (32).
func WithEdgeMaxInFlight(n int) EdgeOption {
	return func(c *edgeConfig) { c.cfg.MaxInFlight = n }
}

// WithEdgeAdmission bounds edge-wide concurrency, exactly as
// WithAdmission does for an origin server.
func WithEdgeAdmission(a AdmissionConfig) EdgeOption {
	return func(c *edgeConfig) { c.cfg.Admission = a }
}

// WithEdgeSubscriberQueue bounds each downstream subscriber's event
// queue; zero means the server default (64).
func WithEdgeSubscriberQueue(n int) EdgeOption {
	return func(c *edgeConfig) { c.cfg.SubQueueCap = n }
}

// WithEdgeCompression turns negotiated per-frame compression for
// downstream protocol-v4 clients on or off (the default is on).
// Upstream compression is negotiated independently by the edge's own
// origin dials.
func WithEdgeCompression(on bool) EdgeOption {
	return func(c *edgeConfig) { c.cfg.Compression = on }
}

// WithEdgeMetrics shares a metrics registry: the edge contributes the
// standard server series plus cmif_edge_* cache and lease counters.
func WithEdgeMetrics(m *Metrics) EdgeOption {
	return func(c *edgeConfig) { c.cfg.Metrics = m }
}

// WithEdgeShutdownGrace bounds how long Serve waits for in-flight
// downstream requests after its context is cancelled. The default is
// 5 seconds.
func WithEdgeShutdownGrace(d time.Duration) EdgeOption {
	return func(c *edgeConfig) { c.grace = d }
}

// DiskCacheStats snapshots the disk tier's occupancy and traffic.
type DiskCacheStats = edge.DiskStats

// NewEdge builds an edge daemon: it dials the origin, opens (or
// recovers) the disk cache, and is then ready to Listen.
func NewEdge(opts ...EdgeOption) (*Edge, error) {
	cfg := edgeConfig{grace: 5 * time.Second}
	cfg.cfg.Compression = true
	for _, o := range opts {
		o(&cfg)
	}
	inner, err := edge.New(cfg.cfg)
	if err != nil {
		return nil, err
	}
	return &Edge{inner: inner, grace: cfg.grace}, nil
}

// Listen starts serving downstream on addr ("127.0.0.1:0" picks a free
// port) and returns the bound address.
func (e *Edge) Listen(addr string) (string, error) {
	return e.inner.Listen(addr)
}

// Addr reports the bound downstream address ("" before Listen).
func (e *Edge) Addr() string { return e.inner.Addr() }

// Serve blocks until ctx is cancelled, then drains gracefully within the
// shutdown grace period. Call after Listen.
func (e *Edge) Serve(ctx context.Context) error {
	<-ctx.Done()
	graceCtx, cancel := context.WithTimeout(context.Background(), e.grace)
	defer cancel()
	return e.Shutdown(graceCtx)
}

// Shutdown drains downstream connections, stops the lease pumps and
// closes the upstream pool.
func (e *Edge) Shutdown(ctx context.Context) error {
	e.closeLoopback()
	return e.inner.Shutdown(ctx)
}

// Close force-closes everything immediately.
func (e *Edge) Close() error {
	e.closeLoopback()
	return e.inner.Close()
}

func (e *Edge) closeLoopback() {
	e.mu.Lock()
	loop := e.loop
	e.loop = nil
	e.mu.Unlock()
	if loop != nil {
		_ = loop.Close()
	}
}

// Leases reports how many documents the edge currently holds under an
// upstream lease.
func (e *Edge) Leases() int { return e.inner.Leases() }

// DiskStats reports the disk cache tier's occupancy and traffic.
func (e *Edge) DiskStats() DiskCacheStats { return e.inner.DiskStats() }

// UpstreamRoundTrips counts wire round trips the edge has made to its
// origin — with downstream request counts, the origin-offload
// measurement.
func (e *Edge) UpstreamRoundTrips() int64 { return e.inner.UpstreamRoundTrips() }

// loopback returns the lazily dialed client over the edge's own
// listener that backs the Fetcher surface.
func (e *Edge) loopback(ctx context.Context) (*Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.loop != nil {
		return e.loop, nil
	}
	addr := e.inner.Addr()
	if addr == "" {
		return nil, fmt.Errorf("cmif: edge is not listening; call Listen before using it as a Fetcher")
	}
	c, err := Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	e.loop = c
	return c, nil
}

// Blocks implements Fetcher against the edge's cache tiers (read-through
// to the origin on a miss).
func (e *Edge) Blocks(ctx context.Context, names []string) ([]*Block, error) {
	c, err := e.loopback(ctx)
	if err != nil {
		return nil, err
	}
	return c.Blocks(ctx, names)
}

// Descriptors implements Fetcher against the edge's cache tiers.
func (e *Edge) Descriptors(ctx context.Context, names []string) (map[string]AttrList, error) {
	c, err := e.loopback(ctx)
	if err != nil {
		return nil, err
	}
	return c.Descriptors(ctx, names)
}

// OpenDoc implements Fetcher: the document is leased from the origin on
// first access and served from the live local replica afterwards.
func (e *Edge) OpenDoc(ctx context.Context, name string) (*Document, error) {
	c, err := e.loopback(ctx)
	if err != nil {
		return nil, err
	}
	return c.OpenDoc(ctx, name)
}

// openSub implements subSource over the loopback connection: downstream
// subscribers ride the edge's local fan-out hub, which the upstream
// lease keeps fresh.
func (e *Edge) openSub(ctx context.Context, name, subtree string) (*transport.DocSubscription, error) {
	c, err := e.loopback(ctx)
	if err != nil {
		return nil, err
	}
	return c.openSub(ctx, name, subtree)
}

// Subscribe implements Fetcher: a live replica fed by the edge's
// fan-out hub, which the upstream lease keeps current.
func (e *Edge) Subscribe(ctx context.Context, name string, opts ...SubscribeOption) (*Subscription, error) {
	return openSubscription(ctx, e, name, opts)
}
