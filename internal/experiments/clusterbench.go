package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/transport"
	"repro/internal/units"
)

// S8 — the cluster tier: replicated, consistent-hash-sharded serving
// under node loss.
//
// The question: does a cluster of cmifd-class nodes deliver the two
// promises that justify running more than one — no acknowledged write is
// ever lost when a node dies, and read capacity grows with the node
// count? Each scenario runs N nodes with a fixed per-node capacity model
// (admission slots × synthetic service time, so capacity is a property
// of the node, not of the host's core count), drives concurrent writers
// and readers against the whole membership, and kills one node
// mid-load. Multi-node scenarios must fail over — reads and writes keep
// succeeding against the survivors, and every acknowledged write is
// still served. The single-node scenario restarts the killed node on its
// data directory — the downtime is visible as a read gap, and recovery
// must restore every acknowledged write. Read throughput is measured
// over the pre-kill window, where every scenario offers the same load to
// a healthy cluster.

// ClusterBenchConfig sizes the S8 run. The zero value is usable: a
// 1/3/5-node ladder, 12 readers, 2 writers, replication 3, a 3-second
// load window per scenario, and a 2ms × 4-slot per-node capacity model.
type ClusterBenchConfig struct {
	// Nodes is the cluster-size ladder; every scenario kills one node
	// mid-load. Size 1 restarts it (durability); larger sizes leave it
	// dead (failover).
	Nodes []int `json:"nodes"`
	// Readers and Writers are the concurrent client populations, spread
	// round-robin over the membership. The populations are fixed across
	// scenarios, so throughput differences come from the serving tier.
	Readers int `json:"readers"`
	Writers int `json:"writers"`
	// Replication is how many nodes each document lands on.
	Replication int `json:"replication"`
	// Duration is the per-scenario load window; the kill lands a third
	// of the way in.
	Duration time.Duration `json:"duration_ns"`
	// ServiceDelay and MaxConcurrent form the per-node capacity model:
	// each admitted request holds one of MaxConcurrent slots for at
	// least ServiceDelay, so a node serves at most
	// MaxConcurrent/ServiceDelay requests per second regardless of how
	// fast the host is — the property that makes the node-count scaling
	// measurable on any machine.
	ServiceDelay  time.Duration `json:"service_delay_ns"`
	MaxConcurrent int           `json:"max_concurrent"`
}

func (c *ClusterBenchConfig) fillDefaults() {
	if len(c.Nodes) == 0 {
		c.Nodes = []int{1, 3, 5}
	}
	if c.Readers <= 0 {
		c.Readers = 12
	}
	if c.Writers <= 0 {
		c.Writers = 2
	}
	if c.Replication <= 0 {
		c.Replication = cluster.DefaultReplication
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.ServiceDelay <= 0 {
		c.ServiceDelay = 2 * time.Millisecond
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
}

// ClusterBenchRow is one scenario measurement.
type ClusterBenchRow struct {
	Nodes int `json:"nodes"`
	// Kill names what happened to the killed node: "failover" (left
	// dead, survivors take over) or "restart" (single node, recovered
	// from its data directory).
	Kill string `json:"kill"`
	// AckedWrites is how many writes the cluster acknowledged;
	// LostWrites is how many of those the post-run verification could
	// not read back from any surviving node. Any nonzero value is data
	// loss.
	AckedWrites int64 `json:"acked_writes"`
	LostWrites  int64 `json:"lost_writes"`
	// Reads counts successful reads over the whole window; PreKillReads
	// and PreKillSeconds isolate the healthy-cluster throughput window
	// the scaling headline is read from; PostKillReads proves the
	// cluster kept serving after the kill.
	Reads          int64   `json:"reads"`
	PreKillReads   int64   `json:"pre_kill_reads"`
	PreKillSeconds float64 `json:"pre_kill_seconds"`
	ReadsPerSec    float64 `json:"reads_per_sec"`
	PostKillReads  int64   `json:"post_kill_reads"`
	// MaxReadGapMS is the longest span with no successful read anywhere;
	// RecoverMS is the span from the kill to the first successful read
	// after it.
	MaxReadGapMS float64 `json:"max_read_gap_ms"`
	RecoverMS    float64 `json:"recover_ms"`
	Seconds      float64 `json:"seconds"`
}

// ClusterBenchReport is the S8 result set cmifbench writes to
// BENCH_cluster.json.
type ClusterBenchReport struct {
	Config ClusterBenchConfig `json:"config"`
	Env    BenchEnv           `json:"env"`
	Rows   []ClusterBenchRow  `json:"rows"`
	// ReadSpeedup3x1 is the 3-node pre-kill read throughput over the
	// single node's — the scaling headline.
	ReadSpeedup3x1 float64 `json:"read_speedup_3x1"`
}

// JSON renders the report for BENCH_cluster.json.
func (r *ClusterBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the experiment-table format.
func (r *ClusterBenchReport) Table() *Table {
	t := &Table{
		ID:     "S8",
		Title:  "cluster tier: node loss, acked-write survival and read scaling",
		Header: []string{"nodes", "kill", "acked", "lost", "reads", "reads/s pre-kill", "post-kill reads", "max gap ms", "recover ms"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Nodes),
			row.Kill,
			fmt.Sprintf("%d", row.AckedWrites),
			fmt.Sprintf("%d", row.LostWrites),
			fmt.Sprintf("%d", row.Reads),
			fmt.Sprintf("%.0f", row.ReadsPerSec),
			fmt.Sprintf("%d", row.PostKillReads),
			fmt.Sprintf("%.0f", row.MaxReadGapMS),
			fmt.Sprintf("%.0f", row.RecoverMS),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("3-node read throughput %.2fx the single node's", r.ReadSpeedup3x1),
		"expect: zero lost acked writes in every scenario; reads continue through the kill; capacity grows with nodes")
	return t
}

// benchClusterDoc builds the small document the writers put.
func benchClusterDoc(label string) (*core.Document, error) {
	root := core.NewPar().SetName("doc")
	root.Add(
		core.NewImm([]byte(label)).SetName("label").
			SetAttr("channel", attr.ID("labels")).
			SetAttr("duration", attr.Quantity(units.MS(100))),
	)
	d, err := core.NewDocument(root)
	if err != nil {
		return nil, err
	}
	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "labels", Medium: core.MediumText})
	d.SetChannels(cd)
	return d, nil
}

// addrBook is the membership the bench clients dial: a mutable address
// list, because the single-node scenario restarts its node on a new
// port mid-run.
type addrBook struct {
	mu    sync.Mutex
	addrs []string
}

func (b *addrBook) snapshot() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.addrs...)
}

func (b *addrBook) replace(addrs []string) {
	b.mu.Lock()
	b.addrs = append([]string(nil), addrs...)
	b.mu.Unlock()
}

// ackedSet collects acknowledged write names.
type ackedSet struct {
	mu    sync.Mutex
	names []string
}

func (a *ackedSet) add(name string) {
	a.mu.Lock()
	a.names = append(a.names, name)
	a.mu.Unlock()
}

func (a *ackedSet) pick(i int) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.names) == 0 {
		return ""
	}
	return a.names[i%len(a.names)]
}

func (a *ackedSet) snapshot() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.names...)
}

// readTracker records successful reads' timing: totals, the pre/post
// kill split, the widest no-read gap and the post-kill recovery span.
type readTracker struct {
	mu        sync.Mutex
	last      time.Time
	maxGap    time.Duration
	killedAt  time.Time
	recovered time.Duration
	reads     int64
	preKill   int64
	postKill  int64
}

func (rt *readTracker) start(now time.Time) {
	rt.mu.Lock()
	rt.last = now
	rt.mu.Unlock()
}

func (rt *readTracker) kill(now time.Time) {
	rt.mu.Lock()
	rt.killedAt = now
	rt.mu.Unlock()
}

func (rt *readTracker) success(now time.Time) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if gap := now.Sub(rt.last); gap > rt.maxGap {
		rt.maxGap = gap
	}
	rt.last = now
	rt.reads++
	if rt.killedAt.IsZero() {
		rt.preKill++
	} else {
		rt.postKill++
		if rt.recovered == 0 {
			rt.recovered = now.Sub(rt.killedAt)
		}
	}
}

// benchConn is one worker's connection: it dials the current membership
// round-robin and advances to the next address whenever the transport
// fails, which is how the bench clients fail over.
type benchConn struct {
	book *addrBook
	idx  int
	c    *transport.Client
}

func (w *benchConn) get(ctx context.Context) (*transport.Client, error) {
	if w.c != nil {
		return w.c, nil
	}
	addrs := w.book.snapshot()
	if len(addrs) == 0 {
		return nil, errors.New("clusterbench: empty membership")
	}
	addr := addrs[w.idx%len(addrs)]
	dialCtx, cancel := context.WithTimeout(ctx, time.Second)
	c, err := transport.DialContext(dialCtx, addr)
	cancel()
	if err != nil {
		w.idx++
		// A dead listener refuses instantly; don't spin on it.
		time.Sleep(2 * time.Millisecond)
		return nil, err
	}
	w.c = c
	return c, nil
}

func (w *benchConn) fail() {
	if w.c != nil {
		w.c.Close()
		w.c = nil
	}
	w.idx++
}

func (w *benchConn) close() {
	if w.c != nil {
		w.c.Close()
		w.c = nil
	}
}

// ClusterBench runs the S8 scenarios and returns the measurements. Node
// data directories are throwaway temp directories; every node runs
// SyncAlways, so an acknowledged write is on disk before the ack.
func ClusterBench(ctx context.Context, cfg ClusterBenchConfig) (*ClusterBenchReport, error) {
	cfg.fillDefaults()
	report := &ClusterBenchReport{Config: cfg, Env: CaptureBenchEnv()}
	for _, n := range cfg.Nodes {
		row, err := runClusterScenario(ctx, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("clusterbench %d nodes: %w", n, err)
		}
		report.Rows = append(report.Rows, row)
	}
	var r1, r3 float64
	for _, row := range report.Rows {
		switch row.Nodes {
		case 1:
			r1 = row.ReadsPerSec
		case 3:
			r3 = row.ReadsPerSec
		}
	}
	if r1 > 0 {
		report.ReadSpeedup3x1 = r3 / r1
	}
	return report, nil
}

func benchNodeConfig(cfg ClusterBenchConfig, addr, dir string, peers []string) cluster.Config {
	return cluster.Config{
		Addr:           addr,
		DataDir:        dir,
		Peers:          peers,
		Replication:    cfg.Replication,
		GossipInterval: 50 * time.Millisecond,
		Sync:           durable.SyncAlways,
		ServiceDelay:   cfg.ServiceDelay,
		Admission: transport.Admission{
			MaxConcurrent: cfg.MaxConcurrent,
			MaxQueue:      1024,
			MaxWait:       2 * time.Second,
		},
	}
}

func runClusterScenario(ctx context.Context, cfg ClusterBenchConfig, n int) (ClusterBenchRow, error) {
	row := ClusterBenchRow{Nodes: n, Kill: "failover"}
	if n == 1 {
		row.Kill = "restart"
	}

	nodes := make([]*cluster.Node, 0, n)
	dirs := make([]string, 0, n)
	defer func() {
		for _, node := range nodes {
			if node != nil {
				node.Kill()
			}
		}
		for _, dir := range dirs {
			os.RemoveAll(dir)
		}
	}()
	var addrs, peers []string
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "clusterbench-")
		if err != nil {
			return row, err
		}
		dirs = append(dirs, dir)
		node, err := cluster.Start(benchNodeConfig(cfg, "127.0.0.1:0", dir, peers))
		if err != nil {
			return row, err
		}
		nodes = append(nodes, node)
		addrs = append(addrs, node.Addr())
		peers = append(peers, node.Addr())
	}
	for _, node := range nodes {
		syncCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := node.WaitSynced(syncCtx)
		cancel()
		if err != nil {
			return row, fmt.Errorf("node %s never synced: %w", node.Addr(), err)
		}
	}

	book := &addrBook{}
	book.replace(addrs)
	acked := &ackedSet{}
	tracker := &readTracker{}

	workCtx, stopWork := context.WithCancel(ctx)
	defer stopWork()

	var writeSeq atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	tracker.start(start)

	// Writers: put documents through whichever node answers; an
	// acknowledged put is recorded for the post-run survival audit.
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn := &benchConn{book: book, idx: w}
			defer conn.close()
			for workCtx.Err() == nil {
				c, err := conn.get(workCtx)
				if err != nil {
					continue
				}
				seq := writeSeq.Add(1)
				name := fmt.Sprintf("doc-%05d", seq)
				doc, err := benchClusterDoc(name)
				if err != nil {
					return
				}
				opCtx, cancel := context.WithTimeout(workCtx, 5*time.Second)
				err = c.PutDoc(opCtx, name, doc, transport.EncodingBinary)
				cancel()
				if err == nil {
					acked.add(name)
					continue
				}
				if !errors.Is(err, transport.ErrRemote) {
					conn.fail()
				}
			}
		}(w)
	}

	// Readers: read acknowledged documents from round-robin nodes,
	// rotating to another node on any failure (a dead listener, a busy
	// rejection, or an authoritative miss on a post-kill substitute
	// owner that never received the pre-kill copy).
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			conn := &benchConn{book: book, idx: r}
			defer conn.close()
			for i := r; workCtx.Err() == nil; i++ {
				name := acked.pick(i)
				if name == "" {
					time.Sleep(time.Millisecond)
					continue
				}
				c, err := conn.get(workCtx)
				if err != nil {
					continue
				}
				opCtx, cancel := context.WithTimeout(workCtx, 5*time.Second)
				_, err = c.GetDoc(opCtx, name, transport.GetDocOptions{Encoding: transport.EncodingBinary})
				cancel()
				if err == nil {
					tracker.success(time.Now())
					continue
				}
				conn.fail()
			}
		}(r)
	}

	// The kill, a third of the way into the window. The last node dies
	// without draining; a single-node scenario restarts it on the same
	// data directory (new port — the address book is how clients learn).
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		select {
		case <-time.After(cfg.Duration / 3):
		case <-workCtx.Done():
			return
		}
		victim := nodes[n-1]
		tracker.kill(time.Now())
		tracker.mu.Lock()
		row.PreKillSeconds = tracker.killedAt.Sub(start).Seconds()
		row.PreKillReads = tracker.preKill
		tracker.mu.Unlock()
		victim.Kill()
		if n == 1 {
			restarted, err := cluster.Start(benchNodeConfig(cfg, "127.0.0.1:0", dirs[n-1], nil))
			if err == nil {
				nodes[n-1] = restarted
				book.replace([]string{restarted.Addr()})
			}
		}
	}()

	select {
	case <-time.After(cfg.Duration):
	case <-ctx.Done():
	}
	stopWork()
	wg.Wait()
	<-killDone
	elapsed := time.Since(start)

	// Survival audit: every acknowledged write must be readable from
	// some live node. Retries absorb the single-node restart window.
	names := acked.snapshot()
	row.AckedWrites = int64(len(names))
	verifyCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	conn := &benchConn{book: book}
	defer conn.close()
	for _, name := range names {
		found := false
		deadline := time.Now().Add(15 * time.Second)
		for !found && time.Now().Before(deadline) && verifyCtx.Err() == nil {
			c, err := conn.get(verifyCtx)
			if err != nil {
				continue
			}
			opCtx, opCancel := context.WithTimeout(verifyCtx, 5*time.Second)
			_, err = c.GetDoc(opCtx, name, transport.GetDocOptions{Encoding: transport.EncodingBinary})
			opCancel()
			if err == nil {
				found = true
				break
			}
			conn.fail()
		}
		if !found {
			row.LostWrites++
		}
	}

	tracker.mu.Lock()
	row.Reads = tracker.reads
	row.PostKillReads = tracker.postKill
	row.MaxReadGapMS = float64(tracker.maxGap) / float64(time.Millisecond)
	row.RecoverMS = float64(tracker.recovered) / float64(time.Millisecond)
	tracker.mu.Unlock()
	row.Seconds = elapsed.Seconds()
	if row.PreKillSeconds > 0 {
		row.ReadsPerSec = float64(row.PreKillReads) / row.PreKillSeconds
	}
	return row, nil
}

// LoadClusterReport reads a BENCH_cluster.json.
func LoadClusterReport(path string) (*ClusterBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ClusterBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CheckClusterReport validates a cluster-bench report against the S8
// gate. The correctness invariants hold anywhere: every scenario
// acknowledged writes and lost none of them, reads continued after the
// kill, and the no-read gap stayed within the failover SLO. The
// committed reference must additionally cover the 1/3/5-node ladder,
// record GOMAXPROCS ≥ 4 (the scaling headline is a concurrency claim),
// and show the 3-node tier serving reads at ≥ 2x the single node.
func CheckClusterReport(r *ClusterBenchReport, committed bool) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if len(r.Rows) == 0 {
		return []string{"cluster report has no rows"}
	}
	if r.Env.GoMaxProcs < 1 || r.Env.GoVersion == "" {
		fail("cluster report env not captured: %+v", r.Env)
	}
	if committed && r.Env.GoMaxProcs < 4 {
		fail("committed cluster report ran at GOMAXPROCS=%d; the read-scaling headline cannot be gated on a single-core record — re-record with GOMAXPROCS ≥ 4",
			r.Env.GoMaxProcs)
	}

	maxGapSLO := 5000.0
	if !committed {
		maxGapSLO = 15000.0 // fresh smoke runs on noisy shared runners get slack
	}
	seen := map[int]bool{}
	for i := range r.Rows {
		row := &r.Rows[i]
		seen[row.Nodes] = true
		if row.AckedWrites <= 0 {
			fail("%d nodes: no acknowledged writes — the load never exercised the write path", row.Nodes)
		}
		if row.LostWrites != 0 {
			fail("%d nodes: %d of %d acknowledged writes lost after the kill — replication or recovery dropped acked data",
				row.Nodes, row.LostWrites, row.AckedWrites)
		}
		if row.Reads <= 0 || row.PreKillReads <= 0 {
			fail("%d nodes: no measured reads", row.Nodes)
		}
		if row.PostKillReads <= 0 {
			fail("%d nodes: zero reads after the kill — the cluster went unavailable", row.Nodes)
		}
		if row.MaxReadGapMS > maxGapSLO {
			fail("%d nodes: %.0fms with no successful read anywhere exceeds the %.0fms SLO",
				row.Nodes, row.MaxReadGapMS, maxGapSLO)
		}
		if row.Nodes == 1 && row.Kill != "restart" {
			fail("single-node scenario must restart its node, got kill=%q", row.Kill)
		}
		if row.Nodes > 1 && row.Kill != "failover" {
			fail("%d-node scenario must leave the killed node dead, got kill=%q", row.Nodes, row.Kill)
		}
	}
	if committed {
		for _, want := range []int{1, 3, 5} {
			if !seen[want] {
				fail("committed cluster report is missing the %d-node scenario", want)
			}
		}
		if r.ReadSpeedup3x1 < 2.0 {
			fail("3-node read throughput %.2fx the single node's, below the 2.0x floor", r.ReadSpeedup3x1)
		}
	} else if seen[1] && seen[3] && r.ReadSpeedup3x1 < 1.2 {
		fail("fresh 3-node read throughput %.2fx the single node's; the tier is not scaling at all", r.ReadSpeedup3x1)
	}
	return v
}
