package transport

import (
	"container/list"
	"sync"

	"repro/internal/media"
)

// DefaultChunkCacheBytes is the byte budget a ChunkCache gets when built
// with a non-positive budget.
const DefaultChunkCacheBytes = 64 << 20

// ChunkCache is a client-side LRU cache of content-defined chunks keyed
// by their content address, bounded by a byte budget rather than an
// entry count (chunk sizes vary by an order of magnitude). It backs the
// protocol-v4 dedupe fetch path: a client holding most of a block's
// chunks fetches only the manifest plus the missing chunks, so a warm
// near-duplicate re-fetch moves kilobytes instead of megabytes.
//
// Chunks are content-addressed, so entries never go stale — a cached
// chunk is valid forever, whatever block it next appears in. Safe for
// concurrent use and meant to be shared between clients.
type ChunkCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recently used
	items  map[media.ChunkHash]*list.Element

	// verified memoizes (content address, manifest) pairs whose
	// reassembly has already been checked against the full payload hash,
	// so repeat warm assemblies skip the redundant whole-payload digest:
	// every byte is still verified chunk-by-chunk against the manifest,
	// and the manifest-to-address binding was proven on first assembly.
	verified map[[32]byte]struct{}

	hits, misses, evictions int64
	bytesServed             int64
}

// manifestMemoCap bounds the verified-manifest memo; past it the memo is
// dropped wholesale (re-verification costs one payload hash per block,
// so the reset only costs time, never correctness).
const manifestMemoCap = 4096

// chunkCacheEntry is one resident chunk.
type chunkCacheEntry struct {
	key  media.ChunkHash
	data []byte
}

// NewChunkCache returns a cache holding up to budget bytes of chunk
// data; a non-positive budget gets DefaultChunkCacheBytes.
func NewChunkCache(budget int64) *ChunkCache {
	if budget <= 0 {
		budget = DefaultChunkCacheBytes
	}
	return &ChunkCache{
		budget: budget,
		order:  list.New(),
		items:  make(map[media.ChunkHash]*list.Element),
	}
}

// Get returns the cached chunk under h, marking it recently used. The
// returned slice is the cache's own copy: read-only, valid until the
// entry is evicted — copy out of it before the next cache mutation if
// the bytes must outlive the lookup (the assembly path copies them into
// the payload it is building immediately).
func (c *ChunkCache) Get(h media.ChunkHash) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[h]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*chunkCacheEntry)
	c.hits++
	c.bytesServed += int64(len(e.data))
	return e.data, true
}

// Add stores a copy of data under h, evicting least recently used
// chunks until the budget holds. A chunk larger than the whole budget
// is not cached.
func (c *ChunkCache) Add(h media.ChunkHash, data []byte) {
	if int64(len(data)) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[h]; ok {
		// Content-addressed: same hash, same bytes. Just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	e := &chunkCacheEntry{key: h, data: append([]byte(nil), data...)}
	c.items[h] = c.order.PushFront(e)
	c.used += int64(len(e.data))
	for c.used > c.budget {
		last := c.order.Back()
		c.order.Remove(last)
		le := last.Value.(*chunkCacheEntry)
		delete(c.items, le.key)
		c.used -= int64(len(le.data))
		c.evictions++
	}
}

// ManifestVerified reports whether an assembly under this verification
// key has already been checked against the full payload hash.
func (c *ChunkCache) ManifestVerified(key [32]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.verified[key]
	return ok
}

// MarkManifestVerified records that an assembly under this verification
// key checked out against the full payload hash.
func (c *ChunkCache) MarkManifestVerified(key [32]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.verified == nil || len(c.verified) >= manifestMemoCap {
		c.verified = make(map[[32]byte]struct{})
	}
	c.verified[key] = struct{}{}
}

// Len reports the number of resident chunks.
func (c *ChunkCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// ChunkCacheStats is a point-in-time snapshot of cache effectiveness.
// BytesServed is the total chunk bytes answered from the cache — the
// payload bytes the dedupe path kept off the wire.
type ChunkCacheStats struct {
	Chunks      int
	Bytes       int64
	Budget      int64
	Hits        int64
	Misses      int64
	Evictions   int64
	BytesServed int64
}

// Stats snapshots the counters.
func (c *ChunkCache) Stats() ChunkCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ChunkCacheStats{
		Chunks:      c.order.Len(),
		Bytes:       c.used,
		Budget:      c.budget,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		BytesServed: c.bytesServed,
	}
}
