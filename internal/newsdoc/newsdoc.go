package newsdoc

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/units"
)

// Config sizes the generated broadcast.
type Config struct {
	// Stories is the number of news stories (≥ 1); default 3.
	Stories int
	// FrameW/FrameH size the synthetic video frames; default 64x48
	// (realistically tiny: payload size matters only relatively).
	FrameW, FrameH int
	// Seed drives the synthetic media generators.
	Seed uint64
}

func (c *Config) defaults() {
	if c.Stories <= 0 {
		c.Stories = 3
	}
	if c.FrameW <= 0 {
		c.FrameW = 64
	}
	if c.FrameH <= 0 {
		c.FrameH = 48
	}
}

// captionTexts are the Figure 10 caption blocks.
var captionTexts = [7]string{
	"intro text",
	"set-up location",
	"public out cry",
	"painting value: worth ten million...",
	"intro text for witnesses",
	"witness reports",
	"humorous close",
}

// labelTexts are the Figure 10 label blocks.
var labelTexts = [3]string{"story name", "museum name", "announcer name"}

// Build constructs the news document and its media store.
func Build(cfg Config) (*core.Document, *media.Store, error) {
	cfg.defaults()
	store := media.NewStore()
	root := core.NewPar().SetName("news")
	root.Attrs.Set("title", attr.String("The Evening News"))

	for i := 0; i < cfg.Stories; i++ {
		story, err := buildStory(i, cfg, store)
		if err != nil {
			return nil, nil, err
		}
		root.AddChild(story)
	}

	d, err := core.NewDocument(root)
	if err != nil {
		return nil, nil, err
	}
	d.SetChannels(Channels())
	d.SetStyles(Styles())
	// Stories run one after another: the broadcast is a par of stories
	// only so that each story's five channels stay siblings; sequence the
	// stories with hard arcs story(i).begin = story(i-1).end.
	for i := 1; i < cfg.Stories; i++ {
		root.Child(i).AddArc(core.SyncArc{
			DestEnd: core.Begin, Strict: core.Must,
			Source: fmt.Sprintf("../story-%d", i-1), SrcEnd: core.End,
			Dest: "", MaxDelay: units.MS(0),
		})
	}
	if err := d.Refresh(); err != nil {
		return nil, nil, err
	}
	return d, store, nil
}

// Channels defines the five Figure-4 channels with placement preferences.
func Channels() *core.ChannelDict {
	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "video", Medium: core.MediumVideo,
		Rates: units.Rates{FrameRate: 25}})
	cd.Define(core.Channel{Name: "audio", Medium: core.MediumAudio,
		Rates: units.Rates{SampleRate: 8000}})
	graphic := core.Channel{Name: "graphic", Medium: core.MediumImage}
	cd.Define(graphic)
	captions := core.Channel{Name: "captions", Medium: core.MediumText}
	captions.Attrs.Set("region", attr.ID("bottom"))
	captions.Attrs.Set("lang", attr.ID("en"))
	cd.Define(captions)
	labels := core.Channel{Name: "labels", Medium: core.MediumText}
	labels.Attrs.Set("region", attr.ID("top"))
	labels.Attrs.Set("prefheight", attr.Number(40))
	cd.Define(labels)
	return cd
}

// Styles defines the caption and label styles used by the text nodes.
func Styles() *attr.StyleDict {
	sd := attr.NewStyleDict()
	sd.Define("caption-style", attr.MustList(
		attr.P("channel", attr.ID("captions")),
		attr.P("tformatting", attr.ListOf(
			attr.Named("font", attr.ID("helvetica")),
			attr.Named("size", attr.Number(14)),
		)),
	))
	sd.Define("label-style", attr.MustList(
		attr.P("channel", attr.ID("labels")),
		attr.P("tformatting", attr.ListOf(
			attr.Named("font", attr.ID("helvetica-bold")),
			attr.Named("size", attr.Number(18)),
		)),
	))
	return sd
}

// buildStory assembles one story: five parallel channel sequences plus the
// Figure-10 arcs.
func buildStory(idx int, cfg Config, store *media.Store) (*core.Node, error) {
	seed := cfg.Seed + uint64(idx)*1000
	story := core.NewPar().SetName(fmt.Sprintf("story-%d", idx))
	story.Attrs.Set("title", attr.String(fmt.Sprintf("Story %d. Paintings", idx+1)))

	// --- video: talking head, crime scene, talking head ---
	vseq := core.NewSeq().SetName("video").SetAttr("channel", attr.ID("video"))
	for j, part := range []struct {
		name   string
		frames int
	}{
		{"talking-head-1", 100}, // 4s at 25fps
		{"crime-scene", 200},    // 8s
		{"talking-head-2", 75},  // 3s
	} {
		file := fmt.Sprintf("story%d-%s.vid", idx, part.name)
		store.Put(media.CaptureVideo(file, part.frames, cfg.FrameW, cfg.FrameH, 25, seed+uint64(j)))
		vseq.AddChild(core.NewExt().SetName(part.name).
			SetAttr("file", attr.String(file)).
			SetAttr("duration", attr.Quantity(units.Q(int64(part.frames), units.Frames))))
	}

	// --- audio: one narration block spanning the story ---
	aseq := core.NewSeq().SetName("audio").SetAttr("channel", attr.ID("audio"))
	voiceFile := fmt.Sprintf("story%d-voice.aud", idx)
	store.Put(media.CaptureAudio(voiceFile, 15000, 8000, 440, seed+10))
	aseq.AddChild(core.NewExt().SetName("voice").
		SetAttr("file", attr.String(voiceFile)).
		SetAttr("duration", attr.Quantity(units.Q(15000*8, units.Samples))))

	// --- graphic: painting one, painting two, insurance graph ---
	gseq := core.NewSeq().SetName("graphic").SetAttr("channel", attr.ID("graphic"))
	for j, g := range []string{"painting-one", "painting-two", "insurance-graph"} {
		file := fmt.Sprintf("story%d-%s.img", idx, g)
		store.Put(media.CaptureImage(file, 320, 240, seed+20+uint64(j)))
		gseq.AddChild(core.NewExt().SetName(g).
			SetAttr("file", attr.String(file)).
			SetAttr("duration", attr.Quantity(units.Sec(4))))
	}

	// --- captions: seven translated text blocks ---
	cseq := core.NewSeq().SetName("caption")
	for j, text := range captionTexts {
		name := fmt.Sprintf("cap-%d", j+1)
		node := core.NewImm([]byte(text)).SetName(name).
			SetAttr("style", attr.ID("caption-style")).
			SetAttr("duration", attr.Quantity(units.MS(2000)))
		cseq.AddChild(node)
	}

	// --- labels: three occasional titles ---
	lseq := core.NewSeq().SetName("label")
	for j, text := range labelTexts {
		name := fmt.Sprintf("label-%d", j+1)
		node := core.NewImm([]byte(text)).SetName(name).
			SetAttr("style", attr.ID("label-style")).
			SetAttr("duration", attr.Quantity(units.MS(3000)))
		lseq.AddChild(node)
	}

	story.Add(vseq, aseq, gseq, cseq, lseq)

	// --- Figure 10 arcs ---
	// Graphic channel start-synchronized with the audio start (±80ms may).
	gseq.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.May,
		Source: "../audio", SrcEnd: core.Begin, Dest: "",
		MaxDelay: units.MS(80),
	})
	// Explicit synchronization between the second and third illustration:
	// insurance graph must follow painting two within [0, 500ms].
	g3 := gseq.Child(2)
	g3.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../painting-two", SrcEnd: core.End, Dest: "",
		MaxDelay: units.MS(500),
	})
	// Captions start-synchronized with the video portion (hard must).
	cseq.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../video", SrcEnd: core.Begin, Dest: "",
		MaxDelay: units.MS(0),
	})
	// End of the second caption to the start of the second graphic, with a
	// 250ms offset: the offset-in-arc illustration.
	g2 := gseq.Child(1)
	g2.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.May,
		Source: "../../caption/cap-2", SrcEnd: core.End,
		Offset: units.MS(250), Dest: "",
		MaxDelay: units.MS(100),
	})
	// End of the fourth caption gates the crime-scene video block: "a new
	// video sequence may not start until the caption text is over. This
	// may require a freeze-frame video operation."
	crime := vseq.Child(1)
	crime.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../../caption/cap-4", SrcEnd: core.End, Dest: "",
		MaxDelay: units.InfiniteQuantity(),
	})
	// Labels linked to other portions of the display: museum label starts
	// with the crime scene.
	lseq.Child(1).AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.May,
		Source: "../../video/crime-scene", SrcEnd: core.Begin, Dest: "",
		MaxDelay: units.MS(150),
	})
	return story, nil
}
