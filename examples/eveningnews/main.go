// Evening News: the paper's running example (sections 4 and 5.3.4,
// Figures 4 and 10). Builds the full five-channel broadcast with its
// synthetic media, prints the structure and timeline views, and plays it
// under device jitter — watch for the freeze-frame on the talking head
// while the captions catch up.
//
//	go run ./examples/eveningnews [stories]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro/cmif"
)

func main() {
	stories := 1
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 1 {
			log.Fatalf("usage: eveningnews [stories>=1]")
		}
		stories = n
	}
	doc, store, err := cmif.BuildNews(cmif.NewsConfig{Stories: stories})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the evening news: %d stories, %d media blocks (%d payload bytes)\n\n",
		stories, store.Len(), store.TotalBytes())

	fmt.Println("document structure (Figure 5a view):")
	fmt.Print(cmif.Tree(doc))

	plan, err := cmif.Schedule(doc, cmif.WithRelaxation())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nchannel timeline (Figure 10 view):")
	fmt.Print(plan.Timeline(cmif.TimelineOptions{Resolution: time.Second}))

	fmt.Println("\nsynchronization arcs (Figure 9 form):")
	fmt.Print(cmif.ArcTable(doc))

	// Play with a slow graphic decoder: may-arcs absorb it, must-arcs
	// stall what they must.
	res, err := plan.Play(
		cmif.WithJitter(cmif.ChannelJitter("graphic", 60*time.Millisecond)),
		cmif.WithPlayRelaxation(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplayback with a 60ms-slow graphic channel:")
	fmt.Print(res)
	if !res.Success() {
		log.Fatal("must arcs violated")
	}
	fmt.Println("\nall must relationships honoured")
}
