package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
)

// ErrUnsupported reports that the negotiated protocol version does not
// carry the requested operation — a v3 client talking to a v1/v2 server
// cannot subscribe or submit edits. The check is local: no frame reaches
// the wire, so the connection stays healthy for everything the old
// server does speak. Matched with errors.Is.
var ErrUnsupported = errors.New("transport: not supported by negotiated protocol version")

// ErrConflict reports a rejected edit batch: an earlier writer's edit
// won the server's registry lock and this batch's pre-edit paths no
// longer resolve. Nothing was applied — refetch (or catch up through the
// subscription) and rebuild the batch. Matched with errors.Is.
var ErrConflict = errors.New("transport: edit conflict")

// SubEventKind discriminates subscription events.
type SubEventKind int

const (
	// SubSnapshot carries the full document at a generation: the first
	// event of every subscription, and again whenever the document is
	// wholesale replaced (the generation restarts at zero).
	SubSnapshot SubEventKind = iota + 1
	// SubDelta carries the change records advancing the document from
	// FromGen to Gen. Deltas are contiguous: each event's FromGen equals
	// the previous event's Gen — a mismatch means the watcher missed a
	// window and must resynchronize with a fresh snapshot.
	SubDelta
	// SubEnd terminates the subscription; Reason says why (unsubscribed,
	// shed as too slow, server draining).
	SubEnd
)

// SubEvent is one decoded subscription event.
type SubEvent struct {
	Kind SubEventKind
	// Gen is the document generation this event establishes: the
	// snapshot's generation, or a delta's toGen.
	Gen uint64
	// FromGen is the generation a delta departs from.
	FromGen uint64
	// Doc is the decoded document of a snapshot event.
	Doc *core.Document
	// Records are a delta's change records, in application order.
	Records []core.ChangeRecord
	// Reason says why a SubEnd event ended the subscription.
	Reason string
}

// decodeSubEvent decodes one opChange frame's parts. Shared with the
// fuzz harness: every frame a server can emit must decode, and no
// mutated frame may crash the decoder.
func decodeSubEvent(parts [][]byte) (SubEvent, error) {
	if len(parts) == 0 || len(parts[0]) != 1 {
		return SubEvent{}, fmt.Errorf("transport: change frame: missing discriminator")
	}
	switch parts[0][0] {
	case changeSnapshot:
		if len(parts) != 3 || len(parts[1]) != 8 {
			return SubEvent{}, fmt.Errorf("transport: change snapshot: want [S, gen(u64), doc]")
		}
		d, err := codec.DecodeBinary(parts[2])
		if err != nil {
			return SubEvent{}, fmt.Errorf("transport: change snapshot: %w", err)
		}
		return SubEvent{Kind: SubSnapshot, Gen: binary.BigEndian.Uint64(parts[1]), Doc: d}, nil
	case changeDelta:
		if len(parts) != 4 || len(parts[1]) != 8 || len(parts[2]) != 8 {
			return SubEvent{}, fmt.Errorf("transport: change delta: want [D, fromGen(u64), toGen(u64), records]")
		}
		recs, err := core.DecodeChangeRecords(parts[3])
		if err != nil {
			return SubEvent{}, fmt.Errorf("transport: change delta: %w", err)
		}
		return SubEvent{
			Kind:    SubDelta,
			FromGen: binary.BigEndian.Uint64(parts[1]),
			Gen:     binary.BigEndian.Uint64(parts[2]),
			Records: recs,
		}, nil
	case changeEnd:
		if len(parts) != 2 {
			return SubEvent{}, fmt.Errorf("transport: change end: want [E, reason]")
		}
		return SubEvent{Kind: SubEnd, Reason: string(parts[1])}, nil
	default:
		return SubEvent{}, fmt.Errorf("transport: change frame: unknown discriminator %q", parts[0][0])
	}
}

// subRecvBuf is the response-channel depth of a subscription call: deep
// enough that the reader goroutine rarely parks on a consumer that is
// between Recv calls, shallow enough that a stalled consumer exerts
// backpressure onto the connection (and is eventually shed server-side)
// and that a process holding tens of thousands of subscriptions is not
// dominated by idle channel buffers.
const subRecvBuf = 32

// DocSubscription is one live watch over a document: the snapshot the
// subscription opened with, then Recv for every change after it.
type DocSubscription struct {
	// Doc is the document snapshot the subscription started from, at
	// generation Gen. The subscriber owns it.
	Doc *core.Document
	// Gen is the snapshot's generation.
	Gen uint64

	c         *Client
	id        uint32
	call      *muxCall
	name      string
	closeOnce sync.Once
	closeErr  error
	ended     bool
}

// SubscribeDoc opens a live subscription on the document registered
// under name. It blocks until the server's opening snapshot arrives —
// on return Doc/Gen hold the watched document's current state, and every
// mutation after it arrives through Recv in server order. On a
// connection older than protocol v3 it fails locally with
// ErrUnsupported, leaving the connection untouched.
func (c *Client) SubscribeDoc(ctx context.Context, name string) (*DocSubscription, error) {
	return c.SubscribeDocSubtree(ctx, name, "")
}

// SubscribeDocSubtree is SubscribeDoc with a server-side delta filter:
// when subtree is a non-empty absolute path ("/news/story-3"), pushed
// deltas carry only the change records affecting that subtree or its
// ancestor chain. The opening snapshot is still the full document, and
// generations still advance with every server-side edit — a filtered
// delta may carry zero records — so the contiguity contract (each
// delta's FromGen equals the previous event's Gen) is unchanged. The
// replica is authoritative only within the watched subtree. An empty
// subtree (or "/") subscribes unfiltered.
func (c *Client) SubscribeDocSubtree(ctx context.Context, name, subtree string) (*DocSubscription, error) {
	if c.version < protoV3 {
		return nil, fmt.Errorf("%w: subscriptions need protocol v3, negotiated v%d", ErrUnsupported, c.version)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	parts := [][]byte{[]byte(name)}
	if subtree != "" && subtree != "/" {
		// Omitted when unfiltered, so plain subscriptions stay
		// byte-compatible with pre-filter servers.
		parts = append(parts, []byte(subtree))
	}
	// The per-call timeout bounds only the subscribe handshake; the
	// subscription itself lives until Close or a server-side end.
	hctx, cancel := c.withTimeout(ctx)
	defer cancel()
	m := c.mux
	id, call, err := m.beginBuf(hctx, opSubscribe, parts, subRecvBuf)
	if err != nil {
		return nil, err
	}
	c.roundTrips.Add(1)
	f, err := m.recv(hctx, call)
	if err != nil {
		// The request may already have registered server-side; tell the
		// server to drop it so a handshake cancellation does not leave a
		// zombie fan-out queue behind on a healthy pooled connection.
		m.abandon(id, call)
		go func() { _, _ = c.muxRoundTrip(context.Background(), opUnsubscribe, u32be(id)) }()
		return nil, err
	}
	if f.op != opChange {
		m.finish(id, call)
		_, rerr := muxResponse(f)
		if rerr == nil {
			rerr = fmt.Errorf("transport: unexpected op %d answering subscribe", f.op)
		}
		return nil, rerr
	}
	ev, err := decodeSubEvent(f.parts)
	if err != nil {
		m.finish(id, call)
		return nil, err
	}
	if ev.Kind != SubSnapshot {
		m.finish(id, call)
		return nil, fmt.Errorf("transport: subscription did not open with a snapshot")
	}
	// The long-lived call must not pin a pipeline slot.
	m.detach(call)
	return &DocSubscription{Doc: ev.Doc, Gen: ev.Gen, c: c, id: id, call: call, name: name}, nil
}

// Name reports the document the subscription watches.
func (s *DocSubscription) Name() string { return s.name }

// Recv waits for the next subscription event: a delta, a fresh snapshot
// (the document was wholesale replaced), or the terminal SubEnd. After a
// SubEnd — or any error — the subscription is dead; Close it and, to
// keep watching, subscribe again.
func (s *DocSubscription) Recv(ctx context.Context) (SubEvent, error) {
	if s.ended {
		return SubEvent{}, fmt.Errorf("transport: subscription ended")
	}
	f, err := s.c.mux.recv(ctx, s.call)
	if err != nil {
		return SubEvent{}, err
	}
	if f.op != opChange {
		s.ended = true
		_, rerr := muxResponse(f)
		if rerr == nil {
			rerr = fmt.Errorf("transport: unexpected op %d inside subscription", f.op)
		}
		return SubEvent{}, rerr
	}
	ev, err := decodeSubEvent(f.parts)
	if err != nil {
		s.ended = true
		return SubEvent{}, err
	}
	if ev.Kind == SubEnd {
		s.ended = true
	}
	return ev, nil
}

// Close ends the subscription: a best-effort unsubscribe round trip
// tells the server to drop the fan-out queue, then the call deregisters
// locally. Safe to call repeatedly and after a SubEnd.
func (s *DocSubscription) Close() error {
	s.closeOnce.Do(func() {
		ctx, cancel := s.c.withTimeout(context.Background())
		_, err := s.c.muxRoundTrip(ctx, opUnsubscribe, u32be(s.id))
		cancel()
		s.c.mux.finish(s.id, s.call)
		s.closeErr = err
	})
	return s.closeErr
}

// SubmitEdit applies an ordered change-record batch to the document
// registered under name, atomically: either every record re-executes
// server-side and the call returns the document's new generation, or the
// batch is rejected — with ErrConflict when a concurrent writer
// invalidated its pre-edit paths — and nothing changed. Requires
// protocol v3; on an older connection it fails locally with
// ErrUnsupported.
func (c *Client) SubmitEdit(ctx context.Context, name string, recs []core.ChangeRecord) (uint64, error) {
	if c.version < protoV3 {
		return 0, fmt.Errorf("%w: edit submission needs protocol v3, negotiated v%d", ErrUnsupported, c.version)
	}
	parts, err := c.roundTrip(ctx, opSubmitEdit, []byte(name), core.EncodeChangeRecords(recs))
	if err != nil {
		// The server rejects conflicting batches with a "conflict:"
		// prefixed remote error (see opSubmitEdit); surface them typed so
		// writers know to catch up and rebuild instead of giving up.
		if errors.Is(err, ErrRemote) && strings.Contains(err.Error(), "conflict:") {
			return 0, fmt.Errorf("%w: %w", ErrConflict, err)
		}
		return 0, err
	}
	if len(parts) != 1 || len(parts[0]) != 8 {
		return 0, fmt.Errorf("transport: submitedit: malformed response")
	}
	return binary.BigEndian.Uint64(parts[0]), nil
}

func u32be(v uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	return b
}
