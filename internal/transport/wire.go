package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire framing: every message is
//
//	u32 totalLen | u8 op | u16 partCount | (u32 len | bytes)*
//
// with all integers big-endian. totalLen covers everything after itself.
const (
	maxFrameSize = 64 << 20 // 64 MiB: generous for inlined documents
	maxParts     = 64
)

// Operation codes.
const (
	opGetDoc byte = 1
	opPutDoc byte = 2
	opGetBlk byte = 3
	opList   byte = 4
	opPutBlk byte = 5
	opOK     byte = 128
	// opErrNotFound distinguishes "no such document/block" from other
	// failures so clients can surface a typed not-found error.
	opErrNotFound byte = 254
	opErr         byte = 255
	opGoodbye     byte = 6
)

// frame is one decoded wire message.
type frame struct {
	op    byte
	parts [][]byte
}

// writeFrame encodes and sends a frame.
func writeFrame(w io.Writer, op byte, parts ...[]byte) error {
	if len(parts) > maxParts {
		return fmt.Errorf("transport: %d parts exceeds limit", len(parts))
	}
	total := 1 + 2
	for _, p := range parts {
		total += 4 + len(p)
	}
	if total > maxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	hdr := make([]byte, 4+1+2)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(total))
	hdr[4] = op
	binary.BigEndian.PutUint16(hdr[5:7], uint16(len(parts)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var lenBuf [4]byte
	for _, p := range parts {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(p)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// readFrame receives and decodes one frame.
func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < 3 || total > maxFrameSize {
		return frame{}, fmt.Errorf("transport: frame length %d out of range", total)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	f := frame{op: body[0]}
	count := int(binary.BigEndian.Uint16(body[1:3]))
	if count > maxParts {
		return frame{}, fmt.Errorf("transport: %d parts exceeds limit", count)
	}
	off := 3
	for i := 0; i < count; i++ {
		if off+4 > len(body) {
			return frame{}, fmt.Errorf("transport: truncated part header")
		}
		n := int(binary.BigEndian.Uint32(body[off : off+4]))
		off += 4
		if n < 0 || off+n > len(body) {
			return frame{}, fmt.Errorf("transport: part length %d exceeds frame", n)
		}
		f.parts = append(f.parts, body[off:off+n])
		off += n
	}
	if off != len(body) {
		return frame{}, fmt.Errorf("transport: %d trailing bytes in frame", len(body)-off)
	}
	return f, nil
}
