// Command cmiffilter runs the Constraint Filtering stage: it evaluates a
// CMIF document against a device profile and prints the per-leaf verdicts
// and the supportability decision ("a structured basis upon which a given
// system can determine whether it can support the requested document").
//
// Usage:
//
//	cmiffilter [-profile workstation|laptop|terminal] -news N
//
// The built-in news corpus is used because filtering needs data
// descriptors; for external documents, pair this tool with a block store
// served by cmifd.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/filter"
	"repro/internal/newsdoc"
)

func main() {
	profileName := flag.String("profile", "workstation", "device profile: workstation, laptop or terminal")
	news := flag.Int("news", 2, "evening news story count")
	flag.Parse()

	var profile filter.Profile
	switch *profileName {
	case "workstation":
		profile = filter.Workstation1991
	case "laptop":
		profile = filter.Laptop1991
	case "terminal":
		profile = filter.TextTerminal
	default:
		fatal(fmt.Errorf("unknown profile %q", *profileName))
	}

	doc, store, err := newsdoc.Build(newsdoc.Config{Stories: *news})
	if err != nil {
		fatal(err)
	}
	fm, err := filter.Evaluate(doc, store, profile)
	if err != nil {
		fatal(err)
	}
	fmt.Print(fm)
	if !fm.Supportable() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmiffilter:", err)
	os.Exit(1)
}
