package attr

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewListRejectsDuplicates(t *testing.T) {
	_, err := NewList(P("a", Number(1)), P("b", Number(2)), P("a", Number(3)))
	if err == nil {
		t.Fatal("duplicate attribute names accepted")
	}
}

func TestListGetSetDel(t *testing.T) {
	var l List
	l.Set("channel", ID("video"))
	l.Set("name", String("intro"))
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if v, ok := l.GetID("channel"); !ok || v != "video" {
		t.Errorf("GetID(channel) = %q, %v", v, ok)
	}
	// Replace keeps position and count.
	l.Set("channel", ID("audio"))
	if l.Len() != 2 {
		t.Fatalf("Len after replace = %d, want 2", l.Len())
	}
	if got := l.Names(); !reflect.DeepEqual(got, []string{"channel", "name"}) {
		t.Errorf("Names = %v", got)
	}
	if !l.Del("channel") {
		t.Error("Del(channel) = false")
	}
	if l.Del("channel") {
		t.Error("second Del(channel) = true")
	}
	if l.Has("channel") {
		t.Error("deleted attribute still present")
	}
}

func TestSetDefault(t *testing.T) {
	var l List
	l.Set("font", ID("times"))
	if l.SetDefault("font", ID("helvetica")) {
		t.Error("SetDefault overwrote existing attribute")
	}
	if v, _ := l.GetID("font"); v != "times" {
		t.Errorf("font = %q, want times", v)
	}
	if !l.SetDefault("size", Number(12)) {
		t.Error("SetDefault failed to add new attribute")
	}
}

func TestListCloneIndependence(t *testing.T) {
	orig := MustList(P("a", Number(1)), P("nested", VList(ID("x"))))
	c := orig.Clone()
	c.Set("a", Number(99))
	c.Set("new", Number(3))
	if v, _ := orig.GetInt("a"); v != 1 {
		t.Error("clone mutation leaked into original scalar")
	}
	if orig.Has("new") {
		t.Error("clone append leaked into original")
	}
}

func TestListEqualOrderSensitive(t *testing.T) {
	a := MustList(P("x", Number(1)), P("y", Number(2)))
	b := MustList(P("y", Number(2)), P("x", Number(1)))
	if a.Equal(b) {
		t.Error("order-insensitive equality")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal to original")
	}
}

func TestSortedNames(t *testing.T) {
	l := MustList(P("zebra", Number(1)), P("alpha", Number(2)), P("mid", Number(3)))
	want := []string{"alpha", "mid", "zebra"}
	if got := l.SortedNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("SortedNames = %v, want %v", got, want)
	}
}

func TestTypedGettersAbsent(t *testing.T) {
	var l List
	if _, ok := l.GetID("x"); ok {
		t.Error("GetID on empty list")
	}
	if _, ok := l.GetString("x"); ok {
		t.Error("GetString on empty list")
	}
	if _, ok := l.GetInt("x"); ok {
		t.Error("GetInt on empty list")
	}
	if _, ok := l.GetList("x"); ok {
		t.Error("GetList on empty list")
	}
	if _, ok := l.GetText("x"); ok {
		t.Error("GetText on empty list")
	}
}

func TestListStringRendering(t *testing.T) {
	l := MustList(P("name", String("story one")), P("channel", ID("video")))
	want := `(name "story one") (channel video)`
	if got := l.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: Set then Get returns what was set, and never introduces
// duplicates regardless of operation order.
func TestSetGetProperty(t *testing.T) {
	f := func(names []string, pick uint8) bool {
		if len(names) == 0 {
			return true
		}
		var l List
		for i, n := range names {
			l.Set(n, Number(int64(i)))
		}
		// Uniqueness invariant.
		seen := map[string]bool{}
		for _, n := range l.Names() {
			if seen[n] {
				return false
			}
			seen[n] = true
		}
		// Last write wins.
		target := names[int(pick)%len(names)]
		lastIdx := -1
		for i, n := range names {
			if n == target {
				lastIdx = i
			}
		}
		v, ok := l.GetInt(target)
		return ok && v == int64(lastIdx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
