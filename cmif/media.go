package cmif

import (
	"repro/internal/media"
	"repro/internal/transport"
)

// Store is an in-memory, content-addressed collection of data blocks,
// indexed by both name and content address. Safe for concurrent use.
type Store = media.Store

// Block is one atomic single-medium data block plus its descriptor.
type Block = media.Block

// NewStore returns an empty block store.
func NewStore() *Store { return media.NewStore() }

// LoadStoreDir loads an on-disk store (a directory whose manifest is
// itself a CMIF document).
func LoadStoreDir(dir string) (*Store, error) { return media.LoadDir(dir) }

// SaveStoreDir writes the store to dir with a CMIF manifest.
func SaveStoreDir(s *Store, dir string) error { return media.SaveDir(s, dir) }

// --- synthetic capture tools (the paper's Media Block Capture Tools) ---

// CaptureVideo synthesizes a video block of the given frame count,
// dimensions and rate.
func CaptureVideo(name string, frames, w, h int, fps int64, seed uint64) *Block {
	return media.CaptureVideo(name, frames, w, h, fps, seed)
}

// CaptureAudio synthesizes an audio block of ms milliseconds at the given
// sample rate and tone frequency.
func CaptureAudio(name string, ms, rate, freqHz int64, seed uint64) *Block {
	return media.CaptureAudio(name, ms, rate, freqHz, seed)
}

// CaptureImage synthesizes a raster image block.
func CaptureImage(name string, w, h int, seed uint64) *Block {
	return media.CaptureImage(name, w, h, seed)
}

// CaptureGraphic synthesizes a stroke-list graphic block.
func CaptureGraphic(name string, strokes int, seed uint64) *Block {
	return media.CaptureGraphic(name, strokes, seed)
}

// CaptureText wraps a text payload (with its language tag) as a block.
func CaptureText(name, text, lang string) *Block {
	return media.CaptureText(name, text, lang)
}

// --- payload inlining (interchange without a shared storage server) ---

// Inline returns a copy of the document whose external leaves carry their
// payloads immediately, resolved from store. With strict set, unresolvable
// leaves are errors; otherwise they stay external.
func Inline(d *Document, store *Store, strict bool) (*Document, error) {
	out, err := transport.Inline(d.doc, store, strict)
	if err != nil {
		return nil, err
	}
	return wrapDocument(out), nil
}

// Extract is Inline's inverse: it absorbs inlined payloads into store and
// re-externalizes the leaves, rebuilding a local block store from a
// self-contained transfer.
func Extract(d *Document, store *Store) (*Document, error) {
	out, err := transport.Extract(d.doc, store)
	if err != nil {
		return nil, err
	}
	return wrapDocument(out), nil
}
