package attr

import (
	"errors"
	"testing"
)

func dict(t *testing.T, defs map[string]List) *StyleDict {
	t.Helper()
	d := NewStyleDict()
	for name, l := range defs {
		d.Define(name, l)
	}
	return d
}

func TestExpandBasic(t *testing.T) {
	d := dict(t, map[string]List{
		"caption": MustList(
			P("channel", ID("captions")),
			P("tformatting", ListOf(Named("font", ID("helvetica")), Named("size", Number(12)))),
		),
	})
	node := MustList(P("style", ID("caption")), P("name", String("intro text")))
	got, err := d.Expand(node)
	if err != nil {
		t.Fatal(err)
	}
	if got.Has("style") {
		t.Error("expanded list retains style attribute")
	}
	if ch, _ := got.GetID("channel"); ch != "captions" {
		t.Errorf("channel = %q", ch)
	}
	if n, _ := got.GetString("name"); n != "intro text" {
		t.Errorf("name = %q", n)
	}
}

func TestExpandExplicitWins(t *testing.T) {
	d := dict(t, map[string]List{
		"label": MustList(P("channel", ID("labels")), P("size", Number(10))),
	})
	node := MustList(P("style", ID("label")), P("size", Number(24)))
	got, err := d.Expand(node)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.GetInt("size"); v != 24 {
		t.Errorf("explicit size overridden: got %d", v)
	}
	if ch, _ := got.GetID("channel"); ch != "labels" {
		t.Errorf("channel = %q", ch)
	}
}

func TestExpandTransitiveNearerWins(t *testing.T) {
	d := dict(t, map[string]List{
		"base":  MustList(P("size", Number(10)), P("indent", Number(2))),
		"title": MustList(P("style", ID("base")), P("size", Number(30))),
	})
	node := MustList(P("style", ID("title")))
	got, err := d.Expand(node)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.GetInt("size"); v != 30 {
		t.Errorf("nearer style size lost: got %d", v)
	}
	if v, _ := got.GetInt("indent"); v != 2 {
		t.Errorf("inherited base attr lost: got %d", v)
	}
}

func TestExpandMultipleStylesEarlierWins(t *testing.T) {
	d := dict(t, map[string]List{
		"a": MustList(P("x", Number(1)), P("only-a", Number(1))),
		"b": MustList(P("x", Number(2)), P("only-b", Number(2))),
	})
	node := MustList(P("style", VList(ID("a"), ID("b"))))
	got, err := d.Expand(node)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.GetInt("x"); v != 1 {
		t.Errorf("earlier style x lost: got %d", v)
	}
	if !got.Has("only-a") || !got.Has("only-b") {
		t.Error("union of styles incomplete")
	}
}

func TestExpandUndefined(t *testing.T) {
	d := NewStyleDict()
	node := MustList(P("style", ID("ghost")))
	_, err := d.Expand(node)
	var ue *UndefinedStyleError
	if !errors.As(err, &ue) || ue.Name != "ghost" {
		t.Fatalf("want UndefinedStyleError{ghost}, got %v", err)
	}
}

func TestExpandDirectCycle(t *testing.T) {
	d := dict(t, map[string]List{
		"selfish": MustList(P("style", ID("selfish")), P("x", Number(1))),
	})
	_, err := d.Expand(MustList(P("style", ID("selfish"))))
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("want CycleError, got %v", err)
	}
}

func TestExpandIndirectCycle(t *testing.T) {
	d := dict(t, map[string]List{
		"a": MustList(P("style", ID("b"))),
		"b": MustList(P("style", ID("c"))),
		"c": MustList(P("style", ID("a"))),
	})
	_, err := d.Expand(MustList(P("style", ID("a"))))
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("want CycleError, got %v", err)
	}
	if len(ce.Chain) < 3 {
		t.Errorf("cycle chain too short: %v", ce.Chain)
	}
}

func TestExpandDiamondIsNotACycle(t *testing.T) {
	// a -> b, a -> c, b -> d, c -> d: d reached twice but no cycle.
	d := dict(t, map[string]List{
		"a": MustList(P("style", VList(ID("b"), ID("c")))),
		"b": MustList(P("style", ID("d")), P("from-b", Number(1))),
		"c": MustList(P("style", ID("d")), P("from-c", Number(1))),
		"d": MustList(P("deep", Number(9))),
	})
	got, err := d.Expand(MustList(P("style", ID("a"))))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.GetInt("deep"); v != 9 {
		t.Error("diamond base attribute missing")
	}
}

func TestValidateFindsAllIssues(t *testing.T) {
	d := dict(t, map[string]List{
		"ok":    MustList(P("x", Number(1))),
		"loop":  MustList(P("style", ID("loop"))),
		"buddy": MustList(P("style", ID("missing"))),
	})
	errs := d.Validate()
	var cycles, undefs int
	for _, e := range errs {
		var ce *CycleError
		var ue *UndefinedStyleError
		if errors.As(e, &ce) {
			cycles++
		}
		if errors.As(e, &ue) {
			undefs++
		}
	}
	if cycles != 1 || undefs != 1 {
		t.Errorf("Validate found %d cycles, %d undefined; want 1, 1 (%v)", cycles, undefs, errs)
	}
}

func TestValidateCleanDict(t *testing.T) {
	d := dict(t, map[string]List{
		"base":  MustList(P("x", Number(1))),
		"title": MustList(P("style", ID("base"))),
	})
	if errs := d.Validate(); len(errs) != 0 {
		t.Errorf("clean dict reported errors: %v", errs)
	}
}

func TestParseStyleDictRoundTrip(t *testing.T) {
	d := NewStyleDict()
	d.Define("caption", MustList(P("channel", ID("captions")), P("size", Number(12))))
	d.Define("label", MustList(P("channel", ID("labels"))))
	v := d.DictValue()
	back, err := ParseStyleDict(v)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round-trip lost styles: %d", back.Len())
	}
	orig, _ := d.Lookup("caption")
	got, ok := back.Lookup("caption")
	if !ok || !got.Equal(orig) {
		t.Errorf("caption round-trip mismatch: %v vs %v", got, orig)
	}
}

func TestParseStyleDictErrors(t *testing.T) {
	cases := []Value{
		Number(1),                      // not a list
		ListOf(Item{Value: Number(1)}), // unnamed entry
		ListOf(Named("s", Number(1))),  // body not a list
		ListOf(Named("s", ListOf(Item{Value: ID("anon")}))),                      // unnamed attr in body
		ListOf(Named("s", VList()), Named("s", VList())),                         // duplicate style
		ListOf(Named("s", ListOf(Named("a", Number(1)), Named("a", Number(2))))), // dup attr
	}
	for i, v := range cases {
		if _, err := ParseStyleDict(v); err == nil {
			t.Errorf("case %d: want error for %v", i, v)
		}
	}
}

func TestStyleRefsForms(t *testing.T) {
	l := MustList(P("style", ID("one")))
	if refs := StyleRefs(l); len(refs) != 1 || refs[0] != "one" {
		t.Errorf("single ref: %v", refs)
	}
	l = MustList(P("style", VList(ID("a"), ID("b"))))
	if refs := StyleRefs(l); len(refs) != 2 {
		t.Errorf("list refs: %v", refs)
	}
	l = MustList(P("style", String("not-an-id")))
	if refs := StyleRefs(l); len(refs) != 0 {
		t.Errorf("string style yielded refs: %v", refs)
	}
	if refs := StyleRefs(List{}); refs != nil {
		t.Errorf("empty list yielded refs: %v", refs)
	}
}
