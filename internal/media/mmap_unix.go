//go:build unix && !cmif_nommap

package media

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build maps payload files into
// memory. The cmif_nommap build tag forces the plain-read fallback on
// platforms that do support mmap — used by tests to prove the fallback
// path serves identical bytes.
const mmapSupported = true

// mapFile returns the file's contents as a read-only memory mapping.
// The mapping lives for the life of the process (the store has no
// close; payloads loaded this way serve until exit), so no munmap
// handle is returned. Callers must never write through the slice —
// stored payloads are immutable by contract, and a write here would
// fault.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return []byte{}, nil // zero-length mmap is an error; nothing to map
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, err
	}
	return data, nil
}
