package daemon

import (
	"context"
	"errors"
	"flag"
	"testing"
	"time"

	"repro/internal/metrics"
)

type fakeServer struct {
	err    error
	closed bool
}

func (f *fakeServer) Serve(ctx context.Context) error {
	<-ctx.Done()
	return f.err
}

func (f *fakeServer) Close() error {
	f.closed = true
	return nil
}

func TestFlagsRegisterAndAdmission(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs, "127.0.0.1:7999", "test-wide")
	err := fs.Parse([]string{
		"-addr", "10.0.0.1:80", "-idle", "30s", "-grace", "1s",
		"-max-concurrent", "8", "-max-queue", "16", "-max-wait", "50ms",
		"-max-subscribers", "4", "-sub-queue", "9",
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Addr != "10.0.0.1:80" || f.Idle != 30*time.Second || f.Grace != time.Second {
		t.Fatalf("parsed flags = %+v", f)
	}
	adm, ok := f.Admission()
	if !ok {
		t.Fatal("admission bounds requested but not reported")
	}
	if adm.MaxConcurrent != 8 || adm.MaxQueue != 16 || adm.MaxWait != 50*time.Millisecond || adm.MaxSubscribers != 4 {
		t.Fatalf("admission = %+v", adm)
	}

	var off Flags
	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	off.Register(fs2, "x", "test-wide")
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := off.Admission(); ok {
		t.Fatal("admission reported enabled with no bounds set")
	}
}

func TestRunLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	srv := &fakeServer{}
	done := make(chan int, 1)
	go func() {
		done <- Run(ctx, srv, RunConfig{Name: "testd", Grace: time.Second, Metrics: reg})
	}()
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("clean drain exited %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestRunClassifiesOutcomes(t *testing.T) {
	reg := metrics.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// An expired grace period is an orderly (if noisy) shutdown.
	if code := Run(ctx, &fakeServer{err: context.DeadlineExceeded}, RunConfig{Name: "testd", Metrics: reg}); code != 0 {
		t.Fatalf("grace expiry exited %d, want 0", code)
	}
	// Any other serve error is a failure.
	if code := Run(ctx, &fakeServer{err: errors.New("bind lost")}, RunConfig{Name: "testd", Metrics: reg}); code != 1 {
		t.Fatalf("serve error exited %d, want 1", code)
	}
}
