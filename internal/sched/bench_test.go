package sched

import (
	"fmt"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/units"
)

// benchDoc builds a balanced par-of-seq document with leaves leaves and an
// explicit arc every arcEvery leaves.
func benchDoc(b *testing.B, leaves, arcEvery int) *core.Document {
	b.Helper()
	root := core.NewPar().SetName("root")
	const fan = 10
	seqCount := (leaves + fan - 1) / fan
	var allLeaves []*core.Node
	for s := 0; s < seqCount; s++ {
		seq := core.NewSeq().SetName(fmt.Sprintf("s%d", s)).
			SetAttr("channel", attr.ID("video"))
		for l := 0; l < fan && s*fan+l < leaves; l++ {
			leaf := core.NewExt().SetName(fmt.Sprintf("l%d", l)).
				SetAttr("file", attr.String("x.dat")).
				SetAttr("duration", attr.Quantity(units.MS(int64(100+l*10))))
			seq.AddChild(leaf)
			allLeaves = append(allLeaves, leaf)
		}
		root.AddChild(seq)
	}
	if arcEvery > 0 {
		for i := arcEvery; i < len(allLeaves); i += arcEvery {
			src := allLeaves[i-arcEvery]
			dst := allLeaves[i]
			dst.AddArc(core.SyncArc{
				DestEnd: core.Begin, Strict: core.May,
				Source: relPath(dst, src), SrcEnd: core.Begin, Dest: "",
				MaxDelay: units.InfiniteQuantity(),
			})
		}
	}
	d, err := core.NewDocument(root)
	if err != nil {
		b.Fatal(err)
	}
	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "video", Medium: core.MediumVideo,
		Rates: units.Rates{FrameRate: 25}})
	d.SetChannels(cd)
	return d
}

// relPath builds "../..-style" path from one leaf to another (both are
// seq/leaf depth 2 under the root).
func relPath(from, to *core.Node) string {
	return "../../" + to.Parent().Name() + "/" + to.Name()
}

// BenchmarkBuild measures constraint-graph construction.
func BenchmarkBuild(b *testing.B) {
	for _, leaves := range []int{100, 1000, 5000} {
		d := benchDoc(b, leaves, 10)
		b.Run(fmt.Sprintf("leaves-%d", leaves), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(d, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolve measures the earliest-schedule computation, which includes
// the negative-cycle feasibility pass.
func BenchmarkSolve(b *testing.B) {
	for _, leaves := range []int{100, 1000, 5000} {
		d := benchDoc(b, leaves, 10)
		g, err := Build(d, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("leaves-%d", leaves), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.Solve(SolveOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveArcDensity varies explicit-arc density at fixed size.
func BenchmarkSolveArcDensity(b *testing.B) {
	for _, every := range []int{0, 10, 2} {
		d := benchDoc(b, 1000, every)
		g, err := Build(d, Options{})
		if err != nil {
			b.Fatal(err)
		}
		name := "none"
		if every > 0 {
			name = fmt.Sprintf("every-%d", every)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.Solve(SolveOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerify measures constraint auditing of a finished schedule.
func BenchmarkVerify(b *testing.B) {
	d := benchDoc(b, 1000, 10)
	g, err := Build(d, Options{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := g.Solve(SolveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := g.Verify(s.Times(), nil); len(v) != 0 {
			b.Fatal("schedule does not verify")
		}
	}
}

// BenchmarkConflictDetection measures the negative-cycle path: an
// infeasible document that must be diagnosed.
func BenchmarkConflictDetection(b *testing.B) {
	d := benchDoc(b, 1000, 0)
	// Contradiction: l1 of s0 both 200ms after and exactly at l0's begin.
	l1, err := d.Root.Resolve("s0/l1")
	if err != nil {
		b.Fatal(err)
	}
	l1.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.Must,
		Source: "../l0", SrcEnd: core.Begin, Offset: units.MS(200), Dest: "",
		MaxDelay: units.MS(0)})
	l1.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.Must,
		Source: "../l0", SrcEnd: core.Begin, Dest: "", MaxDelay: units.MS(0)})
	g, err := Build(d, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Solve(SolveOptions{}); err == nil {
			b.Fatal("conflict not detected")
		}
	}
}
