package sched

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/units"
)

func TestSeqGapsOption(t *testing.T) {
	// seq(a, b) with b pinned 300ms after a's begin; a lasts 100ms.
	build := func(gaps bool) (*core.Document, *Graph) {
		root := core.NewSeq().SetName("r")
		a, b2 := leaf("a", "video", 100), leaf("b", "video", 100)
		b2.AddArc(core.SyncArc{
			DestEnd: core.Begin, Strict: core.Must,
			Source: "../a", SrcEnd: core.Begin,
			Offset: units.MS(300), Dest: "", MaxDelay: units.MS(0),
		})
		root.Add(a, b2)
		d := doc(t, root)
		g, err := Build(d, Options{SeqGaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		return d, g
	}

	// Gap-free (default): a stretches to fill [100ms, 300ms].
	d1, g1 := build(false)
	s1, err := g1.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a1 := d1.Root.FindByName("a")
	if s1.EndOf(a1) != 300*time.Millisecond {
		t.Errorf("gap-free: a ends %v, want 300ms (stretched)", s1.EndOf(a1))
	}
	if s1.StretchOf(a1, nil) != 200*time.Millisecond {
		t.Errorf("gap-free stretch = %v", s1.StretchOf(a1, nil))
	}

	// With gaps: a keeps its 100ms; dead air until 300ms.
	d2, g2 := build(true)
	s2, err := g2.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a2 := d2.Root.FindByName("a")
	if s2.EndOf(a2) != 100*time.Millisecond {
		t.Errorf("gappy: a ends %v, want 100ms", s2.EndOf(a2))
	}
	b2 := d2.Root.FindByName("b")
	if s2.StartOf(b2) != 300*time.Millisecond {
		t.Errorf("gappy: b starts %v", s2.StartOf(b2))
	}
}

func TestRelaxStrategyChoosesVictim(t *testing.T) {
	// Two may arcs with different windows contradict a must arc; the
	// strategy decides which may arc dies first. Both contradict, so both
	// eventually drop; the test checks the documented orderings are
	// exercised without error and converge.
	for _, strat := range []RelaxStrategy{RelaxFirstMay, RelaxWidestWindow, RelaxNarrowestWindow} {
		root := core.NewPar().SetName("r")
		a, b := leaf("a", "video", 100), leaf("b", "sound", 100)
		b.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.Must,
			Source: "../a", SrcEnd: core.Begin, Offset: units.MS(500), Dest: "",
			MaxDelay: units.MS(0)})
		b.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.May,
			Source: "../a", SrcEnd: core.Begin, Dest: "", MaxDelay: units.MS(10)})
		b.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.May,
			Source: "../a", SrcEnd: core.Begin, Dest: "", MaxDelay: units.MS(200)})
		root.Add(a, b)
		g, err := Build(doc(t, root), Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := g.Solve(SolveOptions{Relax: true, Strategy: strat})
		if err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
		if len(s.Dropped) == 0 {
			t.Errorf("strategy %v dropped nothing", strat)
		}
		// The must arc must hold regardless of strategy.
		bn := g.Doc().Root.FindByName("b")
		an := g.Doc().Root.FindByName("a")
		if s.StartOf(bn)-s.StartOf(an) != 500*time.Millisecond {
			t.Errorf("strategy %v: must arc violated", strat)
		}
	}
}

func TestConflictErrorListsConstraintNotes(t *testing.T) {
	root := core.NewPar().SetName("r")
	a, b := leaf("a", "video", 100), leaf("b", "sound", 100)
	b.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.Must,
		Source: "../a", SrcEnd: core.Begin, Offset: units.MS(100), Dest: "",
		MaxDelay: units.MS(0)})
	b.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.Must,
		Source: "../a", SrcEnd: core.Begin, Dest: "", MaxDelay: units.MS(0)})
	root.Add(a, b)
	g, err := Build(doc(t, root), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Solve(SolveOptions{})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want conflict, got %v", err)
	}
	// Every cycle constraint carries a non-empty provenance note.
	for _, c := range ce.Cycle {
		if c.Note == "" {
			t.Errorf("constraint without provenance: %+v", c)
		}
	}
}

func TestWithoutArcRemovesConstraints(t *testing.T) {
	root := core.NewPar().SetName("r")
	a, b := leaf("a", "video", 100), leaf("b", "sound", 100)
	b.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.Must,
		Source: "../a", SrcEnd: core.Begin, Offset: units.MS(100), Dest: "",
		MaxDelay: units.MS(0)})
	root.Add(a, b)
	g, err := Build(doc(t, root), Options{})
	if err != nil {
		t.Fatal(err)
	}
	refs := g.Arcs()
	if len(refs) != 1 {
		t.Fatal("arc not registered")
	}
	before := len(g.Constraints())
	g2 := g.WithoutArc(refs[0])
	if len(g2.Constraints()) >= before {
		t.Errorf("WithoutArc removed nothing: %d -> %d", before, len(g2.Constraints()))
	}
	// Original untouched.
	if len(g.Constraints()) != before {
		t.Error("WithoutArc mutated original")
	}
	// Without the pin, b starts at 0.
	s, err := g2.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(g.Doc().Root.FindByName("b")) != 0 {
		t.Error("arc constraints survived removal")
	}
}

func TestRuntimeConstraints(t *testing.T) {
	root := core.NewSeq().SetName("r")
	a := leaf("a", "video", 100)
	root.AddChild(a)
	d := doc(t, root)
	g, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	g2.AddRuntimeLower(g2.Begin(d.Root), g2.Begin(a), 50*time.Millisecond, "latency")
	s, err := g2.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(a) != 50*time.Millisecond {
		t.Errorf("runtime lower ignored: %v", s.StartOf(a))
	}
	// Upper bound tightening: begin(a) ≤ root+200ms stays feasible.
	g2.AddRuntimeUpper(g2.Begin(d.Root), g2.Begin(a), 200*time.Millisecond, "deadline")
	if _, err := g2.Solve(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	// Contradictory upper bound: begin(a) ≤ root+10ms conflicts.
	g3 := g.Clone()
	g3.AddRuntimeLower(g3.Begin(d.Root), g3.Begin(a), 50*time.Millisecond, "latency")
	g3.AddRuntimeUpper(g3.Begin(d.Root), g3.Begin(a), 10*time.Millisecond, "deadline")
	if _, err := g3.Solve(SolveOptions{}); err == nil {
		t.Error("contradictory runtime constraints accepted")
	}
}
