package player

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// Seek analysis implements the paper's third synchronization conflict
// (section 5.3.3): "in navigating through a document, a reader ... may want
// to fast-forward (or fast-reverse) to a document section that contains a
// number of relative synchronization constraints for which the source or
// destination are not active. ... We support the general notion within
// relative arcs that the source of the arc must execute in order for a
// synchronization condition to be true; if this is not the case, all
// incoming synchronization arcs are considered to be invalid."

// ArcState classifies an explicit arc at a seek point.
type ArcState int

const (
	// ArcValid means the source executes at or after the seek point, so
	// the arc still constrains playback.
	ArcValid ArcState = iota
	// ArcSatisfied means both endpoints lie entirely before the seek
	// point: the arc already did its work.
	ArcSatisfied
	// ArcInvalid means the source completed before the seek point but the
	// destination is still pending: the source will never execute in the
	// resumed playback, so the arc is invalid and must be ignored.
	ArcInvalid
)

func (s ArcState) String() string {
	switch s {
	case ArcValid:
		return "valid"
	case ArcSatisfied:
		return "satisfied"
	case ArcInvalid:
		return "invalid"
	default:
		return "unknown"
	}
}

// SeekReport describes the document state at a seek target.
type SeekReport struct {
	// At is the seek time.
	At time.Duration
	// Active lists leaves whose [start, end) interval spans the seek
	// point, in path order: what the reader sees on each channel.
	Active []*core.Node
	// Arcs maps every explicit arc to its state at the seek point.
	Arcs []SeekArc
}

// SeekArc pairs an arc with its classification.
type SeekArc struct {
	Ref   sched.ArcRef
	State ArcState
}

// Invalid filters the report to invalid arcs.
func (r *SeekReport) Invalid() []sched.ArcRef {
	var out []sched.ArcRef
	for _, a := range r.Arcs {
		if a.State == ArcInvalid {
			out = append(out, a.Ref)
		}
	}
	return out
}

// AnalyzeSeek classifies every explicit arc against a seek to time at,
// using the planned schedule s.
func AnalyzeSeek(s *sched.Schedule, at time.Duration) *SeekReport {
	g := s.Graph()
	doc := g.Doc()
	rep := &SeekReport{At: at}

	doc.Root.Walk(func(n *core.Node) bool {
		if n.Type.IsLeaf() && s.StartOf(n) <= at && at < s.EndOf(n) {
			rep.Active = append(rep.Active, n)
		}
		return true
	})
	sort.Slice(rep.Active, func(i, j int) bool {
		return rep.Active[i].PathString() < rep.Active[j].PathString()
	})

	for _, ref := range g.Arcs() {
		src, dst, err := ref.Node.ResolveArc(ref.Arc)
		if err != nil {
			continue
		}
		srcTime := s.StartOf(src)
		if ref.Arc.SrcEnd == core.End {
			srcTime = s.EndOf(src)
		}
		dstTime := s.StartOf(dst)
		if ref.Arc.DestEnd == core.End {
			dstTime = s.EndOf(dst)
		}
		state := ArcValid
		switch {
		case srcTime < at && dstTime < at:
			state = ArcSatisfied
		case srcTime < at && dstTime >= at:
			state = ArcInvalid
		}
		rep.Arcs = append(rep.Arcs, SeekArc{Ref: ref, State: state})
	}
	return rep
}

// ResumeGraph builds the constraint graph for playback resumed at the seek
// point: invalid arcs are removed, per the paper's rule. The returned graph
// can be solved and played as usual.
func ResumeGraph(g *sched.Graph, rep *SeekReport) *sched.Graph {
	out := g
	for _, ref := range rep.Invalid() {
		out = out.WithoutArc(ref)
	}
	if out == g {
		out = g.Clone()
	}
	return out
}
