// Command cmifget fetches documents and blocks from a cmifd server.
//
// Usage:
//
//	cmifget [-addr 127.0.0.1:7911] list
//	cmifget [-addr ...] doc <name> [-inline] [-binary]
//	cmifget [-addr ...] block <name>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codec"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7911", "server address")
	inline := flag.Bool("inline", false, "fetch documents with inlined payloads")
	binaryEnc := flag.Bool("binary", false, "use the binary wire encoding")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}

	c, err := transport.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch flag.Arg(0) {
	case "list":
		names, err := c.ListDocs()
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "doc":
		if flag.NArg() != 2 {
			usage()
		}
		enc := transport.EncodingText
		if *binaryEnc {
			enc = transport.EncodingBinary
		}
		doc, err := c.GetDoc(flag.Arg(1), transport.GetDocOptions{
			Encoding: enc, Inline: *inline,
		})
		if err != nil {
			fatal(err)
		}
		out, err := codec.Encode(doc, codec.WriteOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Fprintf(os.Stderr, "cmifget: %d wire bytes received\n", c.BytesReceived)
	case "block":
		if flag.NArg() != 2 {
			usage()
		}
		b, err := c.GetBlock(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cmifget: %s (%s, %d bytes)\n", b.Name, b.Medium, len(b.Payload))
		os.Stdout.Write(b.Payload)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cmifget [-addr a] [-inline] [-binary] (list | doc <name> | block <name>)")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmifget:", err)
	os.Exit(1)
}
