package render

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// Tree renders the node tree in the conventional indented form of Figure
// 5a, annotating each node with its type, name and channel.
func Tree(d *core.Document) string {
	var b strings.Builder
	var walk func(n *core.Node, depth int)
	walk = func(n *core.Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Type.String())
		if name := n.Name(); name != "" {
			b.WriteString(" ")
			b.WriteString(name)
		}
		var notes []string
		if ch, err := d.ChannelOf(n); err == nil && n.Type.IsLeaf() {
			notes = append(notes, "channel="+ch.Name)
		}
		if f, ok := d.FileOf(n); ok && n.Type == core.Ext {
			notes = append(notes, "file="+f)
		}
		if n.Type == core.Imm {
			notes = append(notes, fmt.Sprintf("%d bytes", len(n.Data)))
		}
		if arcs, err := n.Arcs(); err == nil && len(arcs) > 0 {
			notes = append(notes, fmt.Sprintf("%d arcs", len(arcs)))
		}
		if len(notes) > 0 {
			b.WriteString("  [")
			b.WriteString(strings.Join(notes, ", "))
			b.WriteString("]")
		}
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(d.Root, 0)
	return b.String()
}

// TOCEntry is one named node in the table of contents.
type TOCEntry struct {
	Node  *core.Node
	Depth int
	Start time.Duration
	End   time.Duration
}

// TOC builds the table of contents: every named composite and leaf with its
// scheduled extent. "The document structure map provides a data-independent,
// position-independent and system-independent view of the multimedia
// document being read, acting as an internal table-of-contents function."
func TOC(s *sched.Schedule) []TOCEntry {
	var out []TOCEntry
	d := s.Graph().Doc()
	d.Root.Walk(func(n *core.Node) bool {
		if n.Name() == "" && !n.IsRoot() {
			return true
		}
		out = append(out, TOCEntry{
			Node:  n,
			Depth: n.Depth(),
			Start: s.StartOf(n),
			End:   s.EndOf(n),
		})
		return true
	})
	return out
}

// TOCText renders the table of contents.
func TOCText(s *sched.Schedule) string {
	var b strings.Builder
	for _, e := range TOC(s) {
		name := e.Node.Name()
		if name == "" {
			name = "(document)"
		}
		fmt.Fprintf(&b, "%s%-24s %10v .. %-10v\n",
			strings.Repeat("  ", e.Depth), name, e.Start, e.End)
	}
	return b.String()
}

// ArcTable renders every explicit arc in the document in the tabular form
// of Figure 9: type, source, offset, destination, min_delay, max_delay.
func ArcTable(d *core.Document) string {
	var rows [][6]string
	d.Root.Walk(func(n *core.Node) bool {
		arcs, err := n.Arcs()
		if err != nil {
			return true
		}
		for _, a := range arcs {
			maxs := a.MaxDelay.String()
			if a.MaxDelay.Value >= 1<<62 {
				maxs = "inf"
			}
			rows = append(rows, [6]string{
				fmt.Sprintf("(%s %s)", a.DestEnd, a.Strict),
				n.PathString() + " : " + orSelf(a.Source) + "." + a.SrcEnd.String(),
				a.Offset.String(),
				orSelf(a.Dest),
				a.MinDelay.String(),
				maxs,
			})
		}
		return true
	})
	header := [6]string{"type", "source", "offset", "destination", "min_delay", "max_delay"}
	widths := make([]int, 6)
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r [6]string) {
		for i, cell := range r {
			fmt.Fprintf(&b, "| %-*s ", widths[i], cell)
		}
		b.WriteString("|\n")
	}
	writeRow(header)
	total := 1
	for _, w := range widths {
		total += w + 3
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func orSelf(p string) string {
	if p == "" {
		return "(self)"
	}
	return p
}

// TimelineOptions controls the channel/time view.
type TimelineOptions struct {
	// Resolution is the document time per text row; default 100ms.
	Resolution time.Duration
	// ColWidth is the width of each channel column; default 14.
	ColWidth int
	// MaxRows caps the rendering; default 200 rows.
	MaxRows int
}

// Timeline renders the Figure 4b / Figure 10 view: one column per channel,
// time top to bottom, leaf events as boxes labelled with their names.
func Timeline(s *sched.Schedule, opts TimelineOptions) string {
	if opts.Resolution <= 0 {
		opts.Resolution = 100 * time.Millisecond
	}
	if opts.ColWidth < 6 {
		opts.ColWidth = 14
	}
	if opts.MaxRows <= 0 {
		opts.MaxRows = 200
	}
	tl := s.ChannelTimeline()

	// Stable channel order: dictionary order first, extras after.
	d := s.Graph().Doc()
	var channels []string
	seen := map[string]bool{}
	for _, name := range d.Channels().Names() {
		if _, used := tl[name]; used {
			channels = append(channels, name)
			seen[name] = true
		}
	}
	var extra []string
	for name := range tl {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	channels = append(channels, extra...)

	rows := int(s.Makespan()/opts.Resolution) + 1
	if rows > opts.MaxRows {
		rows = opts.MaxRows
	}

	cw := opts.ColWidth
	var b strings.Builder
	// Header.
	b.WriteString(strings.Repeat(" ", 11))
	for _, ch := range channels {
		fmt.Fprintf(&b, "%-*s", cw, clip(ch, cw-1))
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat(" ", 11))
	for range channels {
		b.WriteString(strings.Repeat("-", cw-1))
		b.WriteString(" ")
	}
	b.WriteString("\n")

	for row := 0; row < rows; row++ {
		t0 := time.Duration(row) * opts.Resolution
		t1 := t0 + opts.Resolution
		fmt.Fprintf(&b, "%9v  ", t0)
		for _, ch := range channels {
			cell := strings.Repeat(" ", cw-1)
			for _, slot := range tl[ch] {
				if slot.End <= t0 || slot.Start >= t1 {
					continue
				}
				switch {
				case slot.Start >= t0: // block starts in this bucket
					label := "+" + clip(nodeLabel(slot.Node), cw-2)
					cell = pad(label, cw-1)
				case slot.End <= t1: // block ends in this bucket
					cell = pad("+"+strings.Repeat("-", cw-3), cw-1)
				default: // continuation
					cell = pad("|", cw-1)
				}
			}
			b.WriteString(cell)
			b.WriteString(" ")
		}
		b.WriteString("\n")
	}
	return b.String()
}

func nodeLabel(n *core.Node) string {
	if name := n.Name(); name != "" {
		return name
	}
	return n.PathString()
}

func clip(s string, n int) string {
	if n <= 0 {
		return ""
	}
	if len(s) > n {
		return s[:n]
	}
	return s
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s[:n]
	}
	return s + strings.Repeat(" ", n-len(s))
}

// TraceText renders a playback trace table aligned with a header.
func TraceText(header string, lines []string) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", len(header)))
	b.WriteByte('\n')
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
