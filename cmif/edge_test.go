package cmif

// Edge-tier tests: the cold/warm/disk-warm block matrix, lease-based
// document invalidation (origin edits reach edge replicas; edits
// forwarded through the edge stream back down), lease expiry racing a
// live change stream, and the Fetcher/Chain composition over an edge.
// The SIGKILL crash-restart harness lives in edge_crash_test.go.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/units"
)

// startEdge runs an edge over the origin at addr, caching under dir, and
// returns it with its bound downstream address.
func startEdge(t *testing.T, origin, dir string, opts ...EdgeOption) (*Edge, string) {
	t.Helper()
	opts = append([]EdgeOption{WithOrigin(origin), WithCacheDir(dir)}, opts...)
	e, err := NewEdge(opts...)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := e.Listen("127.0.0.1:0")
	if err != nil {
		e.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, addr
}

// leafPath returns some leaf path of the document, for targeted edits.
func leafPath(t *testing.T, d *Document) string {
	t.Helper()
	var leaf string
	d.doc.Root.Walk(func(n *core.Node) bool {
		if leaf == "" && n.Type.IsLeaf() {
			leaf = n.PathString()
		}
		return leaf == ""
	})
	if leaf == "" {
		t.Fatal("document has no leaves")
	}
	return leaf
}

// TestEdgeBlockMatrix walks a block fetch through every cache state:
// cold (upstream fetch), warm (memory hit, no upstream traffic), and
// disk-warm after a restart with an empty memory tier — byte-identical
// content throughout, and zero origin round trips once warm.
func TestEdgeBlockMatrix(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	doc, store := genDoc(t, 21, 16)
	origin := startLiveServer(t, "live", doc, store)
	cacheDir := t.TempDir()

	e1, addr1 := startEdge(t, origin, cacheDir)
	c1, err := Dial(ctx, addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	names := doc.ExternalFiles()
	if len(names) == 0 {
		t.Fatal("fixture references no external blocks; widen the corpus")
	}

	// Cold: every block crosses to the origin exactly once.
	cold, err := c1.Blocks(ctx, names)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range cold {
		if b == nil {
			t.Fatalf("cold fetch missed %q", names[i])
		}
		want, ok := store.GetByName(names[i])
		if !ok {
			t.Fatalf("fixture store lost %q", names[i])
		}
		if b.ID != want.ID || !bytes.Equal(b.Payload, want.Payload) {
			t.Fatalf("cold fetch of %q is not byte-identical to the origin", names[i])
		}
	}
	coldRTs := e1.UpstreamRoundTrips()
	if coldRTs == 0 {
		t.Fatal("cold fetches made no upstream round trips")
	}

	// Warm: the same names again cost zero upstream traffic.
	warm, err := c1.Blocks(ctx, names)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range warm {
		if b == nil || b.ID != cold[i].ID || !bytes.Equal(b.Payload, cold[i].Payload) {
			t.Fatalf("warm fetch of %q diverged from cold", names[i])
		}
	}
	if got := e1.UpstreamRoundTrips(); got != coldRTs {
		t.Fatalf("warm fetches went upstream: %d round trips after warm, %d after cold", got, coldRTs)
	}
	if ds := e1.DiskStats(); ds.Blocks == 0 {
		t.Fatal("disk tier absorbed no blocks")
	}

	// Disk-warm: a fresh edge process (empty memory) on the same cache
	// directory serves the corpus without touching the origin.
	c1.Close()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	e2, addr2 := startEdge(t, origin, cacheDir)
	c2, err := Dial(ctx, addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	diskWarm, err := c2.Blocks(ctx, names)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range diskWarm {
		if b == nil || b.ID != cold[i].ID || !bytes.Equal(b.Payload, cold[i].Payload) {
			t.Fatalf("disk-warm fetch of %q is not byte-identical to the cold fetch", names[i])
		}
	}
	if got := e2.UpstreamRoundTrips(); got != 0 {
		t.Fatalf("disk-warm fetches made %d upstream round trips, want 0", got)
	}
}

// TestEdgeDocInvalidation pins the lease freshness contract: a document
// read through an edge is leased, origin-side edits invalidate the edge
// replica through the change stream, edits submitted through the edge
// forward to the origin and stream back down, and the generation a
// forwarded edit returns is observable on an edge subscription.
func TestEdgeDocInvalidation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	doc, store := genDoc(t, 31, 16)
	origin := startLiveServer(t, "live", doc, store)
	e, edgeAddr := startEdge(t, origin, t.TempDir())

	oc, err := Dial(ctx, origin)
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	ec, err := Dial(ctx, edgeAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()

	// First read through the edge leases the document.
	first, err := e.OpenDoc(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Leases(); got != 1 {
		t.Fatalf("after first read: %d leases, want 1", got)
	}
	leaf := leafPath(t, first)

	// An origin-side edit must reach the edge replica via the lease.
	if _, err := oc.SubmitEdit(ctx, "live", NewEditBatch().SetAttr(leaf, "duration", attr.Quantity(units.MS(777)))); err != nil {
		t.Fatal(err)
	}
	fresh, err := oc.Document(ctx, "live", WithBinaryWire())
	if err != nil {
		t.Fatal(err)
	}
	want := docBytes(t, fresh)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := e.OpenDoc(ctx, "live")
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(docBytes(t, got), want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("edge replica never absorbed the origin-side edit")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A subscription through the edge rides its local fan-out hub; an
	// edit forwarded through the edge streams back down to it, at the
	// origin's generation numbers.
	sub, err := e.Subscribe(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	gen, err := ec.SubmitEdit(ctx, "live", NewEditBatch().SetAttr(leaf, "duration", attr.Quantity(units.MS(888))))
	if err != nil {
		t.Fatalf("edit through the edge: %v", err)
	}
	for sub.Generation() < gen {
		if _, err := sub.Next(ctx); err != nil {
			t.Fatalf("Next at gen %d/%d: %v", sub.Generation(), gen, err)
		}
	}
	if n := sub.Resyncs(); n != 0 {
		t.Errorf("edge subscription needed %d resyncs, want 0", n)
	}
	after, err := oc.Document(ctx, "live", WithBinaryWire())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(docBytes(t, sub.Document()), docBytes(t, after)) {
		t.Error("edge replica diverged from the origin after a forwarded edit")
	}
}

// TestEdgeLeaseExpiry pins the TTL sweep contract from both sides: an
// idle, unwatched lease is released (and the next access re-leases,
// seeing writes made while cold), while a lease with a live downstream
// subscriber never expires — the change stream keeps flowing through the
// idle period.
func TestEdgeLeaseExpiry(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	doc, store := genDoc(t, 41, 12)
	origin := startLiveServer(t, "live", doc, store)
	e, edgeAddr := startEdge(t, origin, t.TempDir(), WithLeaseTTL(200*time.Millisecond))

	oc, err := Dial(ctx, origin)
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()

	first, err := e.OpenDoc(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	leaf := leafPath(t, first)
	if got := e.Leases(); got != 1 {
		t.Fatalf("%d leases after read, want 1", got)
	}

	// A live subscriber pins the lease across many TTLs, and still
	// receives edits made long after the last explicit access.
	ec, err := Dial(ctx, edgeAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	sub, err := ec.Subscribe(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2500 * time.Millisecond) // several sweep ticks past the TTL
	if got := e.Leases(); got != 1 {
		t.Fatalf("watched lease expired: %d leases, want 1", got)
	}
	gen, err := oc.SubmitEdit(ctx, "live", NewEditBatch().SetAttr(leaf, "duration", attr.Quantity(units.MS(321))))
	if err != nil {
		t.Fatal(err)
	}
	for sub.Generation() < gen {
		if _, err := sub.Next(ctx); err != nil {
			t.Fatalf("watched subscription broke across the idle period: %v", err)
		}
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}

	// Unwatched and idle, the lease must now be swept.
	deadline := time.Now().Add(10 * time.Second)
	for e.Leases() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle unwatched lease never expired")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Writes made while the edge held nothing are visible on re-lease.
	if _, err := oc.SubmitEdit(ctx, "live", NewEditBatch().SetAttr(leaf, "duration", attr.Quantity(units.MS(654)))); err != nil {
		t.Fatal(err)
	}
	fresh, err := oc.Document(ctx, "live", WithBinaryWire())
	if err != nil {
		t.Fatal(err)
	}
	relatched, err := e.OpenDoc(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(docBytes(t, relatched), docBytes(t, fresh)) {
		t.Error("re-leased replica does not reflect writes made while cold")
	}
	if got := e.Leases(); got != 1 {
		t.Fatalf("%d leases after re-read, want 1", got)
	}
}

// TestEdgeExpiryChangeStreamRace races the TTL sweeper against a hot
// writer and a polling reader: leases expire and re-establish under a
// continuous delta stream, and whatever interleaving occurs, the edge
// must neither wedge (a lease without a document) nor serve stale bytes
// once the dust settles.
func TestEdgeExpiryChangeStreamRace(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	doc, store := genDoc(t, 51, 12)
	origin := startLiveServer(t, "live", doc, store)
	e, _ := startEdge(t, origin, t.TempDir(), WithLeaseTTL(100*time.Millisecond))

	oc, err := Dial(ctx, origin)
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	first, err := e.OpenDoc(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	leaf := leafPath(t, first)

	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		defer close(writerErr)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			b := NewEditBatch().SetAttr(leaf, "duration", attr.Quantity(units.MS(int64(100+i))))
			if _, err := oc.SubmitEdit(ctx, "live", b); err != nil {
				writerErr <- err
				return
			}
		}
	}()
	readerErr := make(chan error, 1)
	go func() {
		defer close(readerErr)
		for {
			select {
			case <-stop:
				return
			case <-time.After(40 * time.Millisecond):
			}
			if _, err := e.OpenDoc(ctx, "live"); err != nil {
				readerErr <- fmt.Errorf("read through the edge failed mid-race: %w", err)
				return
			}
		}
	}()
	time.Sleep(3 * time.Second)
	close(stop)
	if err := <-writerErr; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}

	// Settle: the edge must converge on the origin's final bytes.
	fresh, err := oc.Document(ctx, "live", WithBinaryWire())
	if err != nil {
		t.Fatal(err)
	}
	want := docBytes(t, fresh)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := e.OpenDoc(ctx, "live")
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(docBytes(t, got), want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("edge never converged on the origin after the race")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestEdgeFetcherChain exercises the API-redesign seam end to end: a
// Pipeline resolves its corpus through a Chain of local store → edge →
// origin, and PrefetchVia works identically over a Client, an Edge and
// the Chain.
func TestEdgeFetcherChain(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	doc, store := genDoc(t, 61, 16)
	origin := startLiveServer(t, "live", doc, store)
	e, _ := startEdge(t, origin, t.TempDir())
	oc, err := Dial(ctx, origin)
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()

	var fetchers = []struct {
		name string
		f    Fetcher
	}{
		{"client", oc},
		{"edge", e},
		{"chain", Chain(StoreFetcher(NewStore()), e, oc)},
	}
	var want *Store
	for _, tc := range fetchers {
		got, err := PrefetchVia(ctx, tc.f, doc)
		if err != nil {
			t.Fatalf("%s: PrefetchVia: %v", tc.name, err)
		}
		if want == nil {
			want = got
			if want.Len() == 0 {
				t.Fatal("prefetch resolved no blocks")
			}
			continue
		}
		if got.Len() != want.Len() {
			t.Fatalf("%s: prefetched %d blocks, client got %d", tc.name, got.Len(), want.Len())
		}
	}

	remote, err := e.OpenDoc(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPipeline(ctx, remote, WithFetcher(e),
		WithProfile(Workstation1991),
		WithScreen(Screen{W: 1152, H: 900}),
		WithSpeakers(2),
	); err != nil {
		t.Fatalf("pipeline over the edge fetcher: %v", err)
	}

	// An unsupported layer falls through: a chain whose first layer
	// cannot subscribe still delivers a live subscription from the edge.
	sub, err := Chain(StoreFetcher(NewStore()), e).Subscribe(ctx, "live")
	if err != nil {
		t.Fatalf("chain subscribe fell through wrong: %v", err)
	}
	sub.Close()

	// A chain of only dead-end layers reports the typed miss.
	if _, err := Chain(StoreFetcher(NewStore())).OpenDoc(ctx, "live"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("store-only chain OpenDoc = %v, want ErrNotFound", err)
	}
}
