package durable

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/attr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/media"
)

// dupHeavyCorpusBlocks stores nBlocks near-duplicate video blocks: one
// shared base payload with a small per-block splice, so consecutive
// blocks share almost every content-defined chunk. Returns the sum of
// payload sizes.
func dupHeavyCorpusBlocks(t *testing.T, st *State, nBlocks, blockSize int) int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	base := make([]byte, blockSize)
	rng.Read(base)
	var logical int64
	for i := 0; i < nBlocks; i++ {
		payload := append([]byte(nil), base...)
		// A 128-byte splice at a block-specific offset: dedupe must keep
		// the untouched chunks shared and isolate the edit.
		off := (i * 8191) % (blockSize - 128)
		rng.Read(payload[off : off+128])
		b := media.NewBlock(fmt.Sprintf("clip-%02d.vid", i), core.MediumVideo, payload, attr.List{})
		st.Store.Put(b)
		logical += int64(len(payload))
	}
	return logical
}

// snapshotOps scans a snapshot file and counts records by op.
func snapshotOps(t *testing.T, path string) map[byte]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := newRecordScanner(bufio.NewReaderSize(f, 1<<20), path)
	ops := make(map[byte]int)
	for {
		payload, err := sc.next()
		if err == io.EOF {
			return ops
		}
		if err != nil {
			t.Fatalf("scanning %s: %v", path, err)
		}
		op, _, derr := decodeRecord(payload, nil)
		if derr != nil {
			t.Fatalf("decoding record in %s: %v", path, derr)
		}
		ops[op]++
	}
}

// newestSnapshot returns the path of the highest-sequence snapshot.
func newestSnapshot(t *testing.T, dir string) string {
	t.Helper()
	listing, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.snapSeqs) == 0 {
		t.Fatalf("no snapshot in %s", dir)
	}
	return filepath.Join(dir, snapName(listing.snapSeqs[len(listing.snapSeqs)-1]))
}

// TestSnapshotChunkDedupe: a dup-heavy corpus snapshots near its unique
// size — unique chunks once (recChunk), blocks as manifests (recPutBlkC)
// — and recovery rebuilds the identical corpus from that form.
func TestSnapshotChunkDedupe(t *testing.T) {
	dir := t.TempDir()
	l, st := mustOpen(t, dir, Options{Sync: SyncNever})
	const nBlocks, blockSize = 12, 128 << 10
	logical := dupHeavyCorpusBlocks(t, st, nBlocks, blockSize)
	populate(t, l, st) // mix in small blocks, docs, descriptors
	if err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	snap := newestSnapshot(t, dir)
	ops := snapshotOps(t, snap)
	if ops[recPutBlkC] < nBlocks {
		t.Fatalf("want >= %d recPutBlkC records, got %d (ops %v)", nBlocks, ops[recPutBlkC], ops)
	}
	if ops[recChunk] == 0 {
		t.Fatalf("no recChunk records in snapshot (ops %v)", ops)
	}
	if ops[recPutBlk] == 0 {
		t.Fatalf("small blocks should stay plain recPutBlk (ops %v)", ops)
	}
	info, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	// 12 near-duplicates of one 128 KiB base: logical is ~1.5 MiB, unique
	// is ~one base plus the splices. Anything under half logical proves
	// the chunks deduped; in practice it lands near 1/12th.
	if info.Size() > logical/2 {
		t.Fatalf("snapshot %d bytes did not dedupe %d logical bytes", info.Size(), logical)
	}

	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	checkEqual(t, st, got)
	if got.replayChunks != nil {
		t.Fatal("replay chunk staging not released after recovery")
	}
}

// writeLegacySnapshot writes a pre-chunking (v1) snapshot: every block as
// a plain recPutBlk, exactly what the old writer emitted. The upgrade
// test uses it to prove old directories still load.
func writeLegacySnapshot(t *testing.T, dir string, seq uint64, st *State, docs map[string][]byte) {
	t.Helper()
	var buf bytes.Buffer
	write := func(op byte, fields ...[]byte) {
		buf.Write(encodeFrame(op, fields...))
	}
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		write(recPutDoc, []byte(name), docs[name])
	}
	var werr error
	st.Store.Each(func(b *media.Block) bool {
		desc, err := encodeDescriptor(b.Descriptor)
		if err != nil {
			werr = err
			return false
		}
		write(recPutBlk, []byte(b.ID), []byte(b.Name), []byte(b.Medium.String()), desc, b.Payload, []byte{0})
		return true
	})
	if werr != nil {
		t.Fatal(werr)
	}
	for _, name := range st.Store.Names() {
		if id, ok := st.Store.Resolve(name); ok {
			write(recName, []byte(name), []byte(id))
		}
	}
	for _, id := range st.DB.IDs() {
		desc, ok := st.DB.Get(id)
		if !ok {
			continue
		}
		data, err := encodeDescriptor(desc)
		if err != nil {
			t.Fatal(err)
		}
		write(recPutDesc, []byte(id), data)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(seq)), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotFormatUpgrade: an old-format snapshot (plain recPutBlk
// only) recovers, the recovered log re-snapshots in the chunked format,
// and a second recovery serves byte-identical state — the full upgrade
// path a deploy rides through.
func TestSnapshotFormatUpgrade(t *testing.T) {
	srcDir := t.TempDir()
	l, src := mustOpen(t, srcDir, Options{Sync: SyncNever})
	dupHeavyCorpusBlocks(t, src, 8, 64<<10)
	populate(t, l, src)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Lay down an old-format directory: one legacy snapshot, no WAL.
	oldDir := t.TempDir()
	docs := make(map[string][]byte)
	for name, d := range src.Docs {
		data, err := codec.EncodeBinary(d)
		if err != nil {
			t.Fatal(err)
		}
		docs[name] = data
	}
	writeLegacySnapshot(t, oldDir, 1, src, docs)

	ops := snapshotOps(t, newestSnapshot(t, oldDir))
	if ops[recPutBlkC] != 0 || ops[recChunk] != 0 {
		t.Fatalf("legacy snapshot must not contain chunk records (ops %v)", ops)
	}

	// Old snapshot loads under the new code.
	l2, upgraded := mustOpen(t, oldDir, Options{Sync: SyncNever})
	checkEqual(t, src, upgraded)

	// Re-snapshot: the recovered store re-indexed its chunks, so the new
	// snapshot comes out in the deduped format.
	if err := l2.Snapshot(); err != nil {
		t.Fatalf("re-snapshot after upgrade: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	ops = snapshotOps(t, newestSnapshot(t, oldDir))
	if ops[recPutBlkC] == 0 || ops[recChunk] == 0 {
		t.Fatalf("re-snapshot still in legacy format (ops %v)", ops)
	}

	// Second recovery, from the chunked snapshot: byte-equal serving.
	final, err := Load(oldDir)
	if err != nil {
		t.Fatalf("Load after upgrade: %v", err)
	}
	checkEqual(t, src, final)
	src.Store.Each(func(b *media.Block) bool {
		g, ok := final.Store.Get(b.ID)
		if !ok || !bytes.Equal(g.Payload, b.Payload) {
			t.Fatalf("block %s not byte-equal after upgrade cycle", b.Name)
		}
		return true
	})
}

// TestSnapshotChunkCorruptionRejected: a recPutBlkC whose manifest
// references a chunk the snapshot never staged is corruption, not a
// silent skip.
func TestSnapshotChunkCorruptionRejected(t *testing.T) {
	st := newState()
	var h ChunkHash
	for i := range h {
		h[i] = byte(i)
	}
	err := st.apply(recPutBlkC, [][]byte{
		[]byte("someid"), []byte("name"), []byte("text"), []byte("<ext>"), h[:], {0},
	})
	if err == nil {
		t.Fatal("recPutBlkC with unstaged chunk accepted")
	}

	// A staged chunk whose bytes do not match its recorded hash is
	// rejected before it can poison later assemblies.
	err = st.apply(recChunk, [][]byte{h[:], []byte("not the preimage")})
	if err == nil {
		t.Fatal("recChunk with wrong hash accepted")
	}
}
