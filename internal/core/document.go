package core

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/units"
)

// Document wraps a CMIF tree root together with the dictionaries parsed from
// it. "At the root of the tree is a general node that describes the summary
// structure of a document ... it is a place where various directory
// attributes are found and ... provides an implied timing reference point
// for all other nodes" (section 5.1).
type Document struct {
	Root *Node

	styles   *attr.StyleDict
	channels *ChannelDict
	changes  []Change
}

// NewDocument wraps root, decoding its style and channel dictionaries.
func NewDocument(root *Node) (*Document, error) {
	d := &Document{Root: root}
	if err := d.Refresh(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustDocument is NewDocument that panics on error, for static literals in
// tests and examples.
func MustDocument(root *Node) *Document {
	d, err := NewDocument(root)
	if err != nil {
		panic(err)
	}
	return d
}

// Refresh re-decodes the root dictionaries after the tree was edited. The
// refresh is recorded as a global change: callers use Refresh after editing
// the tree directly, which incremental consumers cannot track.
func (d *Document) Refresh() error {
	d.NoteGlobalChange()
	d.styles = attr.NewStyleDict()
	d.channels = NewChannelDict()
	if d.Root == nil {
		return fmt.Errorf("core: document has no root")
	}
	if v, ok := d.Root.Attrs.Get("styledict"); ok {
		sd, err := attr.ParseStyleDict(v)
		if err != nil {
			return err
		}
		d.styles = sd
	}
	if v, ok := d.Root.Attrs.Get("channeldict"); ok {
		cd, err := ParseChannelDict(v)
		if err != nil {
			return err
		}
		d.channels = cd
	}
	return nil
}

// Styles returns the document's style dictionary.
func (d *Document) Styles() *attr.StyleDict { return d.styles }

// Channels returns the document's channel dictionary.
func (d *Document) Channels() *ChannelDict { return d.channels }

// SetStyles installs a style dictionary on the root and re-decodes.
func (d *Document) SetStyles(sd *attr.StyleDict) {
	d.Root.Attrs.Set("styledict", sd.DictValue())
	d.styles = sd
	d.NoteGlobalChange()
}

// SetChannels installs a channel dictionary on the root and re-decodes.
func (d *Document) SetChannels(cd *ChannelDict) {
	d.Root.Attrs.Set("channeldict", cd.DictValue())
	d.channels = cd
	d.NoteGlobalChange()
}

// EffectiveAttrs computes the attributes in force on node n: the node's own
// attributes, with its styles expanded ("at runtime, each style name is
// looked up in the style directory of the root node"), and inheritable
// attributes (channel, file, tformatting) filled in from ancestors. Styles
// on ancestors are expanded before their attributes are inherited.
func (d *Document) EffectiveAttrs(n *Node) (attr.List, error) {
	out, err := d.styles.Expand(n.Attrs)
	if err != nil {
		return attr.List{}, fmt.Errorf("core: %s: %w", n.PathString(), err)
	}
	for p := n.Parent(); p != nil; p = p.Parent() {
		// Only style references and inheritable attributes can reach n.
		// Filter before expanding, so heavy non-inherited values (a
		// composite's syncarcs list, immediate data) are never cloned —
		// EffectiveAttrs runs twice per leaf on the scheduler build path.
		var relevant attr.List
		for _, pair := range p.Attrs.Pairs() {
			if pair.Name == "style" || StandardAttrs.IsInherited(pair.Name) {
				relevant.Set(pair.Name, pair.Value)
			}
		}
		if len(relevant.Pairs()) == 0 {
			continue
		}
		exp, err := d.styles.Expand(relevant)
		if err != nil {
			return attr.List{}, fmt.Errorf("core: %s: %w", p.PathString(), err)
		}
		for _, pair := range exp.Pairs() {
			if StandardAttrs.IsInherited(pair.Name) {
				out.SetDefault(pair.Name, pair.Value)
			}
		}
	}
	return out, nil
}

// ChannelOf returns the channel the node's data is directed to, resolving
// the inherited channel attribute against the channel dictionary.
func (d *Document) ChannelOf(n *Node) (Channel, error) {
	eff, err := d.EffectiveAttrs(n)
	if err != nil {
		return Channel{}, err
	}
	name, ok := eff.GetID("channel")
	if !ok {
		return Channel{}, fmt.Errorf("core: %s has no channel attribute", n.PathString())
	}
	c, ok := d.channels.Lookup(name)
	if !ok {
		return Channel{}, fmt.Errorf("core: %s names undefined channel %q", n.PathString(), name)
	}
	return c, nil
}

// FileOf returns the (inherited) file attribute identifying the node's data
// descriptor, for external nodes.
func (d *Document) FileOf(n *Node) (string, bool) {
	eff, err := d.EffectiveAttrs(n)
	if err != nil {
		return "", false
	}
	if s, ok := eff.GetString("file"); ok {
		return s, true
	}
	if id, ok := eff.GetID("file"); ok {
		return id, true
	}
	return "", false
}

// ExternalFiles returns the distinct (inherited) file attributes of the
// document's external leaves, in first-appearance order — the block list a
// player must resolve before the presentation can start.
func (d *Document) ExternalFiles() []string {
	var out []string
	seen := make(map[string]bool)
	d.Root.Walk(func(n *Node) bool {
		if n.Type != Ext {
			return true
		}
		if file, ok := d.FileOf(n); ok && !seen[file] {
			seen[file] = true
			out = append(out, file)
		}
		return true
	})
	return out
}

// DurationOf returns the leaf event's presentation duration in document
// time, from its (effective) duration attribute converted with the channel's
// rates. Leaves without a duration report ok=false; composites always report
// false (their extent derives from their children).
func (d *Document) DurationOf(n *Node) (dur units.Quantity, ok bool) {
	if !n.Type.IsLeaf() {
		return units.Quantity{}, false
	}
	eff, err := d.EffectiveAttrs(n)
	if err != nil {
		return units.Quantity{}, false
	}
	v, okAttr := eff.Get("duration")
	if !okAttr {
		return units.Quantity{}, false
	}
	q, okNum := v.AsNumber()
	if !okNum {
		return units.Quantity{}, false
	}
	return q, true
}

// ResolverFor returns the unit resolver applicable to node n: the rates of
// its channel when it has one, otherwise a plain time-only resolver.
func (d *Document) ResolverFor(n *Node) *units.Resolver {
	if c, err := d.ChannelOf(n); err == nil {
		return c.Resolver()
	}
	return units.NewResolver(units.Rates{})
}

// Stats summarizes a document's structure for table-of-contents style tools
// (the "internal table-of-contents function" of section 2).
type Stats struct {
	Nodes     int
	Seq       int
	Par       int
	Ext       int
	Imm       int
	MaxDepth  int
	Arcs      int
	Channels  int
	Styles    int
	ImmBytes  int
	NamedSet  int
	LeafCount int
}

// Stats walks the tree and computes summary statistics.
func (d *Document) Stats() Stats {
	var s Stats
	s.Channels = d.channels.Len()
	s.Styles = d.styles.Len()
	d.Root.Walk(func(n *Node) bool {
		s.Nodes++
		switch n.Type {
		case Seq:
			s.Seq++
		case Par:
			s.Par++
		case Ext:
			s.Ext++
			s.LeafCount++
		case Imm:
			s.Imm++
			s.LeafCount++
			s.ImmBytes += len(n.Data)
		}
		if depth := n.Depth(); depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		if n.Name() != "" {
			s.NamedSet++
		}
		if arcs, err := n.Arcs(); err == nil {
			s.Arcs += len(arcs)
		}
		return true
	})
	return s
}

// Clone deep-copies the document.
func (d *Document) Clone() *Document {
	c, err := NewDocument(d.Root.Clone())
	if err != nil {
		// The source document decoded successfully; a clone cannot fail.
		panic(fmt.Sprintf("core: clone failed: %v", err))
	}
	return c
}
