// Command cmifbench regenerates every experiment artifact of the paper
// reproduction — the section 3.1 table, Figures 1-10, the two ablations —
// plus the S1 storage/fetch concurrency scenarios, whose machine-readable
// results land in BENCH_store.json.
//
// Usage:
//
//	cmifbench [-store-out BENCH_store.json] [-clients 1,16] [T1 F1 ... A2 S1]
//
// Run with no experiment ids for everything. Naming ids restricts the run;
// S1 is the store bench.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/cmif"
)

func main() {
	storeOut := flag.String("store-out", "BENCH_store.json", "path for the S1 store-bench JSON results")
	clients := flag.String("clients", "1,16", "comma-separated concurrent client counts for S1")
	fetches := flag.Int("fetches", 256, "block fetches per client in S1")
	blocks := flag.Int("blocks", 64, "corpus size (blocks) in S1")
	flag.Parse()

	want := map[string]bool{}
	for _, arg := range flag.Args() {
		want[arg] = true
	}
	runAll := len(want) == 0
	failed := 0
	for _, exp := range cmif.Experiments() {
		if !runAll && !want[exp.ID] {
			continue
		}
		tbl, err := exp.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmifbench: %s: %v\n", exp.ID, err)
			failed++
			continue
		}
		fmt.Println(tbl)
	}
	if runAll || want["S1"] {
		if err := runStoreBench(*storeOut, *clients, *blocks, *fetches); err != nil {
			fmt.Fprintf(os.Stderr, "cmifbench: S1: %v\n", err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runStoreBench runs the S1 concurrency scenarios, prints the table and
// writes the JSON report to out.
func runStoreBench(out, clientList string, blocks, fetches int) error {
	cfg := cmif.StoreBenchConfig{Blocks: blocks, FetchesPerClient: fetches}
	for _, f := range strings.Split(clientList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -clients entry %q", f)
		}
		cfg.Clients = append(cfg.Clients, n)
	}
	report, err := cmif.RunStoreBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Println(report.Table())
	data, err := report.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cmifbench: wrote %s\n", out)
	return nil
}
