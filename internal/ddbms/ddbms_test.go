package ddbms

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/attr"
	"repro/internal/units"
)

// fill inserts n synthetic video/audio descriptors.
func fill(t testing.TB, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		medium := "video"
		if i%3 == 0 {
			medium = "audio"
		}
		desc := attr.MustList(
			attr.P("medium", attr.ID(medium)),
			attr.P("width", attr.Number(int64(160+(i%8)*40))),
			attr.P("duration", attr.Quantity(units.MS(int64(i)*100))),
			attr.P("title", attr.String(fmt.Sprintf("block %d", i))),
		)
		if err := db.Insert(fmt.Sprintf("b%04d", i), desc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInsertGetDelete(t *testing.T) {
	db := New()
	desc := attr.MustList(attr.P("medium", attr.ID("video")))
	if err := db.Insert("a", desc); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("a", desc); err == nil {
		t.Error("duplicate insert accepted")
	}
	got, ok := db.Get("a")
	if !ok || !got.Equal(desc) {
		t.Errorf("Get = %v, %v", got, ok)
	}
	if _, ok := db.Get("z"); ok {
		t.Error("phantom Get")
	}
	if !db.Delete("a") || db.Delete("a") {
		t.Error("Delete semantics")
	}
	if db.Len() != 0 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestGetIsolation(t *testing.T) {
	db := New()
	desc := attr.MustList(attr.P("x", attr.Number(1)))
	db.Insert("a", desc)
	got, _ := db.Get("a")
	got.Set("x", attr.Number(99))
	again, _ := db.Get("a")
	if v, _ := again.GetInt("x"); v != 1 {
		t.Error("Get returns shared storage")
	}
}

func TestSelectEq(t *testing.T) {
	db := New()
	fill(t, db, 30)
	audio := db.Select(Eq("medium", attr.ID("audio")))
	if len(audio) != 10 {
		t.Errorf("audio count = %d, want 10", len(audio))
	}
	for _, id := range audio {
		d, _ := db.Get(id)
		if m, _ := d.GetID("medium"); m != "audio" {
			t.Errorf("%s: medium = %q", id, m)
		}
	}
	// Sorted output.
	if !sortedStrings(audio) {
		t.Error("result not sorted")
	}
}

func TestSelectConjunction(t *testing.T) {
	db := New()
	fill(t, db, 64)
	got := db.Select(
		Eq("medium", attr.ID("video")),
		Eq("width", attr.Number(200)),
	)
	want := db.SelectLinear(
		Eq("medium", attr.ID("video")),
		Eq("width", attr.Number(200)),
	)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("indexed %v != linear %v", got, want)
	}
	if len(got) == 0 {
		t.Error("conjunction empty; fixture wrong")
	}
}

func TestSelectRange(t *testing.T) {
	db := New()
	fill(t, db, 50)
	got := db.Select(Range("duration", 1000, 2000, units.Millis))
	// durations are i*100ms: ids 10..20 inclusive.
	if len(got) != 11 {
		t.Errorf("range matched %d, want 11: %v", len(got), got)
	}
	want := db.SelectLinear(Range("duration", 1000, 2000, units.Millis))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("indexed %v != linear %v", got, want)
	}
	// Unit mismatch matches nothing.
	if got := db.Select(Range("duration", 1, 2, units.Seconds)); len(got) != 0 {
		t.Errorf("cross-unit range matched %v", got)
	}
}

func TestSelectHas(t *testing.T) {
	db := New()
	fill(t, db, 10)
	db.Insert("bare", attr.MustList(attr.P("medium", attr.ID("text"))))
	got := db.Select(Has("width"))
	if len(got) != 10 {
		t.Errorf("Has(width) = %d, want 10", len(got))
	}
	if got := db.Select(Has("nonexistent")); len(got) != 0 {
		t.Errorf("Has(nonexistent) = %v", got)
	}
}

func TestSelectEmptyPredicatesMatchesAll(t *testing.T) {
	db := New()
	fill(t, db, 5)
	if got := db.Select(); len(got) != 5 {
		t.Errorf("empty Select = %d", len(got))
	}
}

func TestUpsertReindexes(t *testing.T) {
	db := New()
	db.Insert("a", attr.MustList(attr.P("medium", attr.ID("video"))))
	db.Upsert("a", attr.MustList(attr.P("medium", attr.ID("audio"))))
	if got := db.Select(Eq("medium", attr.ID("video"))); len(got) != 0 {
		t.Errorf("stale index entry: %v", got)
	}
	if got := db.Select(Eq("medium", attr.ID("audio"))); len(got) != 1 {
		t.Errorf("new index entry missing: %v", got)
	}
	// Upsert of a fresh id inserts.
	db.Upsert("b", attr.MustList(attr.P("medium", attr.ID("text"))))
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestDeleteUnindexes(t *testing.T) {
	db := New()
	fill(t, db, 20)
	victims := db.Select(Eq("medium", attr.ID("audio")))
	for _, id := range victims {
		db.Delete(id)
	}
	if got := db.Select(Eq("medium", attr.ID("audio"))); len(got) != 0 {
		t.Errorf("deleted ids still indexed: %v", got)
	}
	if got := db.Select(Range("duration", 0, 1<<40, units.Millis)); len(got) != db.Len() {
		t.Errorf("numeric index stale after delete: %d vs %d", len(got), db.Len())
	}
}

func TestIndexedMatchesLinearProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := New()
	media := []string{"video", "audio", "text", "image"}
	for i := 0; i < 200; i++ {
		desc := attr.MustList(
			attr.P("medium", attr.ID(media[rng.Intn(4)])),
			attr.P("width", attr.Number(int64(rng.Intn(5))*100)),
			attr.P("duration", attr.Quantity(units.MS(int64(rng.Intn(1000))))),
		)
		db.Insert(fmt.Sprintf("r%03d", i), desc)
	}
	for trial := 0; trial < 50; trial++ {
		preds := []Pred{}
		if rng.Intn(2) == 0 {
			preds = append(preds, Eq("medium", attr.ID(media[rng.Intn(4)])))
		}
		if rng.Intn(2) == 0 {
			lo := int64(rng.Intn(500))
			preds = append(preds, Range("duration", lo, lo+int64(rng.Intn(500)), units.Millis))
		}
		if rng.Intn(3) == 0 {
			preds = append(preds, Has("width"))
		}
		got := db.Select(preds...)
		want := db.SelectLinear(preds...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: indexed %v != linear %v (preds %+v)", trial, got, want, preds)
		}
	}
}

func TestIDsAndStats(t *testing.T) {
	db := New()
	fill(t, db, 12)
	ids := db.IDs()
	if len(ids) != 12 || !sortedStrings(ids) {
		t.Errorf("IDs = %v", ids)
	}
	s := db.Stats()
	if s.Descriptors != 12 || s.IndexedAttrs == 0 || s.PostingLists == 0 ||
		s.NumericIndex == 0 || s.NumericValues == 0 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				db.Upsert(id, attr.MustList(
					attr.P("medium", attr.ID("video")),
					attr.P("duration", attr.Quantity(units.MS(int64(i)))),
				))
				db.Select(Eq("medium", attr.ID("video")))
				db.Get(id)
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != 8*40 {
		t.Errorf("Len = %d", db.Len())
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}
