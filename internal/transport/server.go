package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/chunker"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/media"
)

// Registry holds the documents and blocks a server offers. Safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	docs  map[string]*core.Document
	Store *media.Store

	// OnPutDoc, when non-nil, observes every document registration
	// (with the registry's own clone, after it lands). The durability
	// layer uses it to journal document mutations. Set before serving.
	OnPutDoc func(name string, d *core.Document)
	// DurabilityErr, when non-nil, reports whether the durability layer
	// has failed; mutating ops are refused once it returns non-nil, so
	// the server never acknowledges a write it could not persist. Set
	// before serving.
	DurabilityErr func() error

	// live is the protocol-v3 fan-out hub: per-document generations and
	// subscriber queues, guarded by mu (see live.go).
	live liveState
}

// NewRegistry returns an empty registry backed by store (a fresh store when
// nil).
func NewRegistry(store *media.Store) *Registry {
	if store == nil {
		store = media.NewStore()
	}
	return &Registry{docs: make(map[string]*core.Document), Store: store}
}

// PutDoc registers a document under name.
func (r *Registry) PutDoc(name string, d *core.Document) {
	clone := d.Clone()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.docs[name] = clone
	// The hook runs under the lock so racing registrations of one name
	// journal in the order they landed in the map — recovery replays the
	// same winner the pre-crash server served. (Readers of the registry
	// wait out the journal append, fsync included under SyncAlways.)
	if r.OnPutDoc != nil {
		r.OnPutDoc(name, clone)
	}
	r.notePutDocLocked(name, clone)
}

// GetDoc fetches a clone of the document registered under name.
func (r *Registry) GetDoc(name string) (*core.Document, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.docs[name]
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// DocNames returns registered document names, sorted.
func (r *Registry) DocNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.docs))
	for n := range r.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Encoding selects the document wire encoding.
type Encoding byte

const (
	// EncodingText is the human-readable form.
	EncodingText Encoding = 't'
	// EncodingBinary is the compact TLV form.
	EncodingBinary Encoding = 'b'
)

// GetDocOptions shapes a document fetch.
type GetDocOptions struct {
	Encoding Encoding
	// Inline ships payloads inside the tree (no common storage server).
	Inline bool
}

// Server serves a registry over TCP. It speaks protocol v2 (multiplexed,
// pipelined requests with chunked block streaming) to clients that
// negotiate it at connect, and the legacy strict request/response
// protocol v1 to everyone else.
type Server struct {
	reg *Registry

	// IdleTimeout bounds how long a connection may sit without delivering
	// any data — between requests, or stalled mid-request — before the
	// server hangs up; every received chunk re-arms it, so a slow but
	// progressing upload is not cut off. Zero means forever. Set before
	// Listen.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write — on a v2 connection, each
	// response frame — so a slow or stuck client cannot pin a serving
	// goroutine forever; zero means no bound. Set before Listen.
	WriteTimeout time.Duration
	// MaxInFlight bounds how many requests one v2 connection may have in
	// flight; requests past the bound are rejected with opErrBusy. The
	// bound is advertised to the client at hello. Zero means
	// defaultMaxInFlight. Set before Listen.
	MaxInFlight int
	// MaxVersion caps the protocol version the server negotiates; zero
	// means the newest this build speaks. Set to 1 to force every
	// connection onto the legacy protocol. Set before Listen.
	MaxVersion int
	// Compression enables per-frame flate compression on connections
	// that negotiate protocol v4: the hello response advertises the
	// codec, and response frames past the codec floor ship deflated
	// unless they prove incompressible. Decoding compressed frames is
	// always on regardless of this flag. Set before Listen.
	Compression bool
	// Admission configures server-wide admission control: a concurrency
	// bound across all connections with a bounded, deadline-aware queue.
	// Requests past the bounds are shed with opErrBusy instead of
	// degrading every request's latency. The zero value disables it. Set
	// before Listen.
	Admission Admission
	// SubQueueCap bounds each live-document subscriber's event queue
	// (protocol v3): a watcher whose queue overflows is shed with a
	// changeEnd frame instead of buffering without bound. Zero means
	// defaultSubQueue. Set before Listen.
	SubQueueCap int
	// Metrics, when non-nil, records request counts, per-op latency,
	// in-flight and queue gauges, busy rejections and descriptor-cache
	// effectiveness (NewServerMetrics). Set before Listen.
	Metrics *ServerMetrics
	// Cluster, when non-nil, turns the server into one node of a
	// replicated cluster: writes — document registrations, block puts,
	// edit batches — route through the handler (which journals on the
	// key's primary and replicates before acknowledging), reads that
	// miss locally are proxied to the key's replicas, and the gossip,
	// replication and resync ops (opGossip/opReplicate/opResync) are
	// answered. Mutually exclusive with Loader. Set before Listen.
	Cluster ClusterHandler
	// Loader, when non-nil, turns the server into a read-through proxy:
	// document and block lookups that miss the local registry consult the
	// loader (which typically fetches from an upstream origin and caches),
	// and mutations — document registrations, block puts, edit batches —
	// are forwarded upstream instead of applied locally, so the origin
	// stays the single writer and mutations flow back down through the
	// proxy's upstream subscriptions. Set before Listen.
	Loader Loader

	// ServiceDelay, when nonzero, stalls every admitted request for the
	// given duration before handling — a capacity-modeling knob for
	// benchmarks that emulate a fixed per-node service time (so cluster
	// scaling measures added serving slots, not the host's core count).
	// Zero, the production value, disables it. Set before Listen.
	ServiceDelay time.Duration

	// testOpDelay, when non-nil, stalls request handling — a test hook
	// for exercising backpressure deterministically.
	testOpDelay func(op byte)

	// descCache memoizes wire-encoded block descriptors by content
	// address. Blocks are immutable under their ID, so the entry never
	// goes stale; it saves re-encoding the descriptor on every fetch of
	// a hot block.
	descCache sync.Map // string (block ID) → string (descriptor text)

	// adm enforces Admission; nil admits everything. Built at Listen.
	adm *admitter

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewServer returns a server over reg.
func NewServer(reg *Registry) *Server {
	return &Server{reg: reg, conns: make(map[net.Conn]struct{})}
}

// Loader is the read-through seam an edge cache implements (see
// Server.Loader). Load methods run on request-handler goroutines and
// may block on upstream round trips; Forward methods relay mutations to
// the authority and return its verdict.
type Loader interface {
	// LoadDoc materializes the document registered upstream under name
	// into the server's registry (typically by subscribing upstream, so
	// later mutations stream down as deltas) and reports whether it
	// exists. A false return answers the client's request with not-found.
	LoadDoc(name string) bool
	// LoadBlock fetches a block the local store misses, by name or
	// content address. The implementation caches what it returns.
	LoadBlock(name string) (*media.Block, bool)
	// ForwardPutDoc relays a wholesale document registration upstream.
	ForwardPutDoc(name string, d *core.Document) error
	// ForwardPutBlock relays a block put upstream, returning the content
	// address the authority assigned.
	ForwardPutBlock(b *media.Block) (string, error)
	// ForwardEdit relays an edit batch upstream, returning the new
	// authoritative generation.
	ForwardEdit(name string, recs []core.ChangeRecord) (uint64, error)
	// ListDocs names the documents the authority offers.
	ListDocs() ([]string, error)
}

// ClusterHandler is the seam a cluster node implements (see
// Server.Cluster). Write methods run on request-handler goroutines and
// may block on forwarding and synchronous replication; read-miss methods
// may block on peer round trips.
type ClusterHandler interface {
	// Gossip merges a peer's encoded membership view and returns the
	// local view (after the merge). An empty view reads membership
	// without asserting any.
	Gossip(view []byte) ([]byte, error)
	// Replicate verifies and appends a batch of framed WAL records
	// shipped by a key's primary, applying them to the live state.
	Replicate(frames []byte) error
	// Resync returns a chunk of full-state WAL records starting at
	// cursor ("" starts); an empty next cursor ends the walk.
	Resync(cursor string) (frames []byte, next string, err error)
	// PutDoc routes a document registration through the ring: journal
	// on the primary, replicate, then acknowledge.
	PutDoc(name string, d *core.Document) error
	// PutBlock routes a block put through the ring, returning the
	// content address.
	PutBlock(b *media.Block) (string, error)
	// SubmitEdit routes an edit batch through the ring, returning the
	// new generation. A missing document matches ErrNotFound; a
	// conflict keeps its "conflict:" text.
	SubmitEdit(name string, recs []core.ChangeRecord) (uint64, error)
	// MissingDoc proxies a read for a document this node does not hold
	// to the key's replicas.
	MissingDoc(name string) (*core.Document, bool)
	// MissingBlock proxies a block read this node cannot serve.
	MissingBlock(name string) (*media.Block, bool)
	// DocNames merges the cluster-wide document listing.
	DocNames() ([]string, error)
}

// Listen starts accepting on addr ("127.0.0.1:0" for tests) and returns the
// bound address. Serving happens on background goroutines until Close or
// Shutdown.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	if s.adm == nil {
		s.adm = newAdmitter(s.Admission, s.Metrics)
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// Close force-closes the listener and every open connection, then waits for
// the serving goroutines. For a shutdown that lets in-flight requests
// finish, use Shutdown.
func (s *Server) Close() error {
	err := s.beginShutdown(true)
	s.wg.Wait()
	return err
}

// Shutdown stops accepting, lets every in-flight request complete (closing
// each connection once its current request is answered), and returns. If
// ctx expires first, remaining connections are force-closed and ctx's error
// is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.beginShutdown(false)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.closeConns()
		<-done
		if err == nil {
			err = ctx.Err()
		}
		return err
	}
}

// beginShutdown closes the listener, marks the server draining and (when
// force is set) closes every open connection.
func (s *Server) beginShutdown(force bool) error {
	s.mu.Lock()
	l := s.listener
	s.listener = nil
	s.draining = true
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	if force {
		s.closeConns()
	} else {
		// Expire pending reads so idle connections notice the drain;
		// connections mid-request still complete their response write.
		s.mu.Lock()
		for c := range s.conns {
			_ = c.SetReadDeadline(time.Unix(1, 0))
		}
		s.mu.Unlock()
	}
	return err
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
}

// track registers conn; it reports false when the server is already
// draining and the connection should be refused.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// armIdle sets the idle read deadline for the next request, unless the
// server is draining. Holding s.mu serializes this against beginShutdown's
// deadline poisoning: either the drain is visible here (return false), or
// the freshly armed deadline is poisoned after us.
func (s *Server) armIdle(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	if s.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
	}
	return true
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.Metrics.connOpened()
			defer s.Metrics.connClosed()
			s.serveConn(conn)
		}()
	}
}

// idleReader re-arms the connection's idle deadline on every received
// chunk, so IdleTimeout measures stalls rather than total request size.
// While draining, armIdle declines to re-arm and the poisoned deadline
// ends the read.
type idleReader struct {
	s    *Server
	conn net.Conn
}

func (r *idleReader) Read(p []byte) (int, error) {
	n, err := r.conn.Read(p)
	if n > 0 {
		r.s.armIdle(r.conn)
	}
	return n, err
}

// maxInFlight resolves the per-connection pipelining bound.
func (s *Server) maxInFlight() int {
	if s.MaxInFlight > 0 {
		return s.MaxInFlight
	}
	return defaultMaxInFlight
}

// maxVersion resolves the newest protocol version the server offers.
func (s *Server) maxVersion() int {
	if s.MaxVersion >= protoV1 && s.MaxVersion < maxProtoVersion {
		return s.MaxVersion
	}
	return maxProtoVersion
}

// serveConn handles one client until EOF, goodbye, timeout or drain. A
// client whose first frame is a hello negotiates the protocol version;
// on v2 the connection switches to the multiplexed loop. A draining
// server answers the requests in flight, then hangs up.
func (s *Server) serveConn(conn net.Conn) {
	// The read side is buffered over the idle-rearming reader: pipelined
	// v2 clients deliver bursts of frames per syscall, and the idle
	// deadline still re-arms on every chunk the kernel delivers.
	in := bufio.NewReaderSize(&idleReader{s: s, conn: conn}, muxBufSize)
	if !s.armIdle(conn) {
		return
	}
	req, err := readFrame(in)
	if err != nil || req.op == opGoodbye {
		return
	}
	if req.op == opHello {
		version := s.maxVersion()
		if len(req.parts) != 1 || len(req.parts[0]) != 1 {
			s.writeV1(conn, opErr, []byte("hello: want [maxVersion]"))
			return
		}
		if clientMax := int(req.parts[0][0]); clientMax < version {
			version = clientMax
		}
		if version < protoV1 {
			s.writeV1(conn, opErr, []byte("hello: no common protocol version"))
			return
		}
		ad := make([]byte, 2)
		binary.BigEndian.PutUint16(ad, uint16(s.maxInFlight()))
		helloParts := [][]byte{{byte(version)}, ad}
		if version >= protoV4 {
			// The codec capability part: pre-v4 clients tolerate extra
			// hello parts, so it is only meaningful — and only sent —
			// when v4 was negotiated.
			frameCodec := codec.FrameCodecNone
			if s.Compression {
				frameCodec = codec.FrameCodecFlate
			}
			helloParts = append(helloParts, []byte{frameCodec})
		}
		if err := s.writeV1(conn, opOK, helloParts...); err != nil {
			return
		}
		if version >= protoV2 {
			s.serveConnV2(conn, in, version)
			return
		}
		s.serveConnV1(conn, in, nil)
		return
	}
	s.serveConnV1(conn, in, &req)
}

// writeV1 sends one v1 frame with the configured write deadline.
func (s *Server) writeV1(conn net.Conn, op byte, parts ...[]byte) error {
	if s.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
	}
	return writeFrame(conn, op, parts...)
}

// serveConnV1 is the legacy strict request/response loop; first, when
// non-nil, is a request already read off the connection.
func (s *Server) serveConnV1(conn net.Conn, in *bufio.Reader, first *frame) {
	for {
		var req frame
		if first != nil {
			req, first = *first, nil
		} else {
			if !s.armIdle(conn) {
				return
			}
			var err error
			req, err = readFrame(in)
			if err != nil {
				return
			}
			if req.op == opGoodbye {
				return
			}
		}
		resp, parts := s.admitAndHandle(req)
		if err := s.writeV1(conn, resp, parts...); err != nil {
			return
		}
	}
}

// admitAndHandle runs one request through server-wide admission control
// and the dispatcher, recording request count, in-flight gauge and
// admitted latency. Shed requests answer opErrBusy without executing.
func (s *Server) admitAndHandle(req frame) (byte, [][]byte) {
	s.Metrics.countRequest(req.op)
	start := time.Now()
	release, shed := s.adm.acquire()
	if shed != "" {
		return opErrBusy, [][]byte{busyText(shed)}
	}
	defer release()
	s.Metrics.inflightAdd(1)
	defer s.Metrics.inflightAdd(-1)
	if s.ServiceDelay > 0 {
		time.Sleep(s.ServiceDelay)
	}
	resp, parts := s.handle(req)
	s.Metrics.observe(req.op, start)
	return resp, parts
}

// v2conn is one multiplexed connection's shared state: the response
// channel its writer drains, the done channel that stops long-lived
// subscription pumps when the read loop exits, the WaitGroup covering
// handlers and pumps alike, and the per-connection subscription table
// (request ID → subscriber) that opUnsubscribe resolves against.
type v2conn struct {
	s       *Server
	version int
	respCh  chan frameV2
	done    chan struct{}
	wg      sync.WaitGroup

	mu   sync.Mutex
	subs map[uint32]*subscriber
}

// addSub records a live subscription under its opSubscribe request ID.
func (cc *v2conn) addSub(id uint32, sub *subscriber) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.subs == nil {
		cc.subs = make(map[uint32]*subscriber)
	}
	cc.subs[id] = sub
}

// takeSub resolves and forgets a subscription by request ID.
func (cc *v2conn) takeSub(id uint32) *subscriber {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	sub := cc.subs[id]
	delete(cc.subs, id)
	return sub
}

// dropSub forgets a subscription (the pump is exiting on its own).
func (cc *v2conn) dropSub(id uint32) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	delete(cc.subs, id)
}

// serveConnV2 is the multiplexed loop: the connection goroutine reads
// request frames and dispatches each to its own handler goroutine,
// bounded by the per-connection in-flight limit — requests past the
// bound are rejected immediately with opErrBusy. A writer goroutine
// serializes response frames (coalescing bursts through a buffered
// writer, bounding each write with the write timeout), so responses
// complete out of order and a large streamed block interleaves with
// other responses instead of blocking them. On drain the reader stops,
// subscription pumps are told to wind down, in-flight handlers finish,
// and their responses are flushed before the connection closes.
func (s *Server) serveConnV2(conn net.Conn, in *bufio.Reader, version int) {
	maxIF := s.maxInFlight()
	respCh := make(chan frameV2, maxIF+2)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		sender := newFrameSender(conn)
		// Response compression is a v4 negotiation outcome; the codec
		// seam itself decides per frame (size floor, incompressible
		// bypass).
		sender.compress = s.Compression && version >= protoV4
		sender.onCompress = s.Metrics.frameCompressed
		failed := false
		flush := func() {
			if failed {
				return
			}
			if s.WriteTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
			}
			if err := sender.flush(); err != nil {
				// The connection is gone (or the client too slow): keep
				// draining respCh so handlers never block, and kill the
				// read side so the connection goroutine unwinds.
				failed = true
				_ = conn.Close()
			}
		}
		for {
			var f frameV2
			var ok bool
			select {
			case f, ok = <-respCh:
			default:
				// Give handlers one scheduling slot to emit more
				// responses before paying the flush syscall.
				runtime.Gosched()
				select {
				case f, ok = <-respCh:
				default:
					flush()
					f, ok = <-respCh
				}
			}
			if !ok {
				flush()
				return
			}
			if failed {
				if f.done != nil {
					f.done()
				}
				continue
			}
			if s.WriteTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
			}
			_, err := sender.send(f.op, f.id, f.parts)
			if f.done != nil {
				// The frame is in the write buffer (or the buffer's own
				// flush blocked until the socket drained): release the
				// admission slot only now, so clients that cannot absorb
				// responses keep the server's capacity visibly occupied.
				f.done()
			}
			if err != nil {
				failed = true
				_ = conn.Close()
			}
		}
	}()

	cc := &v2conn{s: s, version: version, respCh: respCh, done: make(chan struct{})}
	sem := make(chan struct{}, maxIF)
	for s.armIdle(conn) {
		req, err := readFrameV2(in)
		if err != nil {
			break
		}
		if req.op == opGoodbye {
			break
		}
		if !admit(sem) {
			s.Metrics.countRequest(req.op)
			s.Metrics.shed(shedConnInflight)
			respCh <- frameV2{op: opErrBusy, id: req.id,
				parts: [][]byte{[]byte(fmt.Sprintf("busy: %d requests in flight", maxIF))}}
			continue
		}
		cc.wg.Add(1)
		go func(req frameV2) {
			defer cc.wg.Done()
			defer func() { <-sem }()
			s.handleV2(cc, req)
		}(req)
	}
	// Stop subscription pumps first: they run for the subscription's
	// lifetime, not a request's, and would otherwise hold the WaitGroup
	// open forever. The writer keeps draining respCh until it closes, so
	// a pump blocked mid-send always completes.
	close(cc.done)
	cc.wg.Wait()
	close(respCh)
	<-writerDone
}

// admit claims one in-flight slot without blocking the read loop. When
// the pool looks full it yields once and retries: a handler that has
// already enqueued its response but was preempted before releasing its
// slot gets the scheduling slot it needs, so a client pipelining right
// at the advertised bound is not spuriously rejected by that tiny
// window. A genuinely saturated connection still rejects immediately
// after the one yield.
func admit(sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	default:
	}
	runtime.Gosched()
	select {
	case sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// handleV2 executes one multiplexed request — first through server-wide
// admission control, then the dispatcher — emitting its response frame(s)
// (several for a streamed block) in order onto respCh. Admission waiting
// happens here, on the handler goroutine, so a saturated server never
// stalls the connection's read loop: later frames still reach their own
// handlers (or their own fast busy rejections).
func (s *Server) handleV2(cc *v2conn, req frameV2) {
	respCh := cc.respCh
	s.Metrics.countRequest(req.op)
	start := time.Now()
	release, shed := s.adm.acquire()
	if shed != "" {
		respCh <- frameV2{op: opErrBusy, id: req.id, parts: [][]byte{busyText(shed)}}
		return
	}
	s.Metrics.inflightAdd(1)
	defer s.Metrics.inflightAdd(-1)
	defer s.Metrics.observe(req.op, start)
	if s.testOpDelay != nil {
		s.testOpDelay(req.op)
	}
	if s.ServiceDelay > 0 {
		time.Sleep(s.ServiceDelay)
	}
	switch req.op {
	case opGetBlkStream:
		// The stream handler blocks on respCh while it emits chunks, so
		// the slot already covers the write side; release on return.
		defer release()
		s.handleStream(req, respCh)
		return
	case opSubscribe:
		// The subscription pump inherits the slot: it releases with the
		// snapshot frame's write, then runs slot-free for the
		// subscription's lifetime.
		s.handleSubscribe(cc, req, release)
		return
	case opUnsubscribe:
		s.handleUnsubscribe(cc, req, release)
		return
	}
	op, parts := s.handle(frame{op: req.op, parts: req.parts})
	// The slot travels with the response frame and is released by the
	// writer once the frame is actually written: a request occupies
	// admission capacity for its whole lifetime, not just its compute,
	// so overload driven by response backpressure still sheds.
	respCh <- frameV2{op: op, id: req.id, parts: parts, done: release}
}

// handleSubscribe answers opSubscribe: it registers a watcher on the
// document (whose queue the registry seeds with the current snapshot,
// atomically with the registration) and starts the pump goroutine that
// drains the queue onto the connection for the subscription's lifetime.
// The admission slot rides the first pushed frame, exactly like a plain
// response.
func (s *Server) handleSubscribe(cc *v2conn, req frameV2, release func()) {
	respCh := cc.respCh
	if cc.version < protoV3 {
		respCh <- frameV2{op: opErr, id: req.id,
			parts: [][]byte{[]byte("subscribe: requires protocol v3")}, done: release}
		return
	}
	if len(req.parts) != 1 && len(req.parts) != 2 {
		respCh <- frameV2{op: opErr, id: req.id,
			parts: [][]byte{[]byte("subscribe: want [name] or [name, subtree]")}, done: release}
		return
	}
	name := string(req.parts[0])
	subtree := ""
	if len(req.parts) == 2 {
		subtree = string(req.parts[1])
	}
	sub, err := s.subscribeDoc(name, subtree)
	switch {
	case errors.Is(err, errUnknownDoc):
		respCh <- frameV2{op: opErrNotFound, id: req.id,
			parts: [][]byte{[]byte(err.Error())}, done: release}
		return
	case errors.Is(err, errSubsFull):
		s.Metrics.shed(shedSubsFull)
		respCh <- frameV2{op: opErrBusy, id: req.id,
			parts: [][]byte{busyText(shedSubsFull)}, done: release}
		return
	case err != nil:
		respCh <- frameV2{op: opErr, id: req.id,
			parts: [][]byte{[]byte(err.Error())}, done: release}
		return
	}
	cc.addSub(req.id, sub)
	s.Metrics.subscriberAdd(1)
	cc.wg.Add(1)
	go s.pumpSub(cc, req.id, sub, release)
}

// pumpSub forwards one subscriber's events onto the connection until the
// subscription ends (unsubscribe, shed, registry replacement failure) or
// the connection winds down. It owns the subscriber's registry
// registration and the active-subscriber gauge: whatever the exit path,
// both are released — the leak test pins this.
func (s *Server) pumpSub(cc *v2conn, id uint32, sub *subscriber, release func()) {
	defer cc.wg.Done()
	defer s.Metrics.subscriberAdd(-1)
	defer s.reg.unsubscribe(sub)
	defer cc.dropSub(id)
	send := func(f frameV2) bool {
		select {
		case cc.respCh <- f:
			return true
		case <-cc.done:
			if f.done != nil {
				f.done()
			}
			return false
		}
	}
	for {
		select {
		case ev := <-sub.q:
			f := frameV2{op: opChange, id: id, parts: ev.parts(), done: release}
			release = nil
			if ev.kind == changeDelta {
				s.Metrics.deltaPushed(time.Since(ev.at))
			}
			if !send(f) {
				return
			}
		case <-sub.stop:
			if sub.reason == shedSubSlow {
				s.Metrics.shed(shedSubSlow)
			}
			send(frameV2{op: opChange, id: id, parts: endParts(sub.reason), done: release})
			return
		case <-cc.done:
			if release != nil {
				release()
			}
			return
		}
	}
}

// handleUnsubscribe answers opUnsubscribe: it ends the named
// subscription — the pump emits the terminal changeEnd frame — and
// acknowledges. Unsubscribing an unknown or already-ended subscription
// is not an error: the shed path races client-requested ends by design.
func (s *Server) handleUnsubscribe(cc *v2conn, req frameV2, release func()) {
	if len(req.parts) != 1 || len(req.parts[0]) != 4 {
		cc.respCh <- frameV2{op: opErr, id: req.id,
			parts: [][]byte{[]byte("unsubscribe: want [subID(u32)]")}, done: release}
		return
	}
	subID := binary.BigEndian.Uint32(req.parts[0])
	if sub := cc.takeSub(subID); sub != nil {
		sub.end(endReasonUnsubscribed)
	}
	cc.respCh <- frameV2{op: opOK, id: req.id, done: release}
}

// handleStream answers opGetBlkStream: a header frame, the payload cut
// into sequenced chunks, and an end frame carrying the chunk count.
func (s *Server) handleStream(req frameV2, respCh chan<- frameV2) {
	reply := func(op byte, parts ...[]byte) {
		respCh <- frameV2{op: op, id: req.id, parts: parts}
	}
	if len(req.parts) != 1 {
		reply(opErr, []byte("getblkstream: want [name]"))
		return
	}
	name := string(req.parts[0])
	blk, ok := s.lookupBlock(name)
	if !ok {
		reply(opErrNotFound, []byte(fmt.Sprintf("getblkstream: no block %q", name)))
		return
	}
	if int64(len(blk.Payload)) > maxStreamBytes {
		reply(opErr, []byte(fmt.Sprintf("getblkstream: block of %d bytes exceeds the stream limit", len(blk.Payload))))
		return
	}
	descText, err := s.descriptorText(blk)
	if err != nil {
		reply(opErr, []byte(fmt.Sprintf("getblkstream: descriptor: %v", err)))
		return
	}
	size := make([]byte, 8)
	binary.BigEndian.PutUint64(size, uint64(len(blk.Payload)))
	reply(opStreamHdr, []byte(blk.Name), []byte(blk.Medium.String()), []byte(descText), size)
	var seq uint32
	for off := 0; off < len(blk.Payload); off += streamChunkSize {
		end := off + streamChunkSize
		if end > len(blk.Payload) {
			end = len(blk.Payload)
		}
		seqBuf := make([]byte, 4)
		binary.BigEndian.PutUint32(seqBuf, seq)
		reply(opStreamChunk, seqBuf, blk.Payload[off:end])
		seq++
	}
	count := make([]byte, 4)
	binary.BigEndian.PutUint32(count, seq)
	reply(opStreamEnd, count)
}

// handle executes one request, returning the response op and parts.
func (s *Server) handle(req frame) (byte, [][]byte) {
	fail := func(format string, args ...interface{}) (byte, [][]byte) {
		return opErr, [][]byte{[]byte(fmt.Sprintf(format, args...))}
	}
	notFound := func(format string, args ...interface{}) (byte, [][]byte) {
		return opErrNotFound, [][]byte{[]byte(fmt.Sprintf(format, args...))}
	}
	switch req.op {
	case opGetDoc:
		if len(req.parts) != 3 || len(req.parts[1]) != 1 || len(req.parts[2]) != 1 {
			return fail("getdoc: want [name, encoding, inline]")
		}
		name := string(req.parts[0])
		doc, ok := s.reg.GetDoc(name)
		if !ok && s.Loader != nil && s.Loader.LoadDoc(name) {
			doc, ok = s.reg.GetDoc(name)
		}
		if !ok && s.Cluster != nil {
			doc, ok = s.Cluster.MissingDoc(name)
		}
		if !ok {
			return notFound("getdoc: no document %q", name)
		}
		if req.parts[2][0] == 1 {
			inlined, err := Inline(doc, s.reg.Store, false)
			if err != nil {
				return fail("getdoc: inline: %v", err)
			}
			doc = inlined
		}
		data, err := encodeDoc(doc, Encoding(req.parts[1][0]))
		if err != nil {
			return fail("getdoc: %v", err)
		}
		return opOK, [][]byte{data}
	case opPutDoc:
		if len(req.parts) != 3 || len(req.parts[1]) != 1 {
			return fail("putdoc: want [name, encoding, document]")
		}
		doc, err := decodeDoc(req.parts[2], Encoding(req.parts[1][0]))
		if err != nil {
			return fail("putdoc: %v", err)
		}
		if s.Loader != nil {
			// A proxy never registers documents itself: the origin is the
			// single writer, and its accepted registration streams back
			// down through the proxy's upstream subscription.
			if err := s.Loader.ForwardPutDoc(string(req.parts[0]), doc); err != nil {
				return fail("putdoc: upstream: %v", err)
			}
			return opOK, nil
		}
		if s.Cluster != nil {
			// The cluster handler extracts inlined payloads itself (each
			// block routes to its own replica set, not this node's store).
			if err := s.Cluster.PutDoc(string(req.parts[0]), doc); err != nil {
				return fail("putdoc: %v", err)
			}
			return opOK, nil
		}
		// Absorb any inlined payloads into the local store.
		extracted, err := Extract(doc, s.reg.Store)
		if err != nil {
			return fail("putdoc: extract: %v", err)
		}
		s.reg.PutDoc(string(req.parts[0]), extracted)
		if err := s.durabilityErr(); err != nil {
			return fail("putdoc: durability: %v", err)
		}
		return opOK, nil
	case opSubmitEdit:
		if len(req.parts) != 2 {
			return fail("submitedit: want [name, records]")
		}
		recs, err := core.DecodeChangeRecords(req.parts[1])
		if err != nil {
			return fail("submitedit: %v", err)
		}
		name := string(req.parts[0])
		if s.Loader != nil {
			gen, err := s.Loader.ForwardEdit(name, recs)
			switch {
			case errors.Is(err, ErrNotFound):
				return notFound("submitedit: no document %q", name)
			case err != nil:
				// A conflict's "conflict:" text survives the relay, so
				// downstream clients still classify it as ErrConflict.
				return fail("submitedit: %v", err)
			}
			return opOK, [][]byte{u64be(gen)}
		}
		if s.Cluster != nil {
			gen, err := s.Cluster.SubmitEdit(name, recs)
			switch {
			case errors.Is(err, ErrNotFound):
				return notFound("submitedit: no document %q", name)
			case err != nil:
				// A conflict's "conflict:" text survives the relay, so
				// clients still classify it as ErrConflict.
				return fail("submitedit: %v", err)
			}
			return opOK, [][]byte{u64be(gen)}
		}
		gen, err := s.reg.EditDoc(name, recs)
		if errors.Is(err, errUnknownDoc) {
			return notFound("submitedit: no document %q", name)
		}
		if err != nil {
			// Typically a conflict: an earlier writer's edit won the
			// registry lock and this batch's pre-edit paths no longer
			// resolve. Nothing was applied; the submitter refetches.
			return fail("submitedit: %v", err)
		}
		if err := s.durabilityErr(); err != nil {
			return fail("submitedit: durability: %v", err)
		}
		return opOK, [][]byte{u64be(gen)}
	case opGetBlk:
		if len(req.parts) != 1 {
			return fail("getblk: want [name]")
		}
		name := string(req.parts[0])
		blk, ok := s.lookupBlock(name)
		if !ok {
			return notFound("getblk: no block %q", name)
		}
		// A payload past the frame limit cannot travel as one response.
		// Answer opErrTooLarge instead of dying on the write: v2 clients
		// retry with the chunked stream, v1 clients get a clean remote
		// error (before this guard the write failure killed the
		// connection).
		if len(blk.Payload) > maxFrameSize-(1<<16) {
			return opErrTooLarge, [][]byte{[]byte(fmt.Sprintf(
				"getblk: block of %d bytes exceeds the frame limit; use the chunked stream", len(blk.Payload)))}
		}
		descText, err := s.descriptorText(blk)
		if err != nil {
			return fail("getblk: descriptor: %v", err)
		}
		return opOK, [][]byte{
			[]byte(blk.Name),
			[]byte(blk.Medium.String()),
			[]byte(descText),
			blk.Payload,
		}
	case opGetBlks:
		if len(req.parts) == 0 {
			return fail("getblks: want at least one name")
		}
		parts := make([][]byte, len(req.parts))
		inlined := 0
		for i, p := range req.parts {
			blk, ok := s.lookupBlock(string(p))
			if !ok {
				parts[i] = []byte{entryMissing}
				continue
			}
			// Defer blocks that would push the response past the frame
			// limit; the client re-fetches them one at a time.
			if inlined+len(blk.Payload) > batchBudget {
				parts[i] = []byte{entryDeferred}
				continue
			}
			descText, err := s.descriptorText(blk)
			if err != nil {
				return fail("getblks: descriptor: %v", err)
			}
			parts[i] = encodeEntry(
				[]byte(blk.Name),
				[]byte(blk.Medium.String()),
				[]byte(descText),
				blk.Payload,
			)
			inlined += len(blk.Payload)
		}
		return opOK, parts
	case opGetBlkManifest:
		if len(req.parts) != 1 {
			return fail("getblkmanifest: want [name]")
		}
		name := string(req.parts[0])
		blk, ok := s.lookupBlock(name)
		if !ok {
			return notFound("getblkmanifest: no block %q", name)
		}
		descText, err := s.descriptorText(blk)
		if err != nil {
			return fail("getblkmanifest: descriptor: %v", err)
		}
		// An empty manifest (block below the chunk threshold, or served
		// through a loader/cluster miss with no local index) tells the
		// client to fall back to a plain fetch.
		var manifest []byte
		if hashes, ok := s.reg.Store.Manifest(blk.ID); ok {
			manifest = make([]byte, 0, len(hashes)*(chunker.HashSize+4))
			for _, h := range hashes {
				chunk, ok := s.reg.Store.GetChunk(h)
				if !ok {
					// Index shifting under a concurrent delete; punt to
					// the plain path rather than serve a torn manifest.
					manifest = nil
					break
				}
				manifest = append(manifest, h[:]...)
				manifest = binary.BigEndian.AppendUint32(manifest, uint32(len(chunk)))
			}
		}
		return opOK, [][]byte{
			[]byte(blk.Name),
			[]byte(blk.Medium.String()),
			[]byte(descText),
			[]byte(blk.ID),
			u64be(uint64(len(blk.Payload))),
			manifest,
		}
	case opGetChunks:
		if len(req.parts) == 0 {
			return fail("getchunks: want at least one hash")
		}
		parts := make([][]byte, len(req.parts))
		for i, p := range req.parts {
			if len(p) != chunker.HashSize {
				return fail("getchunks: hash %d has %d bytes, want %d", i, len(p), chunker.HashSize)
			}
			var h media.ChunkHash
			copy(h[:], p)
			if data, ok := s.reg.Store.GetChunk(h); ok {
				parts[i] = encodeEntry(data)
			} else {
				parts[i] = []byte{entryMissing}
			}
		}
		return opOK, parts
	case opGetDescs:
		if len(req.parts) == 0 {
			return fail("getdescs: want at least one name")
		}
		parts := make([][]byte, len(req.parts))
		for i, p := range req.parts {
			blk, ok := s.lookupBlock(string(p))
			if !ok {
				parts[i] = []byte{entryMissing}
				continue
			}
			descText, err := s.descriptorText(blk)
			if err != nil {
				return fail("getdescs: descriptor: %v", err)
			}
			parts[i] = encodeEntry([]byte(blk.Name), []byte(descText))
		}
		return opOK, parts
	case opPutBlk:
		if len(req.parts) != 4 {
			return fail("putblk: want [name, medium, descriptor, payload]")
		}
		blk, err := blockFromParts(req.parts)
		if err != nil {
			return fail("putblk: %v", err)
		}
		if s.Loader != nil {
			id, err := s.Loader.ForwardPutBlock(blk)
			if err != nil {
				return fail("putblk: upstream: %v", err)
			}
			return opOK, [][]byte{[]byte(id)}
		}
		if s.Cluster != nil {
			id, err := s.Cluster.PutBlock(blk)
			if err != nil {
				return fail("putblk: %v", err)
			}
			return opOK, [][]byte{[]byte(id)}
		}
		s.reg.Store.Put(blk)
		if err := s.durabilityErr(); err != nil {
			return fail("putblk: durability: %v", err)
		}
		return opOK, [][]byte{[]byte(blk.ID)}
	case opList:
		// listScopeLocal restricts the answer to locally held documents;
		// cluster nodes use it when merging peers' listings, so the
		// fan-out cannot recurse.
		localOnly := len(req.parts) == 1 && string(req.parts[0]) == string(listScopeLocal)
		if s.Loader != nil && !localOnly {
			if names, err := s.Loader.ListDocs(); err == nil {
				parts := make([][]byte, len(names))
				for i, n := range names {
					parts[i] = []byte(n)
				}
				return opOK, parts
			}
			// Upstream unreachable: fall back to what is cached locally.
		}
		if s.Cluster != nil && !localOnly {
			if names, err := s.Cluster.DocNames(); err == nil {
				parts := make([][]byte, len(names))
				for i, n := range names {
					parts[i] = []byte(n)
				}
				return opOK, parts
			}
			// Peers unreachable: fall back to the local listing.
		}
		names := s.reg.DocNames()
		parts := make([][]byte, len(names))
		for i, n := range names {
			parts[i] = []byte(n)
		}
		return opOK, parts
	case opGossip:
		if s.Cluster == nil {
			return fail("gossip: not a cluster node")
		}
		if len(req.parts) > 1 {
			return fail("gossip: want [view]")
		}
		var view []byte
		if len(req.parts) == 1 {
			view = req.parts[0]
		}
		local, err := s.Cluster.Gossip(view)
		if err != nil {
			return fail("gossip: %v", err)
		}
		return opOK, [][]byte{local}
	case opReplicate:
		if s.Cluster == nil {
			return fail("replicate: not a cluster node")
		}
		if len(req.parts) != 1 {
			return fail("replicate: want [frames]")
		}
		if err := s.Cluster.Replicate(req.parts[0]); err != nil {
			return fail("replicate: %v", err)
		}
		return opOK, nil
	case opResync:
		if s.Cluster == nil {
			return fail("resync: not a cluster node")
		}
		if len(req.parts) != 1 {
			return fail("resync: want [cursor]")
		}
		frames, next, err := s.Cluster.Resync(string(req.parts[0]))
		if err != nil {
			return fail("resync: %v", err)
		}
		return opOK, [][]byte{frames, []byte(next)}
	default:
		return fail("unknown op %d", req.op)
	}
}

// durabilityErr reports a failed durability layer. A write that reached
// memory but not the log must not be acknowledged: the client would treat
// it as durable, and a restart would disprove that.
func (s *Server) durabilityErr() error {
	if s.reg.DurabilityErr == nil {
		return nil
	}
	return s.reg.DurabilityErr()
}

// lookupBlock resolves a block by registered name first, then by content
// address — the resolution order every block-fetch op shares. A miss
// consults the Loader when one is attached (the edge read-through path).
// Local hits return the store's own immutable block without cloning
// (media.Store.GetRef): response parts reference the stored — possibly
// mmap-backed — payload directly, and the vectored writer moves it
// store → conn with no intermediate copy. Handlers only read the
// returned block.
func (s *Server) lookupBlock(name string) (*media.Block, bool) {
	if blk, ok := s.reg.Store.GetByNameRef(name); ok {
		return blk, true
	}
	if blk, ok := s.reg.Store.GetRef(name); ok {
		return blk, true
	}
	if s.Loader != nil {
		return s.Loader.LoadBlock(name)
	}
	if s.Cluster != nil {
		return s.Cluster.MissingBlock(name)
	}
	return nil, false
}

// subscribeDoc registers a watcher on the document under name,
// materializing it through the Loader first when the registry misses —
// an edge's downstream subscribers lease documents into the edge on
// demand.
func (s *Server) subscribeDoc(name, subtree string) (*subscriber, error) {
	sub, err := s.reg.subscribe(name, s.SubQueueCap, s.Admission.MaxSubscribers, subtree)
	if errors.Is(err, errUnknownDoc) && s.Loader != nil && s.Loader.LoadDoc(name) {
		sub, err = s.reg.subscribe(name, s.SubQueueCap, s.Admission.MaxSubscribers, subtree)
	}
	return sub, err
}

// descriptorText returns the block's wire-encoded descriptor, memoized
// by content address.
func (s *Server) descriptorText(blk *media.Block) (string, error) {
	if text, ok := s.descCache.Load(blk.ID); ok {
		s.Metrics.descCacheLookup(true)
		return text.(string), nil
	}
	s.Metrics.descCacheLookup(false)
	text, err := codec.EncodeNode(descriptorNode(blk), codec.WriteOptions{Form: codec.Embedded})
	if err != nil {
		return "", err
	}
	s.descCache.Store(blk.ID, text)
	return text, nil
}

func encodeDoc(d *core.Document, enc Encoding) ([]byte, error) {
	switch enc {
	case EncodingText:
		s, err := codec.Encode(d, codec.WriteOptions{Form: codec.Conventional})
		return []byte(s), err
	case EncodingBinary:
		return codec.EncodeBinary(d)
	default:
		return nil, fmt.Errorf("unknown encoding %q", byte(enc))
	}
}

func decodeDoc(data []byte, enc Encoding) (*core.Document, error) {
	switch enc {
	case EncodingText:
		return codec.Parse(string(data))
	case EncodingBinary:
		return codec.DecodeBinary(data)
	default:
		return nil, fmt.Errorf("unknown encoding %q", byte(enc))
	}
}

// descriptorNode wraps a block descriptor as a CMIF fragment for the wire.
func descriptorNode(b *media.Block) *core.Node {
	n := core.NewExt()
	for _, p := range b.Descriptor.Pairs() {
		n.Attrs.Set(p.Name, p.Value)
	}
	return n
}

// blockFromParts rebuilds a block from putblk/getblk wire parts.
func blockFromParts(parts [][]byte) (*media.Block, error) {
	medium, err := core.ParseMedium(string(parts[1]))
	if err != nil {
		return nil, err
	}
	descNode, err := codec.ParseNode(string(parts[2]))
	if err != nil {
		return nil, fmt.Errorf("descriptor: %w", err)
	}
	payload := append([]byte(nil), parts[3]...)
	return media.NewBlock(string(parts[0]), medium, payload, descNode.Attrs), nil
}

// ErrRemote wraps a server-reported error.
var ErrRemote = errors.New("transport: remote error")
