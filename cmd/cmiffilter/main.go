// Command cmiffilter runs the Constraint Filtering stage: it evaluates a
// CMIF document against a device profile and prints the per-leaf verdicts
// and the supportability decision ("a structured basis upon which a given
// system can determine whether it can support the requested document").
//
// Usage:
//
//	cmiffilter [-profile workstation|laptop|terminal] -news N
//
// The built-in news corpus is used because filtering needs data
// descriptors; for external documents, pair this tool with a block store
// served by cmifd.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmif"
)

func main() {
	profileName := flag.String("profile", "workstation", "device profile: workstation, laptop or terminal")
	news := flag.Int("news", 2, "evening news story count")
	flag.Parse()

	profile, err := cmif.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	doc, store, err := cmif.BuildNews(cmif.NewsConfig{Stories: *news})
	if err != nil {
		fatal(err)
	}
	fm, err := cmif.EvaluateProfile(doc, store, profile)
	if err != nil {
		fatal(err)
	}
	fmt.Print(fm)
	if !fm.Supportable() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmiffilter:", err)
	os.Exit(1)
}
