// Command cmifget fetches documents and blocks from a cmifd server.
//
// Usage:
//
//	cmifget [-addr 127.0.0.1:7911] [-timeout 10s] list
//	cmifget [-addr ...] doc <name> [-inline] [-binary]
//	cmifget [-addr ...] block <name>
//
// Every request is bounded by -timeout; a missing document or block is
// reported distinctly from other failures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmif"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7911", "server address")
	inline := flag.Bool("inline", false, "fetch documents with inlined payloads")
	binaryEnc := flag.Bool("binary", false, "use the binary wire encoding")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	c, err := cmif.Dial(ctx, *addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch flag.Arg(0) {
	case "list":
		names, err := c.List(ctx)
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "doc":
		if flag.NArg() != 2 {
			usage()
		}
		var opts []cmif.WireOption
		if *binaryEnc {
			opts = append(opts, cmif.WithBinaryWire())
		}
		if *inline {
			opts = append(opts, cmif.WithInline())
		}
		doc, err := c.Document(ctx, flag.Arg(1), opts...)
		if err != nil {
			fatal(err)
		}
		if err := cmif.EncodeTo(os.Stdout, doc); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cmifget: %d wire bytes received\n", c.BytesReceived())
	case "block":
		if flag.NArg() != 2 {
			usage()
		}
		b, err := c.Block(ctx, flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cmifget: %s (%s, %d bytes)\n", b.Name, b.Medium, len(b.Payload))
		os.Stdout.Write(b.Payload)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cmifget [-addr a] [-timeout d] [-inline] [-binary] (list | doc <name> | block <name>)")
	os.Exit(2)
}

func fatal(err error) {
	if errors.Is(err, cmif.ErrNotFound) {
		fmt.Fprintln(os.Stderr, "cmifget: not found:", err)
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, "cmifget:", err)
	os.Exit(1)
}
