package baseline

import (
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/newsdoc"
	"repro/internal/sched"
	"repro/internal/units"
)

func schedule(t *testing.T, stories int) (*core.Document, *sched.Schedule) {
	t.Helper()
	d, _, err := newsdoc.Build(newsdoc.Config{Stories: stories})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sched.Build(d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Solve(sched.SolveOptions{Relax: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestFlattenPreservesTiming(t *testing.T) {
	_, s := schedule(t, 1)
	fd := Flatten(s)
	if fd.Len() == 0 {
		t.Fatal("empty flat document")
	}
	if fd.Makespan() != s.Makespan() {
		t.Errorf("makespan: flat %v vs cmif %v", fd.Makespan(), s.Makespan())
	}
	// Events sorted by start.
	for i := 1; i < fd.Len(); i++ {
		if fd.Events[i-1].Start > fd.Events[i].Start {
			t.Fatal("flat events not sorted")
		}
	}
}

func TestFlatInsertShiftsEverything(t *testing.T) {
	_, s := schedule(t, 2)
	fd := Flatten(s)
	n := fd.Len()
	fd.TouchedEvents = 0
	// Insert near the front: nearly every event is rewritten.
	fd.InsertAt(FlatEvent{Channel: "video", Name: "breaking-news",
		Start: time.Second, Dur: 5 * time.Second})
	if fd.TouchedEvents < n/2 {
		t.Errorf("front insert touched only %d of %d events", fd.TouchedEvents, n)
	}
	if fd.Len() != n+1 {
		t.Errorf("Len = %d", fd.Len())
	}
}

func TestFlatLengthenAndDelete(t *testing.T) {
	_, s := schedule(t, 1)
	fd := Flatten(s)
	target := fd.Events[0].Name
	endBefore := fd.Makespan()
	fd.TouchedEvents = 0
	if err := fd.Lengthen(target, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if fd.Makespan() != endBefore+2*time.Second {
		t.Errorf("makespan after lengthen = %v", fd.Makespan())
	}
	if fd.TouchedEvents < 2 {
		t.Errorf("lengthen touched %d events", fd.TouchedEvents)
	}
	if err := fd.Lengthen("ghost", time.Second); err == nil {
		t.Error("lengthen of missing event succeeded")
	}

	count := fd.Len()
	if err := fd.Delete(target); err != nil {
		t.Fatal(err)
	}
	if fd.Len() != count-1 {
		t.Errorf("Len after delete = %d", fd.Len())
	}
	if err := fd.Delete("ghost"); err == nil {
		t.Error("delete of missing event succeeded")
	}
}

func TestCMIFEditIsLocal(t *testing.T) {
	d, _ := schedule(t, 2)
	leaf := core.NewImm([]byte("breaking")).SetName("breaking").
		SetAttr("style", attr.ID("caption-style")).
		SetAttr("duration", attr.Quantity(units.MS(1000)))
	cost, err := InsertLeafCMIF(d, "caption", leaf)
	if err != nil {
		t.Fatal(err)
	}
	if cost.NodesTouched != 2 {
		t.Errorf("NodesTouched = %d, want 2", cost.NodesTouched)
	}
	// The edited document still schedules.
	g, err := sched.Build(d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Solve(sched.SolveOptions{Relax: true}); err != nil {
		t.Fatal(err)
	}

	if _, err := InsertLeafCMIF(d, "ghost", core.NewImm(nil)); err == nil {
		t.Error("insert under missing node succeeded")
	}
	if _, err := InsertLeafCMIF(d, "breaking", core.NewImm(nil)); err == nil {
		t.Error("insert under leaf succeeded")
	}
}

func TestWireSizePositive(t *testing.T) {
	_, s := schedule(t, 1)
	fd := Flatten(s)
	if fd.WireSize() <= 0 {
		t.Error("non-positive wire size")
	}
}

func TestExpressivenessTable(t *testing.T) {
	rows := ExpressivenessTable()
	if len(rows) < 8 {
		t.Fatalf("table rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.CMIF {
			t.Errorf("CMIF cannot express %q — the reproduction contradicts the paper", r.Pattern)
		}
	}
	// The baselines must each fail at least one pattern (the paper's point).
	flatFails, structFails := 0, 0
	for _, r := range rows {
		if !r.FlatTimeline {
			flatFails++
		}
		if !r.StructureOnly {
			structFails++
		}
	}
	if flatFails == 0 || structFails == 0 {
		t.Error("baselines express everything; comparison is vacuous")
	}
}
