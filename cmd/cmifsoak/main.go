// Command cmifsoak drives the S5 production-soak scenario: it loads a
// generated corpus into a live cmifd, runs a steady mixed workload
// (block reads, batched fetches, queries, edits) for -seconds, floods
// the server with -overload-conns connections to force admission-control
// shedding, scrapes the daemon's /metrics endpoint, and writes the
// combined report to BENCH_soak.json.
//
// Usage:
//
//	cmifsoak [-addr HOST:PORT -metrics-url URL] [-seconds 60]
//	         [-overload-seconds 5] [-workers 4] [-overload-conns 8]
//	         [-seed 1] [-rounds 2] [-out BENCH_soak.json]
//	         [-smoke] [-check BENCH_soak.json]
//
// With no -addr, cmifsoak self-serves: it starts an in-process server
// with admission control (-max-concurrent/-max-queue/-max-wait) and a
// metrics listener on loopback, soaks it, and tears it down. Point
// -addr and -metrics-url at an external cmifd to soak a real deployment
// — start that daemon with -max-concurrent set, or the overload phase
// has nothing to shed and the gate fails.
//
// -smoke shrinks the run to a CI-sized quick pass. -check validates the
// committed reference report (with the tighter committed thresholds)
// and the fresh run (with the looser floor) and exits nonzero on any
// violation, same as cmifbench's gates.
//
// With -cluster SEED[,SEED...] cmifsoak instead runs the cluster churn
// soak (see cluster.go and scripts/cluster_soak.sh): a ClusterClient
// workload of acknowledged writes and verified reads, followed by a
// zero-loss audit that re-fetches every acknowledged write. -seconds,
// -workers, -out and -smoke apply; the S5 flags do not.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cmif"
)

func main() {
	cluster := flag.String("cluster", "", "comma-separated cmifcluster seed addresses: run the churn soak (zero-loss audit) instead of S5")
	addr := flag.String("addr", "", "daemon address to soak (empty = start an in-process server)")
	metricsURL := flag.String("metrics-url", "", "daemon metrics endpoint to scrape (required with -addr)")
	seconds := flag.Int("seconds", 60, "steady-phase duration in seconds")
	overloadSeconds := flag.Int("overload-seconds", 5, "overload-flood duration in seconds")
	workers := flag.Int("workers", 4, "steady-phase worker connections")
	overloadConns := flag.Int("overload-conns", 8, "overload-phase flooding connections")
	seed := flag.Uint64("seed", 1, "corpus generator seed")
	rounds := flag.Int("rounds", 2, "corpus rounds (one document per shape per round)")
	maxConcurrent := flag.Int("max-concurrent", 8, "self-serve: admission bound on concurrently executing requests")
	maxQueue := flag.Int("max-queue", 32, "self-serve: admission queue depth beyond -max-concurrent")
	maxWait := flag.Duration("max-wait", 0, "self-serve: longest a queued request may wait (0 = default 100ms)")
	out := flag.String("out", "BENCH_soak.json", "output report path")
	smoke := flag.Bool("smoke", false, "shrink to a quick CI-sized run")
	check := flag.String("check", "", "validate this committed BENCH_soak.json (and the fresh run) against the soak gate")
	flag.Parse()

	if *cluster != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		secs, outPath, nWorkers := *seconds, *out, *workers
		if *smoke {
			secs = 10
		}
		if outPath == "BENCH_soak.json" {
			outPath = "SOAK_cluster.json"
		}
		if err := runClusterSoak(ctx, *cluster, secs, nWorkers, outPath); err != nil {
			fmt.Fprintln(os.Stderr, "cmifsoak:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*addr, *metricsURL, *seconds, *overloadSeconds, *workers,
		*overloadConns, *seed, *rounds, *maxConcurrent, *maxQueue, *maxWait,
		*out, *smoke, *check); err != nil {
		fmt.Fprintln(os.Stderr, "cmifsoak:", err)
		os.Exit(1)
	}
}

func run(addr, metricsURL string, seconds, overloadSeconds, workers,
	overloadConns int, seed uint64, rounds, maxConcurrent, maxQueue int,
	maxWait time.Duration, out string, smoke bool, check string) error {

	cfg := cmif.SoakBenchConfig{
		Addr:            addr,
		MetricsURL:      metricsURL,
		Seconds:         float64(seconds),
		OverloadSeconds: float64(overloadSeconds),
		Workers:         workers,
		OverloadConns:   overloadConns,
		CorpusSeed:      seed,
		CorpusRounds:    rounds,
	}
	if smoke {
		cfg.Seconds, cfg.OverloadSeconds, cfg.CorpusRounds = 6, 2, 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cfg.Addr == "" {
		teardown, bound, mURL, err := selfServe(ctx, maxConcurrent, maxQueue, maxWait)
		if err != nil {
			return err
		}
		defer teardown()
		cfg.Addr, cfg.MetricsURL = bound, mURL
		fmt.Fprintf(os.Stderr, "cmifsoak: self-serving on %s, metrics at %s\n", bound, mURL)
	} else if cfg.MetricsURL == "" {
		return errors.New("-metrics-url is required with -addr")
	}

	report, err := cmif.RunSoakBench(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Println(report.Table())
	data, err := report.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cmifsoak: wrote %s\n", out)

	var violations []string
	if check != "" {
		committed, err := cmif.LoadSoakBenchReport(check)
		if err != nil {
			return err
		}
		for _, v := range cmif.CheckSoakBenchReport(committed, true) {
			violations = append(violations, "committed: "+v)
		}
	}
	for _, v := range cmif.CheckSoakBenchReport(report, false) {
		violations = append(violations, "fresh: "+v)
	}
	if len(violations) == 0 {
		fmt.Fprintln(os.Stderr, "cmifsoak: soak gate passed")
		return nil
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "cmifsoak: gate:", v)
	}
	return fmt.Errorf("%d soak-gate violations", len(violations))
}

// selfServe starts an in-process admission-controlled server plus a
// loopback metrics listener, and returns a teardown that drains both.
func selfServe(ctx context.Context, maxConcurrent, maxQueue int, maxWait time.Duration) (teardown func(), bound, metricsURL string, err error) {
	s := cmif.NewServer(
		cmif.WithAdmission(cmif.AdmissionConfig{
			MaxConcurrent: maxConcurrent,
			MaxQueue:      maxQueue,
			MaxWait:       maxWait,
		}),
		cmif.WithShutdownGrace(2*time.Second),
	)
	bound, err = s.Listen("127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, "", "", err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, "", "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.Metrics().Handler())
	msrv := &http.Server{Handler: mux}
	go func() {
		if serr := msrv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "cmifsoak: metrics server:", serr)
		}
	}()

	serveCtx, cancel := context.WithCancel(ctx)
	served := make(chan error, 1)
	go func() { served <- s.Serve(serveCtx) }()

	teardown = func() {
		cancel()
		if serr := <-served; serr != nil && !errors.Is(serr, context.Canceled) {
			fmt.Fprintln(os.Stderr, "cmifsoak: server:", serr)
		}
		drainCtx, done := context.WithTimeout(context.Background(), 2*time.Second)
		msrv.Shutdown(drainCtx)
		done()
	}
	return teardown, bound, "http://" + ln.Addr().String() + "/metrics", nil
}
