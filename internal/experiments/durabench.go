package experiments

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/media"
	"repro/internal/transport"
)

// The durability bench measures what the WAL layer costs and what it buys:
// S4 crosses write throughput against the three fsync policies, times
// crash recovery (WAL replay, and snapshot+tail replay after compaction)
// against re-ingesting the same corpus over the wire, and reports write
// amplification — WAL bytes per payload byte. The recovery comparison is
// the durability argument in numbers: replaying the local log is an order
// of magnitude faster than asking clients to re-send the corpus.

// DurableBenchConfig sizes the S4 scenarios. The zero value is usable:
// 2048 blocks of 1 KiB (attribute-cluster-sized payloads, matching the
// wire bench, so per-record overheads dominate rather than memory
// bandwidth) for the write-throughput cross, recovery at 1k and 10k
// blocks.
type DurableBenchConfig struct {
	// WriteBlocks and BlockBytes size the sync-policy write scenario.
	WriteBlocks int `json:"write_blocks"`
	BlockBytes  int `json:"block_bytes"`
	// RecoverBlocks lists the corpus sizes for the recovery scenarios.
	RecoverBlocks []int `json:"recover_blocks"`
}

func (c *DurableBenchConfig) fillDefaults() {
	if c.WriteBlocks <= 0 {
		c.WriteBlocks = 2048
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 1 << 10
	}
	if len(c.RecoverBlocks) == 0 {
		c.RecoverBlocks = []int{1000, 10000}
	}
}

// DurableWriteRow is one (sync policy) write-throughput measurement.
type DurableWriteRow struct {
	Policy       string  `json:"policy"`
	Blocks       int     `json:"blocks"`
	PayloadBytes int64   `json:"payload_bytes"`
	WALBytes     int64   `json:"wal_bytes"`
	Seconds      float64 `json:"seconds"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	// WriteAmplification is WALBytes / PayloadBytes — the framing and
	// descriptor overhead the log pays per payload byte.
	WriteAmplification float64 `json:"write_amplification"`
}

// DurableRecoverRow is one (corpus size) recovery measurement.
type DurableRecoverRow struct {
	Blocks int `json:"blocks"`
	// IngestSeconds is the wire ingest of the corpus into a durable
	// server (sync=never): what "recovery by re-sending" would cost.
	IngestSeconds float64 `json:"ingest_seconds"`
	// WALReplaySeconds recovers the corpus by replaying the raw WAL.
	WALReplaySeconds float64 `json:"wal_replay_seconds"`
	// SnapshotSeconds writes and compacts a snapshot of the corpus.
	SnapshotSeconds float64 `json:"snapshot_seconds"`
	// SnapReplaySeconds recovers from the snapshot plus the (empty) WAL
	// tail.
	SnapReplaySeconds float64 `json:"snap_replay_seconds"`
	// RecoveredBlocks and RecoveredPercent report corpus completeness
	// after the snapshot-path recovery.
	RecoveredBlocks  int     `json:"recovered_blocks"`
	RecoveredPercent float64 `json:"recovered_percent"`
	// Verified says both recoveries matched the live corpus exactly
	// (names, content addresses, payloads) and passed content-address
	// verification.
	Verified bool `json:"verified"`
	// ReplaySpeedup is IngestSeconds / WALReplaySeconds: how much faster
	// the log restores the corpus than the network could.
	ReplaySpeedup float64 `json:"replay_speedup_vs_ingest"`
}

// DurableBenchReport is the machine-readable result set cmifbench writes
// to BENCH_durable.json.
type DurableBenchReport struct {
	Config      DurableBenchConfig  `json:"config"`
	Env         BenchEnv            `json:"env"`
	WriteRows   []DurableWriteRow   `json:"write_rows"`
	RecoverRows []DurableRecoverRow `json:"recover_rows"`
	// ReplaySpeedup is the recovery headline at the largest corpus.
	ReplaySpeedup float64 `json:"replay_speedup"`
	// SpeedupNeverVsAlways is the write-throughput spread between the
	// extreme sync policies.
	SpeedupNeverVsAlways float64 `json:"speedup_never_vs_always"`
}

// JSON renders the report for BENCH_durable.json.
func (r *DurableBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the experiment-table format.
func (r *DurableBenchReport) Table() *Table {
	t := &Table{
		ID:    "S4",
		Title: "durable server state: WAL write cost and recovery speed",
		Header: []string{"scenario", "blocks", "seconds", "blocks/s",
			"WAL MiB", "amplification"},
	}
	for _, row := range r.WriteRows {
		t.Rows = append(t.Rows, []string{
			"write sync=" + row.Policy,
			fmt.Sprintf("%d", row.Blocks),
			fmt.Sprintf("%.3f", row.Seconds),
			fmt.Sprintf("%.0f", row.BlocksPerSec),
			fmt.Sprintf("%.2f", float64(row.WALBytes)/(1<<20)),
			fmt.Sprintf("%.3f", row.WriteAmplification),
		})
	}
	for _, row := range r.RecoverRows {
		t.Rows = append(t.Rows, []string{
			"recover",
			fmt.Sprintf("%d", row.Blocks),
			fmt.Sprintf("ingest %.3f / replay %.3f / snap %.3f+%.3f",
				row.IngestSeconds, row.WALReplaySeconds, row.SnapshotSeconds, row.SnapReplaySeconds),
			fmt.Sprintf("%.0f%%", row.RecoveredPercent),
			"-",
			fmt.Sprintf("%.1fx", row.ReplaySpeedup),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("WAL replay over wire re-ingest at the largest corpus: %.1fx", r.ReplaySpeedup),
		fmt.Sprintf("sync=never over sync=always write throughput: %.1fx", r.SpeedupNeverVsAlways),
		"expect: recovery restores 100%% of acknowledged blocks; the log beats the network")
	return t
}

// benchBlock builds the i-th deterministic bench block: a text-medium
// payload of synthetic bytes (payloads are never interpreted) with a
// small fixed descriptor, so the write-amplification figure reflects the
// record format, not corpus quirks.
func benchBlock(i, size int) *media.Block {
	payload := make([]byte, size)
	for j := range payload {
		payload[j] = byte(i*131 + j*7)
	}
	// Stamp the index in full so every block's content address is
	// distinct (the byte arithmetic above cycles with period 256).
	if size >= 8 {
		binary.LittleEndian.PutUint64(payload, uint64(i))
	}
	var desc attr.List
	desc.Set(media.DescLang, attr.ID("en"))
	return media.NewBlock(fmt.Sprintf("durable-%06d.txt", i), core.MediumText, payload, desc)
}

// DurableBench runs the S4 scenarios and returns the measurements.
func DurableBench(ctx context.Context, cfg DurableBenchConfig) (*DurableBenchReport, error) {
	cfg.fillDefaults()
	report := &DurableBenchReport{Config: cfg, Env: CaptureBenchEnv()}

	for _, policy := range []durable.SyncPolicy{durable.SyncAlways, durable.SyncInterval, durable.SyncNever} {
		row, err := durableWriteScenario(cfg, policy)
		if err != nil {
			return nil, fmt.Errorf("durabench write %s: %w", policy, err)
		}
		report.WriteRows = append(report.WriteRows, row)
	}
	byPolicy := map[string]DurableWriteRow{}
	for _, row := range report.WriteRows {
		byPolicy[row.Policy] = row
	}
	if always := byPolicy["always"]; always.BlocksPerSec > 0 {
		report.SpeedupNeverVsAlways = byPolicy["never"].BlocksPerSec / always.BlocksPerSec
	}

	for _, blocks := range cfg.RecoverBlocks {
		row, err := durableRecoverScenario(ctx, cfg, blocks)
		if err != nil {
			return nil, fmt.Errorf("durabench recover %d: %w", blocks, err)
		}
		report.RecoverRows = append(report.RecoverRows, row)
		report.ReplaySpeedup = row.ReplaySpeedup
	}
	return report, nil
}

// durableWriteScenario times WriteBlocks journaled puts under one sync
// policy.
func durableWriteScenario(cfg DurableBenchConfig, policy durable.SyncPolicy) (DurableWriteRow, error) {
	row := DurableWriteRow{Policy: policy.String(), Blocks: cfg.WriteBlocks}
	dir, err := os.MkdirTemp("", "durabench-write-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	log, st, err := durable.Open(dir, durable.Options{Sync: policy, SnapshotBytes: -1})
	if err != nil {
		return row, err
	}
	st.Store.SetJournal(log)

	blocks := make([]*media.Block, cfg.WriteBlocks)
	for i := range blocks {
		blocks[i] = benchBlock(i, cfg.BlockBytes)
		row.PayloadBytes += int64(len(blocks[i].Payload))
	}
	start := time.Now()
	for _, b := range blocks {
		st.Store.Put(b)
	}
	if err := log.Sync(); err != nil {
		return row, err
	}
	row.Seconds = time.Since(start).Seconds()
	row.WALBytes = log.Stats().AppendedBytes
	if err := log.Close(); err != nil {
		return row, err
	}
	if row.Seconds > 0 {
		row.BlocksPerSec = float64(row.Blocks) / row.Seconds
	}
	if row.PayloadBytes > 0 {
		row.WriteAmplification = float64(row.WALBytes) / float64(row.PayloadBytes)
	}
	return row, nil
}

// durableRecoverScenario ingests a corpus over the wire into a durable
// server, then times the recovery paths against that ingest.
func durableRecoverScenario(ctx context.Context, cfg DurableBenchConfig, blocks int) (DurableRecoverRow, error) {
	row := DurableRecoverRow{Blocks: blocks}
	dir, err := os.MkdirTemp("", "durabench-recover-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	log, st, err := durable.Open(dir, durable.Options{Sync: durable.SyncNever, SnapshotBytes: -1})
	if err != nil {
		return row, err
	}
	st.Store.SetJournal(log)
	reg := transport.NewRegistry(st.Store)
	reg.DurabilityErr = log.Err
	srv := transport.NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return row, err
	}
	defer srv.Close()
	c, err := transport.DialContext(ctx, addr)
	if err != nil {
		return row, err
	}
	defer c.Close()

	start := time.Now()
	for i := 0; i < blocks; i++ {
		if _, err := c.PutBlock(ctx, benchBlock(i, cfg.BlockBytes)); err != nil {
			return row, fmt.Errorf("ingest %d: %w", i, err)
		}
	}
	row.IngestSeconds = time.Since(start).Seconds()
	live := st.Store
	c.Close()
	srv.Close()
	if err := log.Sync(); err != nil {
		return row, err
	}

	// Path 1: recover by replaying the raw WAL. Recovery is read-only
	// and deterministic, so the minimum of three runs is the honest
	// figure (the others measure page-cache and GC noise).
	walState, walSecs, err := timedLoad(dir)
	if err != nil {
		return row, fmt.Errorf("wal replay: %w", err)
	}
	row.WALReplaySeconds = walSecs

	// Snapshot and compact (reusing the still-open log), then path 2:
	// recover from the snapshot.
	start = time.Now()
	if err := log.Snapshot(); err != nil {
		return row, fmt.Errorf("snapshot: %w", err)
	}
	row.SnapshotSeconds = time.Since(start).Seconds()
	if err := log.Close(); err != nil {
		return row, err
	}
	snapState, snapSecs, err := timedLoad(dir)
	if err != nil {
		return row, fmt.Errorf("snapshot replay: %w", err)
	}
	row.SnapReplaySeconds = snapSecs

	row.RecoveredBlocks = snapState.Store.Len()
	row.RecoveredPercent = 100 * float64(row.RecoveredBlocks) / float64(blocks)
	row.Verified = storesAgree(live, walState.Store) && storesAgree(live, snapState.Store) &&
		walState.Store.VerifyAll() == nil && snapState.Store.VerifyAll() == nil
	if row.WALReplaySeconds > 0 {
		row.ReplaySpeedup = row.IngestSeconds / row.WALReplaySeconds
	}
	return row, nil
}

// timedLoad recovers dir three times and reports the state plus the
// fastest recovery time.
func timedLoad(dir string) (*durable.State, float64, error) {
	var st *durable.State
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		loaded, err := durable.Load(dir)
		if err != nil {
			return nil, 0, err
		}
		if secs := time.Since(start).Seconds(); i == 0 || secs < best {
			best = secs
		}
		st = loaded
	}
	return st, best, nil
}

// storesAgree compares two stores block for block: names, content
// addresses and payloads.
func storesAgree(a, b *media.Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	names := a.Names()
	bNames := b.Names()
	if len(names) != len(bNames) {
		return false
	}
	for i := range names {
		if names[i] != bNames[i] {
			return false
		}
	}
	agree := true
	a.Each(func(blk *media.Block) bool {
		other, ok := b.Get(blk.ID)
		if !ok || other.Name != blk.Name || !bytes.Equal(other.Payload, blk.Payload) {
			agree = false
			return false
		}
		return true
	})
	return agree
}

// LoadDurableReport reads a BENCH_durable.json.
func LoadDurableReport(path string) (*DurableBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r DurableBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CheckDurableReport validates a durability-bench report. committed
// tightens the thresholds to the levels the reference file documents.
// It returns human-readable violations; empty means the report passes.
func CheckDurableReport(r *DurableBenchReport, committed bool) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if len(r.WriteRows) == 0 || len(r.RecoverRows) == 0 {
		return []string{"durable report is missing write or recover rows"}
	}
	if r.Env.GoMaxProcs < 1 || r.Env.GoVersion == "" {
		fail("durable report env not captured: %+v", r.Env)
	}

	// Write amplification is machine-independent: it is fixed by the
	// record format and the bench's block shape (~1.23 at 1 KiB blocks:
	// frame + id + name + descriptor text, plus the separate
	// name-registration record).
	ampCeiling := 2.0
	if committed {
		ampCeiling = 1.35
	}
	for _, row := range r.WriteRows {
		if row.WALBytes <= row.PayloadBytes {
			fail("write sync=%s: WAL bytes %d not larger than payload bytes %d (framing overhead vanished?)",
				row.Policy, row.WALBytes, row.PayloadBytes)
		}
		if row.WriteAmplification > ampCeiling {
			fail("write sync=%s: amplification %.3f above the %.2f ceiling",
				row.Policy, row.WriteAmplification, ampCeiling)
		}
	}

	// Recovery completeness is exact on any machine: a durable layer
	// that loses blocks has no reason to exist.
	for _, row := range r.RecoverRows {
		if row.RecoveredBlocks != row.Blocks || row.RecoveredPercent != 100 {
			fail("recover %d: only %d blocks (%.1f%%) restored",
				row.Blocks, row.RecoveredBlocks, row.RecoveredPercent)
		}
		if !row.Verified {
			fail("recover %d: recovered corpus does not match the live store", row.Blocks)
		}
	}

	// Replay must beat re-ingest; the committed reference documents the
	// order-of-magnitude headline.
	minSpeedup := 1.5
	if committed {
		minSpeedup = 10.0
	}
	for _, row := range r.RecoverRows {
		if row.ReplaySpeedup < minSpeedup {
			fail("recover %d: WAL replay only %.1fx faster than wire ingest (floor %.1fx)",
				row.Blocks, row.ReplaySpeedup, minSpeedup)
		}
	}

	// The sync-policy spread: a per-record fsync must cost something, and
	// skipping it must pay. Generous fresh tolerance for runners with
	// battery-backed or fake fsyncs.
	minSpread := 1.2
	if committed {
		minSpread = 2.0
	}
	if r.SpeedupNeverVsAlways < minSpread {
		fail("sync=never only %.2fx over sync=always (floor %.1fx)",
			r.SpeedupNeverVsAlways, minSpread)
	}
	return v
}
