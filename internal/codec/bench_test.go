package codec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// benchTree builds a deterministic random document of roughly n nodes.
func benchTree(n int) string {
	rng := rand.New(rand.NewSource(1991))
	tree := core.NewSeq() // composite root so subtrees can always attach
	count := 1
	for count < n {
		sub := genTree(rng, 1)
		tree.AddChild(sub)
		count += sub.Count()
	}
	text, err := EncodeNode(tree, WriteOptions{Form: Conventional})
	if err != nil {
		panic(err)
	}
	return text
}

func BenchmarkParse(b *testing.B) {
	for _, n := range []int{50, 500, 5000} {
		text := benchTree(n)
		b.Run(fmt.Sprintf("nodes-%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				if _, err := ParseNode(text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncode(b *testing.B) {
	for _, n := range []int{50, 500, 5000} {
		tree, err := ParseNode(benchTree(n))
		if err != nil {
			b.Fatal(err)
		}
		for _, form := range []struct {
			name string
			f    Form
		}{{"conventional", Conventional}, {"embedded", Embedded}} {
			b.Run(fmt.Sprintf("%s-nodes-%d", form.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := EncodeNode(tree, WriteOptions{Form: form.f}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkBinaryCodec(b *testing.B) {
	tree, err := ParseNode(benchTree(2000))
	if err != nil {
		b.Fatal(err)
	}
	data, err := EncodeBinaryNode(tree)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := EncodeBinaryNode(tree); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBinaryNode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
