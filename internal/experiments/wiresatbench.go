package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/transport"
)

// The wire-saturation bench measures the S9 scenarios: what the v4 wire
// actually ships when the payload is redundant. Two corpora — dup (large
// near-duplicate blocks of incompressible random data, the
// content-defined-dedupe target) and text (distinct highly compressible
// blocks, the flate-codec target) — are each fetched cold and then warm
// by workers sharing one connection, once over the plain v3 discipline
// (whole payloads, no codec) and once over the v4 path that applies.
// The headline figures are the warm-pass comparisons: dedupe throughput
// and bytes-on-wire against the plain transfer of the same logical
// bytes, and the compression ratio on the text corpus.

// wireSatSpliceBytes is how much each dup-corpus block diverges from the
// shared base — small against the block, so near-duplicates share most
// of their content-defined chunks.
const wireSatSpliceBytes = 256

// WireSatBenchConfig sizes the S9 scenarios. The zero value is usable:
// 48 blocks of 256 KiB per corpus, 8 workers on one connection, and a
// warm pass that re-fetches the corpus 3 times.
type WireSatBenchConfig struct {
	// Blocks is each corpus's size; BlockBytes each payload's size.
	Blocks     int `json:"blocks"`
	BlockBytes int `json:"block_bytes"`
	// Workers is the concurrent fetcher count; like S3, all workers share
	// ONE connection, so the scenarios compare wire disciplines.
	Workers int `json:"workers"`
	// WarmRounds is how many times the warm pass walks the corpus.
	WarmRounds int `json:"warm_rounds"`
}

func (c *WireSatBenchConfig) fillDefaults() {
	if c.Blocks <= 0 {
		c.Blocks = 48
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 256 << 10
	}
	if c.BlockBytes < wireSatSpliceBytes*2 {
		c.BlockBytes = wireSatSpliceBytes * 2
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.WarmRounds <= 0 {
		c.WarmRounds = 3
	}
}

// WireSatRow is one (scenario, corpus, pass) measurement.
type WireSatRow struct {
	// Scenario is plain-v3, compress-v4 or dedup-v4.
	Scenario string `json:"scenario"`
	// Corpus is dup or text.
	Corpus string `json:"corpus"`
	// Pass is cold (first walk) or warm (the repeated walks).
	Pass string `json:"pass"`
	// Fetches is how many blocks were delivered to callers.
	Fetches int `json:"fetches"`
	// PayloadBytes sums the logical payload bytes delivered — exactly
	// Fetches x BlockBytes when every fetch returned the full block.
	PayloadBytes int64 `json:"payload_bytes"`
	// WireCalls counts requests that crossed the wire during the pass.
	WireCalls int64 `json:"wire_calls"`
	// BytesReceived counts response wire bytes during the pass, as the
	// connection's byte counter saw them (post-compression).
	BytesReceived int64 `json:"bytes_received"`
	// DedupeFetches counts fetches answered through the manifest/chunk
	// path; DedupeSaved the payload bytes the chunk cache served instead
	// of the wire.
	DedupeFetches int64 `json:"dedupe_fetches"`
	DedupeSaved   int64 `json:"dedupe_saved"`
	// Seconds is the pass's wall-clock time; MBPerSec is logical payload
	// throughput, PayloadBytes / Seconds.
	Seconds  float64 `json:"seconds"`
	MBPerSec float64 `json:"mb_per_sec"`
}

// WireSatReport is the machine-readable result set cmifbench writes to
// BENCH_wire2.json.
type WireSatReport struct {
	Config WireSatBenchConfig `json:"config"`
	Env    BenchEnv           `json:"env"`
	Rows   []WireSatRow       `json:"rows"`
	// Compressed reports the v4 clients actually negotiated the codec.
	Compressed bool `json:"compressed"`
	// SpeedupWarmDedup is warm dup-corpus throughput, dedup-v4 over
	// plain-v3 — the zero-copy + dedupe headline.
	SpeedupWarmDedup float64 `json:"speedup_warm_dedup"`
	// WireReductionDup is warm dup-corpus bytes on the wire, plain-v3
	// over dedup-v4 — the bytes-saved headline.
	WireReductionDup float64 `json:"wire_reduction_dup"`
	// WireReductionText is warm text-corpus bytes on the wire, plain-v3
	// over compress-v4 — the codec's ratio on compressible payloads.
	WireReductionText float64 `json:"wire_reduction_text"`
}

// JSON renders the report for BENCH_wire2.json.
func (r *WireSatReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the experiment-table format.
func (r *WireSatReport) Table() *Table {
	t := &Table{
		ID:    "S9",
		Title: "wire saturation: dedupe and compression vs plain transfer",
		Header: []string{"scenario", "corpus", "pass", "fetches", "MiB payload",
			"MiB wire", "wire calls", "dedup hits", "seconds", "MB/s"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Scenario,
			row.Corpus,
			row.Pass,
			fmt.Sprintf("%d", row.Fetches),
			fmt.Sprintf("%.2f", float64(row.PayloadBytes)/(1<<20)),
			fmt.Sprintf("%.2f", float64(row.BytesReceived)/(1<<20)),
			fmt.Sprintf("%d", row.WireCalls),
			fmt.Sprintf("%d", row.DedupeFetches),
			fmt.Sprintf("%.3f", row.Seconds),
			fmt.Sprintf("%.0f", row.MBPerSec),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("warm dup corpus: dedup-v4 %.1fx the plain-v3 throughput, %.1fx fewer bytes on the wire",
			r.SpeedupWarmDedup, r.WireReductionDup),
		fmt.Sprintf("warm text corpus: compression ships %.1fx fewer bytes than the plain transfer", r.WireReductionText),
		"expect: a warm chunk cache turns repeat large-block fetches into manifest round trips")
	return t
}

// WireSatBench runs the S9 scenarios against an in-process server and
// returns the measurements. The context bounds every wire operation.
func WireSatBench(ctx context.Context, cfg WireSatBenchConfig) (*WireSatReport, error) {
	cfg.fillDefaults()

	store := media.NewStore()
	dupNames := wireSatDupCorpus(store, cfg.Blocks, cfg.BlockBytes)
	textNames := wireSatTextCorpus(store, cfg.Blocks, cfg.BlockBytes)

	srv := transport.NewServer(transport.NewRegistry(store))
	srv.Compression = true
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	report := &WireSatReport{Config: cfg, Env: CaptureBenchEnv()}
	scenarios := []struct {
		name   string
		corpus string
		names  []string
		opts   []transport.DialOption
	}{
		{"plain-v3", "dup", dupNames,
			[]transport.DialOption{transport.WithMaxProtocolVersion(3)}},
		{"dedup-v4", "dup", dupNames,
			[]transport.DialOption{transport.WithChunkCache(transport.NewChunkCache(0))}},
		{"plain-v3", "text", textNames,
			[]transport.DialOption{transport.WithMaxProtocolVersion(3)}},
		{"compress-v4", "text", textNames, nil},
	}
	warm := map[[2]string]WireSatRow{}
	for _, sc := range scenarios {
		c, err := transport.DialContext(ctx, addr, sc.opts...)
		if err != nil {
			return nil, fmt.Errorf("wiresatbench %s/%s: %w", sc.name, sc.corpus, err)
		}
		if sc.name != "plain-v3" && c.Compressed() {
			report.Compressed = true
		}
		for _, pass := range []string{"cold", "warm"} {
			rounds := 1
			if pass == "warm" {
				rounds = cfg.WarmRounds
			}
			row, err := runWireSatPass(ctx, c, sc.names, cfg, rounds)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("wiresatbench %s/%s/%s: %w", sc.name, sc.corpus, pass, err)
			}
			row.Scenario, row.Corpus, row.Pass = sc.name, sc.corpus, pass
			report.Rows = append(report.Rows, row)
			if pass == "warm" {
				warm[[2]string{sc.name, sc.corpus}] = row
			}
		}
		c.Close()
	}

	if plain := warm[[2]string{"plain-v3", "dup"}]; plain.Seconds > 0 && plain.BytesReceived > 0 {
		if dedup := warm[[2]string{"dedup-v4", "dup"}]; dedup.MBPerSec > 0 {
			report.SpeedupWarmDedup = dedup.MBPerSec / plain.MBPerSec
			if dedup.BytesReceived > 0 {
				report.WireReductionDup = float64(plain.BytesReceived) / float64(dedup.BytesReceived)
			}
		}
	}
	if plain := warm[[2]string{"plain-v3", "text"}]; plain.BytesReceived > 0 {
		if comp := warm[[2]string{"compress-v4", "text"}]; comp.BytesReceived > 0 {
			report.WireReductionText = float64(plain.BytesReceived) / float64(comp.BytesReceived)
		}
	}
	return report, nil
}

// runWireSatPass walks the corpus rounds times with the configured
// workers sharing the one connection, verifying every delivered payload
// length and charging the pass with the connection's counter deltas.
func runWireSatPass(ctx context.Context, c *transport.Client, names []string, cfg WireSatBenchConfig, rounds int) (WireSatRow, error) {
	var row WireSatRow
	total := len(names) * rounds
	startCalls := c.RoundTrips()
	startBytes := c.BytesReceived()
	startDedup := c.DedupeFetches()
	startSaved := c.DedupeBytesSaved()

	var next atomic.Int64
	var payload atomic.Int64
	errs := make([]error, cfg.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				name := names[i%len(names)]
				blk, err := c.GetBlock(ctx, name)
				if err != nil {
					errs[w] = fmt.Errorf("%s: %w", name, err)
					return
				}
				if len(blk.Payload) != cfg.BlockBytes {
					errs[w] = fmt.Errorf("%s: got %d payload bytes, want %d", name, len(blk.Payload), cfg.BlockBytes)
					return
				}
				payload.Add(int64(len(blk.Payload)))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return row, err
		}
	}

	row.Fetches = total
	row.PayloadBytes = payload.Load()
	row.WireCalls = c.RoundTrips() - startCalls
	row.BytesReceived = c.BytesReceived() - startBytes
	row.DedupeFetches = c.DedupeFetches() - startDedup
	row.DedupeSaved = c.DedupeBytesSaved() - startSaved
	row.Seconds = elapsed.Seconds()
	if row.Seconds > 0 {
		row.MBPerSec = float64(row.PayloadBytes) / (1 << 20) / row.Seconds
	}
	return row, nil
}

// wireSatDupCorpus registers the dup-heavy corpus: every block is the
// same random (incompressible) base with a small splice of fresh random
// bytes at a block-specific offset, so near-duplicates share most of
// their content-defined chunks but no two payloads are equal.
func wireSatDupCorpus(store *media.Store, blocks, size int) []string {
	rng := rand.New(rand.NewSource(0x59a7))
	base := make([]byte, size)
	rng.Read(base)
	names := make([]string, blocks)
	for i := range names {
		p := append([]byte(nil), base...)
		off := (i * 8191) % (size - wireSatSpliceBytes)
		rng.Read(p[off : off+wireSatSpliceBytes])
		names[i] = fmt.Sprintf("sat-dup-%04d.raw", i)
		store.Put(media.NewBlock(names[i], core.MediumVideo, p, attr.List{}))
	}
	return names
}

// wireSatTextCorpus registers the compressible corpus: repeated prose
// with a block-index stamp, so the flate codec wins big but no payload
// duplicates another and content addresses stay distinct.
func wireSatTextCorpus(store *media.Store, blocks, size int) []string {
	phrase := []byte("the structure is orders of magnitude smaller than the data it coordinates; ")
	base := bytes.Repeat(phrase, size/len(phrase)+1)[:size]
	names := make([]string, blocks)
	for i := range names {
		p := append([]byte(nil), base...)
		copy(p, fmt.Sprintf("block %04d >", i))
		names[i] = fmt.Sprintf("sat-txt-%04d.txt", i)
		store.Put(media.NewBlock(names[i], core.MediumText, p, attr.List{}))
	}
	return names
}
