package edge

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/media"
)

// nearDupBlocks builds n large blocks sharing one random base payload,
// each with a small splice, so they share most content-defined chunks.
func nearDupBlocks(t *testing.T, n, size int) []*media.Block {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	base := make([]byte, size)
	rng.Read(base)
	blocks := make([]*media.Block, n)
	for i := range blocks {
		payload := append([]byte(nil), base...)
		off := (i * 4099) % (size - 64)
		rng.Read(payload[off : off+64])
		blocks[i] = media.NewBlock("dup.vid", core.MediumVideo, payload, attr.List{})
	}
	return blocks
}

func countFiles(t *testing.T, dir, ext string) int {
	t.Helper()
	dents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range dents {
		if strings.HasSuffix(de.Name(), ext) {
			n++
		}
	}
	return n
}

// TestDiskCacheChunkDedupe: near-duplicate blocks share chunk files on
// disk, total disk usage stays near one payload, and both read back
// byte-identical — including after a reopen that rebuilds refcounts.
func TestDiskCacheChunkDedupe(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	const size = 128 << 10
	blocks := nearDupBlocks(t, 4, size)
	for _, b := range blocks {
		c.Put(b.Name, b)
	}
	st := c.Stats()
	if st.Chunks == 0 {
		t.Fatal("no shared chunks recorded")
	}
	if st.Bytes > 2*size {
		t.Fatalf("4 near-duplicates of a %d-byte payload occupy %d disk bytes; dedupe failed", size, st.Bytes)
	}
	if got := countFiles(t, dir, chunkExt); got != st.Chunks {
		t.Fatalf("chunk files on disk %d != indexed chunks %d", got, st.Chunks)
	}
	for _, b := range blocks {
		got, ok := c.Get(b.ID)
		if !ok || !bytes.Equal(got.Payload, b.Payload) {
			t.Fatalf("block %.12s did not read back byte-equal (ok=%v)", b.ID, ok)
		}
	}

	// Reopen: the manifest scan must rebuild refcounts and byte
	// accounting, and every block must still read back.
	c2, err := OpenDiskCache(dir, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	st2 := c2.Stats()
	if st2.Blocks != len(blocks) || st2.Chunks != st.Chunks || st2.Bytes != st.Bytes {
		t.Fatalf("reopen changed accounting: %+v vs %+v", st2, st)
	}
	for _, b := range blocks {
		got, ok := c2.Get(b.ID)
		if !ok || !bytes.Equal(got.Payload, b.Payload) {
			t.Fatalf("block %.12s lost across reopen (ok=%v)", b.ID, ok)
		}
	}
}

// TestDiskCacheLegacyFormatReadable: a CMEB1 file written by an earlier
// build — full payload inline, whatever its size — still serves.
func TestDiskCacheLegacyFormatReadable(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("legacy payload "), 4<<10) // ≥ ChunkThreshold
	b := media.NewBlock("old.vid", core.MediumVideo, payload, attr.List{})
	if err := fsio.WriteFileNoDirSync(filepath.Join(dir, b.ID+blockExt), encodeBlockFile(b), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenDiskCache(dir, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(b.ID)
	if !ok || !bytes.Equal(got.Payload, b.Payload) {
		t.Fatalf("legacy CMEB1 block unreadable (ok=%v)", ok)
	}
	if st := c.Stats(); st.Chunks != 0 {
		t.Fatalf("legacy block must not grow chunk state: %+v", st)
	}
}

// TestDiskCacheEvictionReleasesChunks: evicting the last block that
// references a chunk deletes its file; shared chunks survive while any
// referencing block remains.
func TestDiskCacheEvictionReleasesChunks(t *testing.T) {
	dir := t.TempDir()
	const size = 64 << 10
	c, err := OpenDiskCache(dir, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	// Two unrelated payloads: no chunk sharing between them.
	p1 := make([]byte, size)
	p2 := make([]byte, size)
	rng.Read(p1)
	rng.Read(p2)
	b1 := media.NewBlock("one.vid", core.MediumVideo, p1, attr.List{})
	b2 := media.NewBlock("two.vid", core.MediumVideo, p2, attr.List{})
	c.Put(b1.Name, b1)
	c.Put(b2.Name, b2)
	before := c.Stats()

	// Dropping b1 (corruption path) must remove exactly its chunks.
	c.drop(b1.ID)
	after := c.Stats()
	if after.Blocks != 1 || after.Chunks >= before.Chunks {
		t.Fatalf("drop did not release chunks: before %+v after %+v", before, after)
	}
	if got, ok := c.Get(b2.ID); !ok || !bytes.Equal(got.Payload, p2) {
		t.Fatalf("surviving block damaged by unrelated drop (ok=%v)", ok)
	}
	if got := countFiles(t, dir, chunkExt); got != after.Chunks {
		t.Fatalf("chunk files on disk %d != indexed %d after drop", got, after.Chunks)
	}

	// A corrupted chunk file degrades the block to a miss and the entry
	// is dropped, chunk files cleaned.
	var victim media.ChunkHash
	c.mu.Lock()
	for h := range c.chunkRefs {
		victim = h
		break
	}
	c.mu.Unlock()
	if err := os.WriteFile(c.chunkPath(victim), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(b2.ID); ok {
		t.Fatal("block with corrupt chunk served")
	}
	if st := c.Stats(); st.Blocks != 0 || st.Chunks != 0 || st.Bytes != 0 {
		t.Fatalf("corrupt-chunk drop left residue: %+v", st)
	}
}
