package cmif

import (
	"context"
	"errors"

	"repro/internal/filter"
	"repro/internal/media"
	"repro/internal/pipeline"
	"repro/internal/present"
	"repro/internal/sched"
)

// Profile describes a target presentation environment for constraint
// filtering.
type Profile = filter.Profile

// Built-in device profiles.
var (
	// Workstation1991 is a period-appropriate capable device.
	Workstation1991 = filter.Workstation1991
	// Laptop1991 is a period-appropriate constrained device.
	Laptop1991 = filter.Laptop1991
	// TextTerminal presents text only.
	TextTerminal = filter.TextTerminal
)

// ProfileByName resolves a built-in profile: "workstation", "laptop" or
// "terminal".
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "workstation":
		return Workstation1991, nil
	case "laptop":
		return Laptop1991, nil
	case "terminal":
		return TextTerminal, nil
	default:
		return Profile{}, errors.New("cmif: unknown profile " + name)
	}
}

// FilterMap is the per-leaf verdict set of the Constraint Filtering stage.
type FilterMap = filter.FilterMap

// EvaluateProfile runs constraint filtering alone: it grades every leaf of
// the document against the profile using the store's data descriptors.
func EvaluateProfile(d *Document, store *Store, p Profile) (*FilterMap, error) {
	return filter.Evaluate(d.doc, store, p)
}

// Screen is the virtual display used by presentation mapping.
type Screen = present.Screen

// PresentationMap assigns each channel a screen region or speaker.
type PresentationMap = present.Map

// MapPresentation runs the Presentation Mapping stage alone.
func MapPresentation(d *Document, screen Screen, speakers int) (*PresentationMap, error) {
	return present.MapDocument(d.doc, present.Options{Screen: screen, Speakers: speakers})
}

// RenderTarget selects which reading-tool renderings a pipeline run
// produces.
type RenderTarget = pipeline.View

// Render targets for WithRenderTarget.
const (
	// RenderTree is the indented structure view.
	RenderTree = pipeline.ViewTree
	// RenderTimeline is the channel/time view.
	RenderTimeline = pipeline.ViewTimeline
	// RenderTOC is the table-of-contents text.
	RenderTOC = pipeline.ViewTOC
	// RenderArcs is the synchronization-arc table.
	RenderArcs = pipeline.ViewArcs
	// RenderAll selects every rendering (the default).
	RenderAll = pipeline.AllViews
)

// SchedulerOptions tunes the timing-resolution stage of a pipeline run.
type SchedulerOptions = sched.Options

// Outcome carries every artifact a pipeline run produces: issues,
// schedule, presentation map, filter map, filtered store, playback result
// and the requested view renderings.
type Outcome = pipeline.Outcome

// Pipeline runs the target-system-dependent stages of Figure 1 —
// validation, timing resolution, presentation mapping, constraint
// filtering, playback simulation, viewing — against one device
// environment. Configure it once with functional options and Run it over
// any number of documents; Run-time options override the constructor's
// per call.
type Pipeline struct {
	opts []PipelineOption
}

// pipelineConfig collects the pipeline options.
type pipelineConfig struct {
	cfg     pipeline.Config
	store   *media.Store
	dataDir string
	fetcher Fetcher
}

// PipelineOption configures NewPipeline and Pipeline.Run.
type PipelineOption func(*pipelineConfig)

// WithProfile selects the device's constraint profile.
func WithProfile(p Profile) PipelineOption {
	return func(c *pipelineConfig) { c.cfg.Profile = p }
}

// WithStore supplies the data-block store backing the document's external
// leaves. Runs without a store see every external leaf as missing data.
func WithStore(s *Store) PipelineOption {
	return func(c *pipelineConfig) { c.store = s }
}

// WithStoreFromDataDir backs the run with the block store recovered from
// a durable server's data directory (see WithDataDir). Recovery happens
// at Run time; an explicit WithStore takes precedence. The directory
// must be quiescent — no live server writing it — like LoadDataDir.
func WithStoreFromDataDir(dir string) PipelineOption {
	return func(c *pipelineConfig) { c.dataDir = dir }
}

// WithFetcher backs the run with any Fetcher — an origin Client, an
// Edge, or a Chain of layers: the document's external files are
// prefetched through it at Run time (see PrefetchVia). An explicit
// WithStore takes precedence; WithStoreFromDataDir is consulted after
// the fetcher.
func WithFetcher(f Fetcher) PipelineOption {
	return func(c *pipelineConfig) { c.fetcher = f }
}

// WithScheduler tunes timing-graph construction (leaf durations, rigid
// leaves, sequence gaps).
func WithScheduler(opts SchedulerOptions) PipelineOption {
	return func(c *pipelineConfig) { c.cfg.SchedOptions = &opts }
}

// WithRenderTarget restricts the run to the given renderings instead of
// producing all of them. Combine targets with |.
func WithRenderTarget(t RenderTarget) PipelineOption {
	return func(c *pipelineConfig) { c.cfg.Views = t }
}

// WithScreen sets the virtual display for presentation mapping.
func WithScreen(s Screen) PipelineOption {
	return func(c *pipelineConfig) { c.cfg.Screen = s }
}

// WithSpeakers sets the loudspeaker count for presentation mapping.
func WithSpeakers(n int) PipelineOption {
	return func(c *pipelineConfig) { c.cfg.Speakers = n }
}

// WithDeviceJitter installs the playback latency model; nil means ideal
// devices.
func WithDeviceJitter(m JitterModel) PipelineOption {
	return func(c *pipelineConfig) { c.cfg.Jitter = m }
}

// WithStrict makes the run fail (matching ErrUnsupportable) when the
// profile cannot support the document instead of reporting the filter map.
func WithStrict() PipelineOption {
	return func(c *pipelineConfig) { c.cfg.Strict = true }
}

// NewPipeline builds a reusable pipeline from functional options.
func NewPipeline(opts ...PipelineOption) *Pipeline {
	return &Pipeline{opts: opts}
}

// Run drives doc through the pipeline. The context is honoured between
// stages: cancellation or an expired deadline aborts the run with ctx's
// error (and whatever partial Outcome exists). An invalid document yields
// a *ValidationError; a strict run on an inadequate device matches
// ErrUnsupportable.
func (p *Pipeline) Run(ctx context.Context, doc *Document, opts ...PipelineOption) (*Outcome, error) {
	var cfg pipelineConfig
	for _, o := range p.opts {
		o(&cfg)
	}
	for _, o := range opts {
		o(&cfg)
	}
	store := cfg.store
	if store == nil && cfg.fetcher != nil {
		fetched, err := PrefetchVia(ctx, cfg.fetcher, doc)
		if err != nil {
			return nil, err
		}
		store = fetched
	}
	if store == nil && cfg.dataDir != "" {
		recovered, _, err := LoadDataDir(cfg.dataDir)
		if err != nil {
			return nil, err
		}
		store = recovered
	}
	if store == nil {
		store = media.NewStore()
	}
	out, err := pipeline.Run(ctx, doc.doc, store, cfg.cfg)
	var pve *pipeline.ValidationError
	var pue *pipeline.UnsupportableError
	switch {
	case errors.As(err, &pve):
		return out, &ValidationError{Issues: pve.Issues}
	case errors.As(err, &pue):
		return out, tag(err, ErrUnsupportable)
	}
	return out, err
}

// RunPipeline is a one-shot convenience: NewPipeline(opts...).Run(ctx, doc).
func RunPipeline(ctx context.Context, doc *Document, opts ...PipelineOption) (*Outcome, error) {
	return NewPipeline(opts...).Run(ctx, doc)
}
