package sched

import (
	"math/rand"
	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/edit"
	"repro/internal/units"
	"testing"
)

// fullSolve is the ground truth: a fresh build and classic solve.
func fullSolve(t *testing.T, d *core.Document, opts Options, sopts SolveOptions) *Schedule {
	t.Helper()
	g, err := Build(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Solve(sopts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestSolver(t *testing.T, d *core.Document) *Solver {
	t.Helper()
	s, err := NewSolver(d, Options{}, SolveOptions{Relax: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(); err != nil {
		t.Fatal(err)
	}
	return s
}

func reschedule(t *testing.T, s *Solver) *Schedule {
	t.Helper()
	sch, err := s.Reschedule()
	if err != nil {
		t.Fatal(err)
	}
	if viol := s.Graph().Verify(sch.Times(), sch.Dropped); len(viol) != 0 {
		t.Fatalf("incremental schedule violates constraints: %v", viol[0])
	}
	return sch
}

func TestRescheduleDurationChange(t *testing.T) {
	d := parOfSeq(t, 4, 6)
	s := newTestSolver(t, d)
	if got := s.Stats().Components; got != 4 {
		t.Fatalf("components = %d, want 4", got)
	}

	if err := edit.SetAttr(d, "/armb/lcb", "duration", attr.Quantity(units.MS(700))); err != nil {
		t.Fatal(err)
	}
	sch := reschedule(t, s)
	st := s.Stats()
	if st.Resolved != 1 || st.Reused != 3 {
		t.Fatalf("stats after single-leaf edit: resolved %d reused %d, want 1/3", st.Resolved, st.Reused)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleNoChangesReusesEverything(t *testing.T) {
	d := parOfSeq(t, 3, 3)
	s := newTestSolver(t, d)
	sch := reschedule(t, s)
	st := s.Stats()
	if st.Resolved != 0 || st.Reused != 3 {
		t.Fatalf("no-op reschedule: resolved %d reused %d, want 0/3", st.Resolved, st.Reused)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleArcAddedAndRemoved(t *testing.T) {
	d := parOfSeq(t, 3, 4)
	s := newTestSolver(t, d)

	// Arc inside one arm: only that component re-solves.
	a := core.SyncArc{
		Source: "lac", SrcEnd: core.End, Dest: "lcc", DestEnd: core.Begin,
		Offset: units.MS(40), MinDelay: units.MS(0),
		MaxDelay: units.InfiniteQuantity(), Strict: core.Must,
	}
	if err := edit.AddArc(d, "/armc", a); err != nil {
		t.Fatal(err)
	}
	sch := reschedule(t, s)
	st := s.Stats()
	if st.Resolved != 1 {
		t.Fatalf("arc add resolved %d components, want 1", st.Resolved)
	}
	if st.Components != 3 {
		t.Fatalf("components = %d, want 3", st.Components)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))

	if err := edit.RemoveArc(d, "/armc", 0); err != nil {
		t.Fatal(err)
	}
	sch = reschedule(t, s)
	if st = s.Stats(); st.Resolved != 1 {
		t.Fatalf("arc remove resolved %d components, want 1", st.Resolved)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleCrossComponentArcMergesAndSplits(t *testing.T) {
	d := parOfSeq(t, 3, 3)
	s := newTestSolver(t, d)

	a := core.SyncArc{
		Source: "laa", SrcEnd: core.End, Dest: "../armb/lbb", DestEnd: core.Begin,
		Offset: units.MS(15), MinDelay: units.MS(0),
		MaxDelay: units.InfiniteQuantity(), Strict: core.Must,
	}
	if err := edit.AddArc(d, "/arma", a); err != nil {
		t.Fatal(err)
	}
	sch := reschedule(t, s)
	st := s.Stats()
	if st.Components != 2 {
		t.Fatalf("components after cross-arc = %d, want 2 (arma+armb merged)", st.Components)
	}
	if st.Resolved != 1 || st.Reused != 1 {
		t.Fatalf("cross-arc: resolved %d reused %d, want 1/1", st.Resolved, st.Reused)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))

	if err := edit.RemoveArc(d, "/arma", 0); err != nil {
		t.Fatal(err)
	}
	sch = reschedule(t, s)
	st = s.Stats()
	if st.Components != 3 {
		t.Fatalf("components after arc removal = %d, want 3", st.Components)
	}
	if st.Resolved != 2 || st.Reused != 1 {
		t.Fatalf("split: resolved %d reused %d, want 2/1", st.Resolved, st.Reused)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleReparent(t *testing.T) {
	d := parOfSeq(t, 3, 4)
	s := newTestSolver(t, d)

	// Move a leaf from arma into armc: both arms' components re-solve.
	if _, err := edit.MoveNode(d, "/arma/lba", "/armc", 1); err != nil {
		t.Fatal(err)
	}
	sch := reschedule(t, s)
	st := s.Stats()
	if st.Resolved != 2 || st.Reused != 1 {
		t.Fatalf("reparent: resolved %d reused %d, want 2/1", st.Resolved, st.Reused)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleInsertAndDelete(t *testing.T) {
	d := parOfSeq(t, 3, 3)
	s := newTestSolver(t, d)

	extra := leaf("fresh", "video", 400)
	if _, err := edit.InsertNode(d, "/armb", 1, extra); err != nil {
		t.Fatal(err)
	}
	sch := reschedule(t, s)
	if st := s.Stats(); st.Resolved != 1 {
		t.Fatalf("insert resolved %d, want 1", st.Resolved)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))

	if _, err := edit.DeleteNode(d, "/armb/fresh"); err != nil {
		t.Fatal(err)
	}
	sch = reschedule(t, s)
	if st := s.Stats(); st.Resolved != 1 {
		t.Fatalf("delete resolved %d, want 1", st.Resolved)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))

	// Deleting a whole arm removes its component without re-solving any.
	if _, err := edit.DeleteNode(d, "/armc"); err != nil {
		t.Fatal(err)
	}
	sch = reschedule(t, s)
	if st := s.Stats(); st.Components != 2 {
		t.Fatalf("components after arm delete = %d, want 2", st.Components)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleRename(t *testing.T) {
	d := parOfSeq(t, 2, 3)
	d.Root.FindByName("arma").AddArc(core.SyncArc{
		Source: "laa", SrcEnd: core.End, Dest: "lca", DestEnd: core.Begin,
		Offset: units.MS(5), MinDelay: units.MS(0),
		MaxDelay: units.InfiniteQuantity(), Strict: core.Must,
	})
	s := newTestSolver(t, d)
	if _, err := edit.RenameNode(d, "/arma/lca", "tail"); err != nil {
		t.Fatal(err)
	}
	sch := reschedule(t, s)
	if st := s.Stats(); st.Resolved != 0 {
		t.Fatalf("rename resolved %d components, want 0 (arcs rewritten, times unchanged)", st.Resolved)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleGlobalChangeRebuilds(t *testing.T) {
	d := parOfSeq(t, 2, 2)
	s := newTestSolver(t, d)
	before := s.Stats().FullRebuilds

	// Direct tree mutation + Refresh is the untracked-edit escape hatch.
	d.Root.FindByName("armb").AddChild(leaf("direct", "video", 250))
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	sch := reschedule(t, s)
	if got := s.Stats().FullRebuilds; got != before+1 {
		t.Fatalf("full rebuilds = %d, want %d", got, before+1)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleRelaxationStaysPerComponent(t *testing.T) {
	d := parOfSeq(t, 3, 3)
	s := newTestSolver(t, d)

	// A conflicting May arc inside armb: relaxation drops it; the other
	// components' solutions are reused.
	if err := edit.AddArc(d, "/armb", core.SyncArc{
		Source: "lcb", SrcEnd: core.End, Dest: "lab", DestEnd: core.Begin,
		Offset: units.MS(100), MinDelay: units.MS(0),
		MaxDelay: units.InfiniteQuantity(), Strict: core.May,
	}); err != nil {
		t.Fatal(err)
	}
	sch := reschedule(t, s)
	if st := s.Stats(); st.Resolved != 1 || st.Reused != 2 {
		t.Fatalf("conflicting arc: resolved %d reused %d, want 1/2", st.Resolved, st.Reused)
	}
	if len(sch.Dropped) != 1 {
		t.Fatalf("dropped = %v, want the May arc", sch.Dropped)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleRandomEditChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := parOfSeq(t, 5, 6)
	s := newTestSolver(t, d)

	arms := []string{"arma", "armb", "armc", "armd", "arme"}
	for step := 0; step < 60; step++ {
		arm := arms[rng.Intn(len(arms))]
		armNode := d.Root.FindByName(arm)
		if armNode == nil || armNode.NumChildren() == 0 {
			continue
		}
		child := armNode.Child(rng.Intn(armNode.NumChildren()))
		switch rng.Intn(4) {
		case 0: // duration tweak
			if err := edit.SetAttr(d, child.PathString(), "duration",
				attr.Quantity(units.MS(int64(20+rng.Intn(500))))); err != nil {
				t.Fatal(err)
			}
		case 1: // insert a leaf
			if _, err := edit.InsertNode(d, "/"+arm, rng.Intn(armNode.NumChildren()+1),
				leaf("x"+itoa(step), "video", int64(30+rng.Intn(300)))); err != nil {
				t.Fatal(err)
			}
		case 2: // delete a leaf (keep arms non-empty, avoid arc targets)
			if armNode.NumChildren() > 2 && len(d.Root.FindByName(arm).Children()) > 2 {
				if _, err := edit.DeleteNode(d, child.PathString()); err != nil {
					t.Fatal(err)
				}
			}
		case 3: // move a leaf to another arm
			dst := arms[rng.Intn(len(arms))]
			if dst != arm {
				if _, err := edit.MoveNode(d, child.PathString(), "/"+dst, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		sch := reschedule(t, s)
		sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
	}
}

func TestSolverScheduleAfterUntrackedGeneration(t *testing.T) {
	// Schedule (not Reschedule) must also notice document changes.
	d := parOfSeq(t, 2, 2)
	s := newTestSolver(t, d)
	if err := edit.SetAttr(d, "/arma/laa", "duration", attr.Quantity(units.MS(999))); err != nil {
		t.Fatal(err)
	}
	sch, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleRecoversAfterFailedPatch(t *testing.T) {
	d := parOfSeq(t, 3, 3)
	// armb carries an arc pointing into armc; deleting the target severs it.
	if err := edit.AddArc(d, "/armb", core.SyncArc{
		Source: "lab", SrcEnd: core.End, Dest: "../armc/lac", DestEnd: core.Begin,
		Offset: units.MS(5), MinDelay: units.MS(0),
		MaxDelay: units.InfiniteQuantity(), Strict: core.Must,
	}); err != nil {
		t.Fatal(err)
	}
	s := newTestSolver(t, d)

	if _, err := edit.DeleteNode(d, "/armc/lac"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reschedule(); err == nil {
		t.Fatal("expected a broken-arc error from Reschedule")
	}
	// The graph is half-patched; further calls must not panic and must
	// keep reporting the unresolvable arc until the document is repaired.
	if _, err := s.Reschedule(); err == nil {
		t.Fatal("expected the error to persist while the document is broken")
	}
	if err := edit.RemoveArc(d, "/armb", 0); err != nil {
		t.Fatal(err)
	}
	sch, err := s.Reschedule()
	if err != nil {
		t.Fatalf("reschedule after repair: %v", err)
	}
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}

func TestRescheduleStyleDrivenChannelChange(t *testing.T) {
	// A style can define a leaf's channel, and channels carry the unit
	// rates that convert frame durations and arc offsets: a "style" edit
	// must re-derive arc blocks just like a direct "channel" edit.
	d := parOfSeq(t, 2, 3)
	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "video", Medium: core.MediumVideo,
		Rates: units.Rates{FrameRate: 25}})
	cd.Define(core.Channel{Name: "fastvideo", Medium: core.MediumVideo,
		Rates: units.Rates{FrameRate: 50}})
	d.SetChannels(cd)
	sd := attr.NewStyleDict()
	slow := attr.List{}
	slow.Set("channel", attr.ID("video"))
	sd.Define("slow", slow)
	fast := attr.List{}
	fast.Set("channel", attr.ID("fastvideo"))
	sd.Define("fast", fast)
	d.SetStyles(sd)

	// The leaf's channel comes from its style (an explicit channel attr
	// would win over any style); durations and offsets are in frames.
	laa := d.Root.FindByName("arma").Child(0)
	laa.Attrs.Del("channel")
	laa.SetAttr("style", attr.ID("slow"))
	if err := edit.SetAttr(d, "/arma/laa", "duration",
		attr.Quantity(units.Q(50, units.Frames))); err != nil {
		t.Fatal(err)
	}
	if err := edit.AddArc(d, "/arma", core.SyncArc{
		Source: "laa", SrcEnd: core.End, Dest: "lca", DestEnd: core.Begin,
		Offset: units.Q(25, units.Frames), MinDelay: units.MS(0),
		MaxDelay: units.InfiniteQuantity(), Strict: core.Must,
	}); err != nil {
		t.Fatal(err)
	}
	s := newTestSolver(t, d)

	// Switching the style halves every frame conversion (25fps → 50fps).
	if err := edit.SetAttr(d, "/arma/laa", "style", attr.ID("fast")); err != nil {
		t.Fatal(err)
	}
	sch := reschedule(t, s)
	sameSchedule(t, d, sch, fullSolve(t, d, Options{}, SolveOptions{Relax: true}))
}
