package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/cmif"
)

// The cluster soak drives a LIVE cmifcluster deployment through its
// ClusterClient while scripts/cluster_soak.sh kill -9s and rejoins nodes
// underneath it: writers stream acknowledged block puts, readers verify
// earlier writes through failover, and when the churn window closes the
// audit phase re-fetches EVERY acknowledged write and proves none was
// lost or corrupted. Content addressing makes the corruption check
// cryptographic — a block that comes back under its acked content
// address is byte-identical to what was written.

// clusterAck is one acknowledged write: enough to re-fetch and verify.
type clusterAck struct {
	Name string `json:"name"`
	ID   string `json:"id"`
}

// ClusterSoakReport is the machine-readable result cmifsoak -cluster
// writes (SOAK_cluster.json in the nightly artifact).
type ClusterSoakReport struct {
	Seeds   []string      `json:"seeds"`
	Seconds float64       `json:"seconds"`
	Workers int           `json:"workers"`
	Env     cmif.BenchEnv `json:"env"`

	WritesAcked int64 `json:"writes_acked"`
	WriteErrors int64 `json:"write_errors"`
	Reads       int64 `json:"reads"`
	ReadErrors  int64 `json:"read_errors"`

	// MembersMin/MembersMax bound the membership size the client observed
	// during the run — churn shows up as MembersMin < MembersMax.
	MembersMin int `json:"members_min"`
	MembersMax int `json:"members_max"`

	AuditTotal   int     `json:"audit_total"`
	AuditMissing int     `json:"audit_missing"`
	AuditCorrupt int     `json:"audit_corrupt"`
	AuditSeconds float64 `json:"audit_seconds"`
}

// runClusterSoak drives the churn soak against the seed nodes and gates
// the result: zero acknowledged writes may be missing or corrupt, and
// reads must have kept working through the churn.
func runClusterSoak(ctx context.Context, seedList string, seconds, workers int, out string) error {
	seeds := splitSeeds(seedList)
	if len(seeds) == 0 {
		return fmt.Errorf("-cluster needs at least one node address")
	}
	if workers < 2 {
		workers = 2
	}

	cc, err := cmif.DialCluster(ctx, seeds)
	if err != nil {
		return fmt.Errorf("dial cluster: %w", err)
	}
	defer cc.Close()

	report := &ClusterSoakReport{
		Seeds:   seeds,
		Seconds: float64(seconds),
		Workers: workers,
		Env:     cmif.CaptureBenchEnv(),
	}

	deadline := time.Now().Add(time.Duration(seconds) * time.Second)
	loadCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	var (
		mu    sync.Mutex
		acked []clusterAck

		writesAcked, writeErrors atomic.Int64
		reads, readErrors        atomic.Int64
	)

	// Membership watcher: churn must be visible to the client for the
	// soak to have exercised failover at all.
	report.MembersMin = len(cc.Members())
	report.MembersMax = report.MembersMin
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-loadCtx.Done():
				return
			case <-tick.C:
				n := len(cc.Members())
				if n < report.MembersMin {
					report.MembersMin = n
				}
				if n > report.MembersMax {
					report.MembersMax = n
				}
			}
		}
	}()

	// Half the workers write, half read back and verify. Write errors
	// are expected while a node is down mid-kill; only acknowledged
	// writes join the audit set.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 17))
			for i := 0; loadCtx.Err() == nil; i++ {
				if w%2 == 0 {
					name := fmt.Sprintf("soak-w%d-%06d.img", w, i)
					blk := cmif.CaptureImage(name, 64, 64, uint64(w)<<32|uint64(i)+1)
					id, err := cc.PutBlock(loadCtx, blk)
					if err != nil {
						if loadCtx.Err() == nil {
							writeErrors.Add(1)
						}
						continue
					}
					writesAcked.Add(1)
					mu.Lock()
					acked = append(acked, clusterAck{Name: name, ID: id})
					mu.Unlock()
				} else {
					mu.Lock()
					var pick clusterAck
					if len(acked) > 0 {
						pick = acked[rng.Intn(len(acked))]
					}
					mu.Unlock()
					if pick.Name == "" {
						time.Sleep(50 * time.Millisecond)
						continue
					}
					blks, err := cc.Blocks(loadCtx, []string{pick.Name})
					if loadCtx.Err() != nil {
						return
					}
					reads.Add(1)
					if err != nil || len(blks) != 1 || blks[0] == nil || blks[0].ID != pick.ID {
						readErrors.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	report.WritesAcked = writesAcked.Load()
	report.WriteErrors = writeErrors.Load()
	report.Reads = reads.Load()
	report.ReadErrors = readErrors.Load()

	// The audit: the churn has settled (the script restarts every node it
	// kills before the window closes), so every acknowledged write must
	// come back under its acked content address. A handful of retries
	// absorbs a node still finishing its resync.
	auditStart := time.Now()
	mu.Lock()
	set := append([]clusterAck(nil), acked...)
	mu.Unlock()
	report.AuditTotal = len(set)
	auditCtx, auditCancel := context.WithTimeout(ctx, 2*time.Minute)
	defer auditCancel()
	for _, a := range set {
		ok, corrupt := auditOne(auditCtx, cc, a)
		if corrupt {
			report.AuditCorrupt++
		} else if !ok {
			report.AuditMissing++
		}
	}
	report.AuditSeconds = time.Since(auditStart).Seconds()

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cmifsoak: wrote %s\n", out)
	fmt.Printf("cluster soak: %d writes acked (%d write errors), %d reads (%d errors), members %d..%d\n",
		report.WritesAcked, report.WriteErrors, report.Reads, report.ReadErrors,
		report.MembersMin, report.MembersMax)
	fmt.Printf("cluster audit: %d acked writes re-fetched in %.1fs, %d missing, %d corrupt\n",
		report.AuditTotal, report.AuditSeconds, report.AuditMissing, report.AuditCorrupt)

	var violations []string
	if report.WritesAcked == 0 {
		violations = append(violations, "no writes were acknowledged; the soak exercised nothing")
	}
	if report.AuditMissing > 0 {
		violations = append(violations, fmt.Sprintf("%d acknowledged writes are MISSING after the churn", report.AuditMissing))
	}
	if report.AuditCorrupt > 0 {
		violations = append(violations, fmt.Sprintf("%d acknowledged writes came back CORRUPT", report.AuditCorrupt))
	}
	if report.Reads > 0 && float64(report.ReadErrors) > 0.01*float64(report.Reads) {
		violations = append(violations, fmt.Sprintf("read error rate %d/%d exceeds 1%%; failover did not keep the corpus readable",
			report.ReadErrors, report.Reads))
	}
	if len(violations) == 0 {
		fmt.Fprintln(os.Stderr, "cmifsoak: cluster soak gate passed")
		return nil
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "cmifsoak: cluster gate:", v)
	}
	return fmt.Errorf("%d cluster-soak violations", len(violations))
}

// auditOne re-fetches one acknowledged write, retrying briefly so a node
// mid-resync does not read as data loss. corrupt means the block came
// back under a different content address than was acknowledged.
func auditOne(ctx context.Context, cc *cmif.ClusterClient, a clusterAck) (ok, corrupt bool) {
	for attempt := 0; attempt < 6; attempt++ {
		if ctx.Err() != nil {
			return false, false
		}
		blks, err := cc.Blocks(ctx, []string{a.Name})
		if err == nil && len(blks) == 1 && blks[0] != nil {
			if blks[0].ID == a.ID {
				return true, false
			}
			return false, true
		}
		time.Sleep(time.Duration(attempt+1) * 500 * time.Millisecond)
	}
	return false, false
}

func splitSeeds(list string) []string {
	var seeds []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	return seeds
}
