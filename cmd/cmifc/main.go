// Command cmifc validates and reformats CMIF documents: the front door of
// the Document Structure Mapping stage.
//
// Usage:
//
//	cmifc [-form conventional|embedded] [-check] [-stats] file.cmif
//
// With -check, cmifc prints validation findings and exits non-zero on
// errors; otherwise it reprints the document in the requested form.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codec"
	"repro/internal/core"
)

func main() {
	form := flag.String("form", "conventional", "output form: conventional or embedded")
	check := flag.Bool("check", false, "validate only; print findings")
	stats := flag.Bool("stats", false, "print document statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmifc [-form conventional|embedded] [-check] [-stats] file.cmif")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	doc, err := codec.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	if *check {
		issues := doc.Validate()
		for _, i := range issues {
			fmt.Println(i)
		}
		if len(core.Errors(issues)) > 0 {
			os.Exit(1)
		}
		fmt.Printf("%s: ok (%d warnings)\n", flag.Arg(0), len(core.Warnings(issues)))
		return
	}
	if *stats {
		s := doc.Stats()
		fmt.Printf("nodes %d (seq %d, par %d, ext %d, imm %d), depth %d, arcs %d, channels %d, styles %d\n",
			s.Nodes, s.Seq, s.Par, s.Ext, s.Imm, s.MaxDepth, s.Arcs, s.Channels, s.Styles)
		return
	}
	f := codec.Conventional
	if *form == "embedded" {
		f = codec.Embedded
	}
	out, err := codec.Encode(doc, codec.WriteOptions{Form: f})
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmifc:", err)
	os.Exit(1)
}
