// Command cmifmap computes a presentation map for a CMIF document: the
// Presentation Mapping stage of the pipeline. The map prints both as a
// human-readable table and, with -cmif, as its CMIF-fragment serialization
// (the form in which it travels separately from the document).
//
// Usage:
//
//	cmifmap [-screen 1152x900] [-speakers 2] [-cmif] (-news N | file.cmif)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/newsdoc"
	"repro/internal/present"
)

func main() {
	screen := flag.String("screen", "1152x900", "virtual screen WxH")
	speakers := flag.Int("speakers", 2, "loudspeaker count")
	asCMIF := flag.Bool("cmif", false, "print the map as a CMIF fragment")
	news := flag.Int("news", 0, "use the built-in evening news with N stories")
	flag.Parse()

	w, h, err := parseScreen(*screen)
	if err != nil {
		fatal(err)
	}
	var doc *core.Document
	switch {
	case *news > 0:
		doc, _, err = newsdoc.Build(newsdoc.Config{Stories: *news})
	case flag.NArg() == 1:
		var data []byte
		data, err = os.ReadFile(flag.Arg(0))
		if err == nil {
			doc, err = codec.Parse(string(data))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: cmifmap [-screen WxH] [-speakers N] [-cmif] (-news N | file.cmif)")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	m, err := present.MapDocument(doc, present.Options{
		Screen: present.Screen{W: w, H: h}, Speakers: *speakers,
	})
	if err != nil {
		fatal(err)
	}
	if *asCMIF {
		out, err := codec.EncodeNode(m.ToNode(), codec.WriteOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	fmt.Print(m)
}

func parseScreen(s string) (w, h int64, err error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("screen must be WxH, got %q", s)
	}
	w, err = strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	h, err = strconv.ParseInt(parts[1], 10, 64)
	return w, h, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmifmap:", err)
	os.Exit(1)
}
