package attr

import (
	"fmt"
	"sort"
)

// StyleDict holds named styles. A style is a reusable attribute list; the
// paper defines "style" as "a shorthand for placing a set of attributes on a
// node" and requires that "style definitions may refer to other style
// definitions as long as no style refers to itself, directly or indirectly"
// (Figure 7, Style Dictionary).
//
// A style refers to another style by carrying a "style" attribute itself;
// expansion is transitive with the nearer definition winning.
type StyleDict struct {
	styles map[string]List
	order  []string
}

// NewStyleDict returns an empty dictionary.
func NewStyleDict() *StyleDict {
	return &StyleDict{styles: make(map[string]List)}
}

// Define binds name to the attribute list attrs, replacing any previous
// definition. Definition order is preserved for deterministic serialization.
func (d *StyleDict) Define(name string, attrs List) {
	if _, exists := d.styles[name]; !exists {
		d.order = append(d.order, name)
	}
	d.styles[name] = attrs
}

// Lookup returns the raw (unexpanded) definition of name.
func (d *StyleDict) Lookup(name string) (List, bool) {
	l, ok := d.styles[name]
	return l, ok
}

// Names returns defined style names in definition order.
func (d *StyleDict) Names() []string {
	return append([]string(nil), d.order...)
}

// Len reports the number of defined styles.
func (d *StyleDict) Len() int { return len(d.styles) }

// CycleError reports a style that refers to itself directly or indirectly.
type CycleError struct {
	// Chain is the reference path that closes the cycle, e.g.
	// ["caption", "base", "caption"].
	Chain []string
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("attr: style cycle: %v", e.Chain)
}

// UndefinedStyleError reports a reference to a style with no definition.
type UndefinedStyleError struct {
	Name string
	// ReferencedBy is the style (or "" for a node) containing the reference.
	ReferencedBy string
}

func (e *UndefinedStyleError) Error() string {
	if e.ReferencedBy == "" {
		return fmt.Sprintf("attr: undefined style %q", e.Name)
	}
	return fmt.Sprintf("attr: undefined style %q referenced by style %q",
		e.Name, e.ReferencedBy)
}

// Validate checks the acyclicity rule and that every style reference inside
// the dictionary resolves. It returns all problems found, deterministically
// ordered.
func (d *StyleDict) Validate() []error {
	var errs []error
	names := make([]string, 0, len(d.styles))
	for n := range d.styles {
		names = append(names, n)
	}
	sort.Strings(names)

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(d.styles))
	var stack []string
	var visit func(name string) bool // returns true if a cycle was reported
	visit = func(name string) bool {
		color[name] = grey
		stack = append(stack, name)
		defer func() { stack = stack[:len(stack)-1] }()
		for _, ref := range d.refsOf(name) {
			def, ok := d.styles[ref]
			_ = def
			if !ok {
				errs = append(errs, &UndefinedStyleError{Name: ref, ReferencedBy: name})
				continue
			}
			switch color[ref] {
			case white:
				if visit(ref) {
					return true
				}
			case grey:
				// Close the chain at the repeated style.
				chain := append(append([]string(nil), stack...), ref)
				errs = append(errs, &CycleError{Chain: chain})
				return true
			}
		}
		color[name] = black
		return false
	}
	for _, n := range names {
		if color[n] == white {
			visit(n)
		}
	}
	return errs
}

// refsOf extracts the style names referenced by the definition of name.
func (d *StyleDict) refsOf(name string) []string {
	def, ok := d.styles[name]
	if !ok {
		return nil
	}
	return StyleRefs(def)
}

// StyleRefs extracts the style names referenced by an attribute list's
// "style" attribute. The attribute may be a single ID or a list of IDs.
func StyleRefs(l List) []string {
	v, ok := l.Get("style")
	if !ok {
		return nil
	}
	if id, ok := v.AsID(); ok {
		return []string{id}
	}
	items, ok := v.AsList()
	if !ok {
		return nil
	}
	var out []string
	for _, it := range items {
		if id, ok := it.Value.AsID(); ok {
			out = append(out, id)
		}
	}
	return out
}

// Expand applies the styles referenced by attrs, returning a new list in
// which explicit attributes win over style attributes, earlier-listed styles
// win over later ones, and a style's own attributes win over those of the
// styles it references ("the nearer definition wins"). The returned list has
// no "style" attribute.
//
// Expand returns an error on undefined styles or cycles.
func (d *StyleDict) Expand(attrs List) (List, error) {
	out := attrs.Clone()
	refs := StyleRefs(out)
	out.Del("style")
	seen := make(map[string]bool)
	var apply func(ref string, chain []string) error
	apply = func(ref string, chain []string) error {
		for _, c := range chain {
			if c == ref {
				return &CycleError{Chain: append(append([]string(nil), chain...), ref)}
			}
		}
		if seen[ref] {
			return nil
		}
		seen[ref] = true
		def, ok := d.styles[ref]
		if !ok {
			from := ""
			if len(chain) > 0 {
				from = chain[len(chain)-1]
			}
			return &UndefinedStyleError{Name: ref, ReferencedBy: from}
		}
		for _, p := range def.Pairs() {
			if p.Name == "style" {
				continue
			}
			out.SetDefault(p.Name, p.Value.Clone())
		}
		for _, sub := range StyleRefs(def) {
			if err := apply(sub, append(chain, ref)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, ref := range refs {
		if err := apply(ref, nil); err != nil {
			return List{}, err
		}
	}
	return out, nil
}

// ParseStyleDict interprets a "styledict" attribute value: a list of named
// items, each naming a style whose value is itself a list of attribute
// pairs. Example document syntax:
//
//	(styledict (caption ((channel captions) (tformatting ((font helvetica) (size 12))))))
func ParseStyleDict(v Value) (*StyleDict, error) {
	d := NewStyleDict()
	items, ok := v.AsList()
	if !ok {
		return nil, fmt.Errorf("attr: styledict must be a list, got %v", v.Kind())
	}
	for _, it := range items {
		if it.Name == "" {
			return nil, fmt.Errorf("attr: styledict entries must be named")
		}
		body, ok := it.Value.AsList()
		if !ok {
			return nil, fmt.Errorf("attr: style %q body must be a list", it.Name)
		}
		var l List
		for _, sub := range body {
			if sub.Name == "" {
				return nil, fmt.Errorf("attr: style %q contains unnamed attribute", it.Name)
			}
			if l.Has(sub.Name) {
				return nil, fmt.Errorf("attr: style %q repeats attribute %q", it.Name, sub.Name)
			}
			l.Set(sub.Name, sub.Value)
		}
		if _, dup := d.Lookup(it.Name); dup {
			return nil, fmt.Errorf("attr: styledict repeats style %q", it.Name)
		}
		d.Define(it.Name, l)
	}
	return d, nil
}

// DictValue serializes the dictionary back to a "styledict" attribute value.
func (d *StyleDict) DictValue() Value {
	items := make([]Item, 0, len(d.order))
	for _, name := range d.order {
		def := d.styles[name]
		body := make([]Item, 0, def.Len())
		for _, p := range def.Pairs() {
			body = append(body, Named(p.Name, p.Value))
		}
		items = append(items, Named(name, ListOf(body...)))
	}
	return ListOf(items...)
}
