#!/bin/sh
# Nightly minutes-scale cluster churn soak: a 3-node cmifcluster runs
# under a continuous ClusterClient workload (cmifsoak -cluster) while
# this script kill -9s a different node every cycle and restarts it on
# its own data directory, for at least $CYCLES (default 3) kill/rejoin
# cycles. When the churn window closes, the driver's audit phase
# re-fetches EVERY acknowledged write through the cluster and the gate
# fails on a single missing or corrupt block: zero acked-write loss.
#
# Artifacts land in $OUT_DIR (default ./soak-artifacts): the driver's
# SOAK_cluster.json report plus each node's log, uploaded by the
# nightly job so a red run is diagnosable from the workflow page.
#
# Binaries are taken from $BIN (default ./bin) — build them first:
#   go build -o bin/ ./cmd/cmifcluster ./cmd/cmifsoak ./cmd/cmifget
# Run from the repository root: ./scripts/cluster_soak.sh
set -eu

BIN=${BIN:-bin}
OUT_DIR=${OUT_DIR:-soak-artifacts}
N1=127.0.0.1:7951
N2=127.0.0.1:7952
N3=127.0.0.1:7953
SOAK_SECONDS=${SOAK_SECONDS:-180}
CYCLES=${CYCLES:-3}
WORKERS=${WORKERS:-6}

mkdir -p "$OUT_DIR"
work=$(mktemp -d)
n1=""; n2=""; n3=""; driver=""
cleanup() {
    for pid in $driver $n1 $n2 $n3; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in $driver $n1 $n2 $n3; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$work"
}
trap cleanup EXIT

# A node is "up" once it answers a listing; give each a bounded window.
wait_up() {
    i=0
    until "$BIN"/cmifget -addr "$1" -timeout 2s list >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "node $1 never came up" >&2; exit 1; }
        sleep 0.2
    done
}

# A restarted node is safe to leave behind once it has resynced what it
# missed — cmifcluster logs "synced" exactly then.
wait_synced() {
    i=0
    until grep -q "synced" "$1" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -ge 300 ] && { echo "restarted node never reported synced ($1)" >&2; exit 1; }
        sleep 0.2
    done
}

start_node() { # addr datadir peers logfile
    if [ -n "$3" ]; then
        "$BIN"/cmifcluster -addr "$1" -data "$2" -peers "$3" \
            -sync always -gossip-interval 100ms >"$4" 2>&1 &
    else
        "$BIN"/cmifcluster -addr "$1" -data "$2" \
            -sync always -gossip-interval 100ms >"$4" 2>&1 &
    fi
}

start_node "$N1" "$work/n1" ""    "$OUT_DIR/node1.log"; n1=$!
wait_up "$N1"
start_node "$N2" "$work/n2" "$N1" "$OUT_DIR/node2.log"; n2=$!
start_node "$N3" "$work/n3" "$N1" "$OUT_DIR/node3.log"; n3=$!
wait_up "$N2"
wait_up "$N3"
echo "cluster_soak: 3 nodes up, starting ${SOAK_SECONDS}s driver with $CYCLES kill/rejoin cycles"

"$BIN"/cmifsoak -cluster "$N1,$N2,$N3" \
    -seconds "$SOAK_SECONDS" -workers "$WORKERS" \
    -out "$OUT_DIR/SOAK_cluster.json" &
driver=$!

# Spread the cycles across the churn window, leaving the last quarter
# quiet so every restarted node is synced well before the audit.
gap=$((SOAK_SECONDS * 3 / 4 / (CYCLES + 1)))
[ "$gap" -lt 5 ] && gap=5
cycle=0
while [ "$cycle" -lt "$CYCLES" ]; do
    sleep "$gap"
    case $((cycle % 3)) in
        0) victim=$n2; vaddr=$N2; vdata=$work/n2; vlog=$OUT_DIR/node2.log; vpeer=$N1 ;;
        1) victim=$n3; vaddr=$N3; vdata=$work/n3; vlog=$OUT_DIR/node3.log; vpeer=$N1 ;;
        2) victim=$n1; vaddr=$N1; vdata=$work/n1; vlog=$OUT_DIR/node1.log; vpeer=$N2 ;;
    esac
    cycle=$((cycle + 1))
    echo "cluster_soak: cycle $cycle/$CYCLES — kill -9 $vaddr"
    kill -9 "$victim" 2>/dev/null || true
    wait "$victim" 2>/dev/null || true
    sleep 3
    echo "cluster_soak: cycle $cycle/$CYCLES — restarting $vaddr on its data dir"
    : >"$vlog"
    start_node "$vaddr" "$vdata" "$vpeer" "$vlog"
    case $((cycle % 3)) in
        1) n2=$! ;;
        2) n3=$! ;;
        0) n1=$! ;;
    esac
    wait_synced "$vlog"
    echo "cluster_soak: cycle $cycle/$CYCLES — $vaddr resynced"
done

# The driver exits nonzero if any acknowledged write is missing or
# corrupt in the final audit, or if reads failed through the churn.
if wait "$driver"; then
    driver=""
    echo "cluster_soak: zero acked-write loss across $CYCLES kill/rejoin cycles — gate passed"
else
    driver=""
    echo "cluster_soak: GATE FAILED — see $OUT_DIR/SOAK_cluster.json and node logs" >&2
    exit 1
fi
