package codec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestCompressFrameRoundTrip(t *testing.T) {
	raw := bytes.Repeat([]byte("synchronization arc channel view "), 200)
	comp, ok := CompressFrame(raw)
	if !ok {
		t.Fatal("highly repetitive frame did not compress")
	}
	if len(comp) >= len(raw) {
		t.Fatalf("compressed %d >= raw %d", len(comp), len(raw))
	}
	got, err := DecompressFrame(comp, len(raw), 1<<20)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("round trip corrupted the frame")
	}
}

func TestCompressFrameFloor(t *testing.T) {
	small := bytes.Repeat([]byte{'a'}, CompressFloor-1)
	if _, ok := CompressFrame(small); ok {
		t.Fatal("frame below the floor was compressed")
	}
}

func TestCompressFrameIncompressibleBypass(t *testing.T) {
	raw := make([]byte, 1<<16)
	rand.New(rand.NewSource(1)).Read(raw)
	if comp, ok := CompressFrame(raw); ok {
		t.Fatalf("random frame claimed compressible: %d -> %d", len(raw), len(comp))
	}
}

func TestDecompressFrameRejectsOversizedDeclaration(t *testing.T) {
	raw := bytes.Repeat([]byte{'z'}, 4096)
	comp, ok := CompressFrame(raw)
	if !ok {
		t.Fatal("setup: frame did not compress")
	}
	if _, err := DecompressFrame(comp, len(raw), len(raw)-1); !errors.Is(err, ErrCompressedTooLarge) {
		t.Fatalf("want ErrCompressedTooLarge, got %v", err)
	}
	if _, err := DecompressFrame(comp, -1, 1<<20); !errors.Is(err, ErrCompressedTooLarge) {
		t.Fatalf("negative rawLen: want ErrCompressedTooLarge, got %v", err)
	}
}

func TestDecompressFrameRejectsWrongLength(t *testing.T) {
	raw := bytes.Repeat([]byte{'z'}, 4096)
	comp, ok := CompressFrame(raw)
	if !ok {
		t.Fatal("setup: frame did not compress")
	}
	// Understated length: stream inflates past the declaration.
	if _, err := DecompressFrame(comp, len(raw)-10, 1<<20); err == nil {
		t.Fatal("understated rawLen accepted")
	}
	// Overstated length: stream ends early.
	if _, err := DecompressFrame(comp, len(raw)+10, 1<<20); !errors.Is(err, ErrCompressedCorrupt) {
		t.Fatalf("overstated rawLen: want ErrCompressedCorrupt, got %v", err)
	}
}

func TestDecompressFrameRejectsGarbage(t *testing.T) {
	if _, err := DecompressFrame([]byte{0xff, 0x00, 0xab, 0xcd}, 100, 1<<20); err == nil {
		t.Fatal("garbage deflate stream accepted")
	}
}

func TestCompressFrameConcurrent(t *testing.T) {
	// The pooled writers/readers must be safe under concurrent use
	// (each goroutine gets its own instance from the pool).
	raw := bytes.Repeat([]byte("parallel frames "), 512)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				comp, ok := CompressFrame(raw)
				if !ok {
					done <- errors.New("did not compress")
					return
				}
				got, err := DecompressFrame(comp, len(raw), 1<<20)
				if err != nil || !bytes.Equal(got, raw) {
					done <- errors.New("round trip failed")
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
