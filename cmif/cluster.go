package cmif

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// This file is the facade over the cluster tier (internal/cluster):
// JoinCluster runs a node in-process, ClusterClient consumes a cluster of
// nodes through the same Fetcher surface every other tier speaks —
// Pipeline, PrefetchVia, Chain and the cmd/ tools work against a cluster
// exactly as they work against a single server or an edge cache.

// ClusterMember is one node's gossiped membership record.
type ClusterMember = cluster.Member

// ---- serving: JoinCluster -------------------------------------------

// joinConfig collects the join options.
type joinConfig struct {
	cfg   cluster.Config
	grace time.Duration
}

// JoinOption configures JoinCluster. Like DialOption, ServeOption and
// EdgeOption, it is a distinct type, so mixing option sets across
// constructors is a compile error.
type JoinOption func(*joinConfig)

// WithNodeAddr sets the node's listen address (default "127.0.0.1:0").
// The bound address is the node's cluster identity.
func WithNodeAddr(addr string) JoinOption {
	return func(c *joinConfig) { c.cfg.Addr = addr }
}

// WithNodeDataDir sets the node's durable directory; required. A
// rejoining node recovers it, then resyncs what it missed from a peer.
func WithNodeDataDir(dir string) JoinOption {
	return func(c *joinConfig) { c.cfg.DataDir = dir }
}

// WithClusterPeers seeds gossip with other nodes' addresses. The first
// node of a fresh cluster starts with none; every later node lists at
// least one live peer.
func WithClusterPeers(addrs ...string) JoinOption {
	return func(c *joinConfig) { c.cfg.Peers = append(c.cfg.Peers, addrs...) }
}

// WithReplicationFactor sets how many nodes each document and block
// lands on (default 3). Clusters smaller than the factor replicate to
// every node.
func WithReplicationFactor(r int) JoinOption {
	return func(c *joinConfig) { c.cfg.Replication = r }
}

// WithGossipInterval paces membership exchange (default 250ms); failure
// detection and failover latency scale with it.
func WithGossipInterval(d time.Duration) JoinOption {
	return func(c *joinConfig) { c.cfg.GossipInterval = d }
}

// WithNodeSyncPolicy picks the node's WAL fsync policy, exactly as
// WithSyncPolicy does for a single server. SyncAlways gives the strict
// guarantee the cluster bench measures: an acknowledged write survives
// any single node's death.
func WithNodeSyncPolicy(p SyncPolicy) JoinOption {
	return func(c *joinConfig) { c.cfg.Sync = p }
}

// WithNodeAdmission enables server-wide admission control on the node,
// exactly as WithAdmission does for a single server.
func WithNodeAdmission(a AdmissionConfig) JoinOption {
	return func(c *joinConfig) { c.cfg.Admission = a }
}

// WithNodeMetrics registers the node's instruments (server, durability
// and cluster counters) in m.
func WithNodeMetrics(m *Metrics) JoinOption {
	return func(c *joinConfig) { c.cfg.Metrics = m }
}

// WithNodeTimeouts bounds idle connections and response writes, exactly
// as WithIdleTimeout and WithWriteTimeout do for a single server.
func WithNodeTimeouts(idle, write time.Duration) JoinOption {
	return func(c *joinConfig) { c.cfg.IdleTimeout, c.cfg.WriteTimeout = idle, write }
}

// WithNodeMaxInFlight bounds per-connection pipelining, exactly as
// WithMaxInFlight does for a single server.
func WithNodeMaxInFlight(n int) JoinOption {
	return func(c *joinConfig) { c.cfg.MaxInFlight = n }
}

// WithNodeSubscriberQueue bounds each live subscription's event queue,
// exactly as WithSubscriberQueue does for a single server.
func WithNodeSubscriberQueue(n int) JoinOption {
	return func(c *joinConfig) { c.cfg.SubQueueCap = n }
}

// WithNodeCompression turns negotiated per-frame compression for the
// node's protocol-v4 clients on or off (the default is on), exactly as
// WithServerCompression does for a single server.
func WithNodeCompression(on bool) JoinOption {
	return func(c *joinConfig) { c.cfg.Compression = on }
}

// WithNodeShutdownGrace bounds how long Serve waits for in-flight
// requests when its context is cancelled (default 5s), exactly as
// WithShutdownGrace does for a single server.
func WithNodeShutdownGrace(d time.Duration) JoinOption {
	return func(c *joinConfig) {
		if d > 0 {
			c.grace = d
		}
	}
}

// ClusterNode is one serving member of a cluster, run in-process. It is
// a full server — durable corpus, live documents, admission control —
// plus gossip membership, consistent-hash write routing and synchronous
// WAL-record replication. Clients (plain Client, Edge, ClusterClient,
// the cmd/ tools) connect to any node's Addr and see the whole corpus.
type ClusterNode struct {
	n     *cluster.Node
	grace time.Duration
}

// JoinCluster starts a cluster node: recover the data directory, bind
// the listener, join gossip with the configured peers and catch up on
// missed writes in the background (WaitSynced observes the catch-up).
func JoinCluster(opts ...JoinOption) (*ClusterNode, error) {
	cfg := joinConfig{grace: 5 * time.Second}
	cfg.cfg.Addr = "127.0.0.1:0"
	cfg.cfg.Compression = true
	for _, o := range opts {
		o(&cfg)
	}
	n, err := cluster.Start(cfg.cfg)
	if err != nil {
		return nil, err
	}
	return &ClusterNode{n: n, grace: cfg.grace}, nil
}

// Addr returns the node's bound address — its cluster identity.
func (cn *ClusterNode) Addr() string { return cn.n.Addr() }

// Members returns the node's current membership view.
func (cn *ClusterNode) Members() []ClusterMember { return cn.n.Members() }

// Synced reports whether the startup resync has completed.
func (cn *ClusterNode) Synced() bool { return cn.n.Synced() }

// WaitSynced blocks until the startup resync completes or ctx expires.
func (cn *ClusterNode) WaitSynced(ctx context.Context) error { return cn.n.WaitSynced(ctx) }

// DurableStats reports the node's write-ahead-log activity.
func (cn *ClusterNode) DurableStats() DurableStats { return cn.n.DurableStats() }

// Shutdown drains in-flight requests (bounded by ctx), leaves gossip and
// closes the durable log.
func (cn *ClusterNode) Shutdown(ctx context.Context) error { return cn.n.Shutdown(ctx) }

// Serve blocks until ctx is cancelled, then drains gracefully within the
// configured grace period — the same lifecycle Server.Serve and
// Edge.Serve offer, so a node slots into the shared daemon scaffolding.
func (cn *ClusterNode) Serve(ctx context.Context) error {
	<-ctx.Done()
	graceCtx, cancel := context.WithTimeout(context.Background(), cn.grace)
	defer cancel()
	return cn.Shutdown(graceCtx)
}

// Close force-closes the node without draining — the programmatic
// equivalent of killing it. Acknowledged writes are already journaled.
func (cn *ClusterNode) Close() error {
	cn.n.Kill()
	return nil
}

// ---- consuming: ClusterClient ---------------------------------------

// clusterClientConfig collects the cluster dial options.
type clusterClientConfig struct {
	timeout     time.Duration
	cache       *BlockCache
	replication int
	refresh     time.Duration
}

// ClusterOption configures DialCluster.
type ClusterOption func(*clusterClientConfig)

// WithClusterRequestTimeout bounds each round trip that carries no
// context deadline of its own. Zero (the default) means unbounded.
func WithClusterRequestTimeout(d time.Duration) ClusterOption {
	return func(c *clusterClientConfig) { c.timeout = d }
}

// WithClusterCache gives the client an LRU block cache of size blocks,
// shared across every node connection, exactly as WithCache does for a
// single-server client.
func WithClusterCache(size int) ClusterOption {
	return func(c *clusterClientConfig) { c.cache = NewBlockCache(size) }
}

// WithClusterSharedCache attaches an existing cache (NewBlockCache).
func WithClusterSharedCache(cache *BlockCache) ClusterOption {
	return func(c *clusterClientConfig) { c.cache = cache }
}

// WithClusterReplication tells the client the cluster's replication
// factor (default 3), so reads route straight to a replica of the key
// and writes straight to its primary — saving the proxy hop a
// mis-routed request costs. A wrong value is never incorrect, only
// slower: every node answers every request.
func WithClusterReplication(r int) ClusterOption {
	return func(c *clusterClientConfig) { c.replication = r }
}

// WithMembershipRefresh sets how often the client re-pulls the
// membership view from a node (default 2s). Failures refresh
// immediately regardless.
func WithMembershipRefresh(d time.Duration) ClusterOption {
	return func(c *clusterClientConfig) { c.refresh = d }
}

// ClusterClient consumes a whole cluster through one handle: it tracks
// membership by gossiping with the nodes, routes each request to a
// replica of the key it touches, and fails over to the next replica when
// a node dies mid-conversation. It implements Fetcher, so pipelines,
// prefetch, chains and the cmd/ tools run against a cluster unchanged.
type ClusterClient struct {
	cfg   clusterClientConfig
	seeds []string

	mu        sync.Mutex
	members   []ClusterMember // alive members, sorted by ID
	clients   map[string]*Client
	refreshed time.Time
	rr        int
}

// DialCluster connects to a cluster via one or more seed node addresses
// and discovers the full membership from whichever answers first.
func DialCluster(ctx context.Context, seeds []string, opts ...ClusterOption) (*ClusterClient, error) {
	cfg := clusterClientConfig{
		replication: cluster.DefaultReplication,
		refresh:     2 * time.Second,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.replication < 1 {
		cfg.replication = 1
	}
	if len(seeds) == 0 {
		return nil, errors.New("cmif: DialCluster needs at least one seed address")
	}
	cc := &ClusterClient{
		cfg:     cfg,
		seeds:   append([]string(nil), seeds...),
		clients: make(map[string]*Client),
	}
	if err := cc.refreshMembership(ctx); err != nil {
		return nil, err
	}
	return cc, nil
}

// refreshMembership pulls the gossip view from the first reachable node
// (known members first, then the seeds) and keeps its alive records.
func (cc *ClusterClient) refreshMembership(ctx context.Context) error {
	cc.mu.Lock()
	candidates := make([]string, 0, len(cc.members)+len(cc.seeds))
	seen := make(map[string]bool)
	for _, m := range cc.members {
		if !seen[m.Addr] {
			candidates = append(candidates, m.Addr)
			seen[m.Addr] = true
		}
	}
	for _, s := range cc.seeds {
		if !seen[s] {
			candidates = append(candidates, s)
			seen[s] = true
		}
	}
	cc.mu.Unlock()

	var lastErr error
	for _, addr := range candidates {
		view, err := gossipView(ctx, addr)
		if err != nil {
			lastErr = err
			continue
		}
		alive := view[:0]
		for _, m := range view {
			if m.State == cluster.StateAlive {
				alive = append(alive, m)
			}
		}
		if len(alive) == 0 {
			lastErr = fmt.Errorf("cmif: node %s reports no alive members", addr)
			continue
		}
		cc.mu.Lock()
		cc.members = append([]ClusterMember(nil), alive...)
		cc.refreshed = time.Now()
		cc.mu.Unlock()
		return nil
	}
	return fmt.Errorf("cmif: no cluster node reachable: %w", lastErr)
}

// gossipView pulls one node's membership view over a transient
// connection.
func gossipView(ctx context.Context, addr string) ([]ClusterMember, error) {
	tc, err := transport.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer tc.Close()
	data, err := tc.GossipExchange(ctx, nil)
	if err != nil {
		return nil, err
	}
	return cluster.DecodeMembers(data)
}

// Members returns the client's current view of the alive membership.
func (cc *ClusterClient) Members() []ClusterMember {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return append([]ClusterMember(nil), cc.members...)
}

// Close closes every node connection.
func (cc *ClusterClient) Close() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	var first error
	for _, c := range cc.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	cc.clients = make(map[string]*Client)
	cc.members = nil
	return first
}

// candidates orders node addresses for one request: the key's replicas
// first (placement-aware), then every other alive member as fallback.
// With an empty key the order is a rotating round-robin.
func (cc *ClusterClient) candidates(ctx context.Context, key string) ([]string, error) {
	cc.mu.Lock()
	stale := time.Since(cc.refreshed) > cc.cfg.refresh || len(cc.members) == 0
	cc.mu.Unlock()
	if stale {
		if err := cc.refreshMembership(ctx); err != nil {
			return nil, err
		}
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if len(cc.members) == 0 {
		return nil, errors.New("cmif: no alive cluster members")
	}
	addrOf := make(map[string]string, len(cc.members))
	ids := make([]string, 0, len(cc.members))
	for _, m := range cc.members {
		addrOf[m.ID] = m.Addr
		ids = append(ids, m.ID)
	}
	var order []string
	if key != "" {
		ring := cluster.NewRing(ids, 0)
		order = ring.ReplicaSet(key, cc.cfg.replication)
	}
	inOrder := make(map[string]bool, len(order))
	for _, id := range order {
		inOrder[id] = true
	}
	rot := cc.rr
	cc.rr++
	for i := range ids {
		id := ids[(rot+i)%len(ids)]
		if !inOrder[id] {
			order = append(order, id)
		}
	}
	addrs := make([]string, len(order))
	for i, id := range order {
		addrs[i] = addrOf[id]
	}
	return addrs, nil
}

// client returns (dialing on first use) the pooled client for addr.
func (cc *ClusterClient) client(ctx context.Context, addr string) (*Client, error) {
	cc.mu.Lock()
	if c, ok := cc.clients[addr]; ok {
		cc.mu.Unlock()
		return c, nil
	}
	cc.mu.Unlock()
	opts := []DialOption{WithRequestTimeout(cc.cfg.timeout)}
	if cc.cfg.cache != nil {
		opts = append(opts, WithSharedCache(cc.cfg.cache))
	}
	c, err := Dial(ctx, addr, opts...)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	if prev, ok := cc.clients[addr]; ok {
		cc.mu.Unlock()
		c.Close()
		return prev, nil
	}
	cc.clients[addr] = c
	cc.mu.Unlock()
	return c, nil
}

// dropNode forgets a node that failed at the connection level: its
// client closes and its member record is removed until the next
// membership refresh re-discovers it (or not).
func (cc *ClusterClient) dropNode(addr string) {
	cc.mu.Lock()
	if c, ok := cc.clients[addr]; ok {
		delete(cc.clients, addr)
		go c.Close()
	}
	kept := cc.members[:0]
	for _, m := range cc.members {
		if m.Addr != addr {
			kept = append(kept, m)
		}
	}
	cc.members = kept
	// Force a refresh on the next request, so a transient blip does not
	// shrink the view for a whole refresh interval.
	cc.refreshed = time.Time{}
	cc.mu.Unlock()
}

// do runs op against the key's candidate nodes in order, failing over on
// connection-level errors. An error the node itself answered (ErrRemote
// wraps it: busy, conflict) is authoritative and returns immediately — a
// dead node never produces one. Not-found is the one exception: a node
// that rejoined mid-churn can be missing a write that raced its resync
// window (the write was acked by a primary whose gossip view did not yet
// include it), so one replica's not-found does not speak for the
// cluster. The remaining candidates are tried, and not-found is returned
// only once every one of them agrees — a genuinely absent key costs a
// membership-wide walk, a present one is found wherever it lives.
func (cc *ClusterClient) do(ctx context.Context, key string, op func(c *Client) error) error {
	addrs, err := cc.candidates(ctx, key)
	if err != nil {
		return err
	}
	var lastErr, notFound error
	for _, addr := range addrs {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := cc.client(ctx, addr)
		if err != nil {
			cc.dropNode(addr)
			lastErr = err
			continue
		}
		err = op(c)
		if err != nil && errors.Is(err, ErrNotFound) {
			notFound = err
			continue
		}
		if err == nil || errors.Is(err, ErrRemote) || errors.Is(err, ErrUnsupported) {
			return err
		}
		cc.dropNode(addr)
		lastErr = err
	}
	if notFound != nil {
		return notFound
	}
	if lastErr == nil {
		lastErr = errors.New("cmif: no alive cluster members")
	}
	return fmt.Errorf("cmif: cluster request failed on every replica: %w", lastErr)
}

// ---- the Fetcher surface (plus writes) -------------------------------

// OpenDoc fetches the document registered under name from a replica.
func (cc *ClusterClient) OpenDoc(ctx context.Context, name string) (*Document, error) {
	var d *Document
	err := cc.do(ctx, cluster.DocKey(name), func(c *Client) error {
		var oerr error
		d, oerr = c.OpenDoc(ctx, name)
		return oerr
	})
	return d, err
}

// Blocks fetches many blocks at once. Any node answers the whole batch
// (foreign names are proxied node-side), so one round trip suffices
// regardless of placement.
func (cc *ClusterClient) Blocks(ctx context.Context, names []string) ([]*Block, error) {
	var blocks []*Block
	key := ""
	if len(names) == 1 {
		key = cluster.BlockKey(names[0])
	}
	err := cc.do(ctx, key, func(c *Client) error {
		var berr error
		blocks, berr = c.Blocks(ctx, names)
		return berr
	})
	return blocks, err
}

// Descriptors fetches the attribute lists of the named blocks.
func (cc *ClusterClient) Descriptors(ctx context.Context, names []string) (map[string]AttrList, error) {
	var descs map[string]AttrList
	err := cc.do(ctx, "", func(c *Client) error {
		var derr error
		descs, derr = c.Descriptors(ctx, names)
		return derr
	})
	return descs, err
}

// Subscribe opens a live replica of the document, served by one of the
// key's cluster replicas.
func (cc *ClusterClient) Subscribe(ctx context.Context, name string, opts ...SubscribeOption) (*Subscription, error) {
	var sub *Subscription
	err := cc.do(ctx, cluster.DocKey(name), func(c *Client) error {
		var serr error
		sub, serr = c.Subscribe(ctx, name, opts...)
		return serr
	})
	return sub, err
}

// Put registers a document cluster-wide: the receiving node journals it
// at the key's primary and replicates before acknowledging.
func (cc *ClusterClient) Put(ctx context.Context, name string, d *Document, opts ...WireOption) error {
	return cc.do(ctx, cluster.DocKey(name), func(c *Client) error {
		return c.Put(ctx, name, d, opts...)
	})
}

// PutBlock stores a block cluster-wide, returning its content address.
func (cc *ClusterClient) PutBlock(ctx context.Context, b *Block) (string, error) {
	key := cluster.BlockKey(b.ID)
	if b.Name != "" {
		key = cluster.BlockKey(b.Name)
	}
	var id string
	err := cc.do(ctx, key, func(c *Client) error {
		var perr error
		id, perr = c.PutBlock(ctx, b)
		return perr
	})
	return id, err
}

// SubmitEdit submits an edit batch against a clustered document; the
// receiving node applies it at the document's primary. Conflicts
// classify as ErrConflict exactly as against a single server.
func (cc *ClusterClient) SubmitEdit(ctx context.Context, name string, b *EditBatch) (uint64, error) {
	var gen uint64
	err := cc.do(ctx, cluster.DocKey(name), func(c *Client) error {
		var serr error
		gen, serr = c.SubmitEdit(ctx, name, b)
		return serr
	})
	return gen, err
}

// List returns the names of every document the cluster holds, sorted —
// each node merges its peers' listings.
func (cc *ClusterClient) List(ctx context.Context) ([]string, error) {
	var names []string
	err := cc.do(ctx, "", func(c *Client) error {
		var lerr error
		names, lerr = c.List(ctx)
		return lerr
	})
	return names, err
}

// Prefetch resolves every external file the document references through
// the cluster, returning a local store ready to back a Pipeline run.
func (cc *ClusterClient) Prefetch(ctx context.Context, d *Document) (*Store, error) {
	return PrefetchVia(ctx, cc, d)
}

// ClusterClient implements Fetcher.
var _ Fetcher = (*ClusterClient)(nil)
