package durable

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/chunker"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/ddbms"
	"repro/internal/media"
)

// State is the recovered corpus: the block store, the descriptor database
// and the registered documents. Open and Load rebuild one by replaying the
// newest snapshot plus the WAL tail. Once the log is attached as the
// store's and database's journal, State stays the live corpus: Log.PutDoc
// and Log.DelDoc keep Docs in step with what they journal.
type State struct {
	Store *media.Store
	DB    *ddbms.DB
	Docs  map[string]*core.Document

	// descMemo caches descriptor parses by their wire text during
	// replay: a corpus of same-shaped blocks repeats a handful of
	// descriptor texts thousands of times, and re-parsing each one
	// would dominate recovery. Consumers clone before mutating, so
	// sharing the parsed list is safe.
	descMemo map[string]attr.List

	// replayChunks stages recChunk records (snapshot-only) so the
	// recPutBlkC records that follow can reassemble their payloads.
	// Populated lazily during snapshot replay, released by recovery once
	// all files are replayed — it holds one copy of each unique chunk,
	// transiently doubling their footprint, and must not outlive replay.
	replayChunks map[ChunkHash][]byte
}

// ChunkHash mirrors media.ChunkHash for the snapshot chunk records.
type ChunkHash = media.ChunkHash

func newState() *State {
	return &State{
		Store:    media.NewStore(),
		DB:       ddbms.New(),
		Docs:     make(map[string]*core.Document),
		descMemo: make(map[string]attr.List),
	}
}

// parseDesc is parseDescriptor with the replay memo in front.
func (st *State) parseDesc(data []byte) (attr.List, error) {
	if cached, ok := st.descMemo[string(data)]; ok {
		return cached, nil
	}
	desc, err := parseDescriptor(data)
	if err != nil {
		return attr.List{}, err
	}
	st.descMemo[string(data)] = desc
	return desc, nil
}

// apply replays one decoded record into the state. Errors wrap the
// offending op; arbitrary bytes must never panic, only fail (the fuzzed
// guarantee).
func (st *State) apply(op byte, fields [][]byte) error {
	want := func(n int) error {
		if len(fields) != n {
			return fmt.Errorf("op %d: want %d fields, got %d", op, n, len(fields))
		}
		return nil
	}
	switch op {
	case recPutDoc:
		if err := want(2); err != nil {
			return err
		}
		d, err := codec.DecodeBinary(fields[1])
		if err != nil {
			return fmt.Errorf("putdoc %q: %w", fields[0], err)
		}
		st.Docs[string(fields[0])] = d
	case recDelDoc:
		if err := want(1); err != nil {
			return err
		}
		delete(st.Docs, string(fields[0]))
	case recPutBlk:
		if err := want(6); err != nil {
			return err
		}
		if len(fields[5]) != 1 {
			return fmt.Errorf("putblk: bad register flag")
		}
		b, err := st.blockFromRecord(fields)
		if err != nil {
			return fmt.Errorf("putblk %q: %w", fields[1], err)
		}
		if b.ID != string(fields[0]) {
			return fmt.Errorf("putblk %q: recorded content address %.12s does not match payload (%.12s)",
				fields[1], fields[0], b.ID)
		}
		st.Store.PutOwned(b, fields[5][0] == 1)
	case recDelBlk:
		if err := want(1); err != nil {
			return err
		}
		st.Store.Delete(string(fields[0]))
	case recPutDesc:
		if err := want(2); err != nil {
			return err
		}
		desc, err := st.parseDesc(fields[1])
		if err != nil {
			return fmt.Errorf("putdesc %q: %w", fields[0], err)
		}
		st.DB.Upsert(string(fields[0]), desc)
	case recDelDesc:
		if err := want(1); err != nil {
			return err
		}
		st.DB.Delete(string(fields[0]))
	case recChunk:
		if err := want(2); err != nil {
			return err
		}
		if len(fields[0]) != chunker.HashSize {
			return fmt.Errorf("chunk: bad hash length %d", len(fields[0]))
		}
		var h ChunkHash
		copy(h[:], fields[0])
		if chunker.Sum(fields[1]) != h {
			return fmt.Errorf("chunk %.12x: bytes do not match recorded hash", fields[0])
		}
		if st.replayChunks == nil {
			st.replayChunks = make(map[ChunkHash][]byte)
		}
		// Detach from the scanner's scratch buffer; the staged copy is
		// shared by every block manifest that references it.
		st.replayChunks[h] = append(make([]byte, 0, len(fields[1])), fields[1]...)
	case recPutBlkC:
		if err := want(6); err != nil {
			return err
		}
		if len(fields[5]) != 1 {
			return fmt.Errorf("putblkc: bad register flag")
		}
		payload, err := st.assembleChunks(fields[4])
		if err != nil {
			return fmt.Errorf("putblkc %q: %w", fields[1], err)
		}
		b, err := st.blockFromParts(fields[1], fields[2], fields[3], payload)
		if err != nil {
			return fmt.Errorf("putblkc %q: %w", fields[1], err)
		}
		if b.ID != string(fields[0]) {
			return fmt.Errorf("putblkc %q: recorded content address %.12s does not match payload (%.12s)",
				fields[1], fields[0], b.ID)
		}
		st.Store.PutOwned(b, fields[5][0] == 1)
	case recName:
		if err := want(2); err != nil {
			return err
		}
		// Best-effort: a registration whose block a later-journaled (but
		// racing) delete already removed skips silently — the live store
		// rolled the same registration back, so skipping converges on
		// the pre-crash state.
		st.Store.RegisterName(string(fields[0]), string(fields[1]))
	default:
		return fmt.Errorf("unknown record op %d", op)
	}
	return nil
}

// blockFromRecord rebuilds a block from recPutBlk fields, recomputing its
// content address from medium and payload. The payload detaches from the
// scanner's scratch buffer exactly once.
func (st *State) blockFromRecord(fields [][]byte) (*media.Block, error) {
	payload := append(make([]byte, 0, len(fields[4])), fields[4]...)
	return st.blockFromParts(fields[1], fields[2], fields[3], payload)
}

// blockFromParts assembles a block from replayed parts, taking ownership
// of payload (callers pass a detached or freshly assembled slice).
func (st *State) blockFromParts(name, mediumText, descText, payload []byte) (*media.Block, error) {
	medium, err := core.ParseMedium(string(mediumText))
	if err != nil {
		return nil, err
	}
	desc, err := st.parseDesc(descText)
	if err != nil {
		return nil, fmt.Errorf("descriptor: %w", err)
	}
	if n, ok := desc.GetInt(media.DescBytes); ok && n != int64(len(payload)) {
		return nil, fmt.Errorf("descriptor bytes attribute %d disagrees with %d-byte payload",
			n, len(payload))
	}
	// Assembled by hand rather than through NewBlock, and inserted via
	// PutOwned: the journaled descriptor already carries the bytes and
	// format attributes NewBlock would re-derive, the payload is copied
	// exactly once, and the memoized descriptor is shared — immutably —
	// across every block that repeats its text. Recovery cost per block
	// is one hash, one copy.
	return &media.Block{
		ID:         media.ContentAddress(medium, payload),
		Name:       string(name),
		Medium:     medium,
		Payload:    payload,
		Descriptor: desc,
	}, nil
}

// assembleChunks rebuilds a recPutBlkC payload from its manifest — a
// concatenation of fixed-size chunk hashes, each staged by an earlier
// recChunk in the same snapshot. Every chunk's hash was verified when it
// was staged and the caller verifies the whole payload's content
// address, so assembly is pure concatenation.
func (st *State) assembleChunks(manifest []byte) ([]byte, error) {
	if len(manifest) == 0 || len(manifest)%chunker.HashSize != 0 {
		return nil, fmt.Errorf("manifest length %d not a multiple of hash size", len(manifest))
	}
	total := 0
	for off := 0; off < len(manifest); off += chunker.HashSize {
		var h ChunkHash
		copy(h[:], manifest[off:])
		data, ok := st.replayChunks[h]
		if !ok {
			return nil, fmt.Errorf("manifest references unstaged chunk %.12x", h[:])
		}
		total += len(data)
		if total > maxRecordBytes {
			return nil, fmt.Errorf("assembled payload exceeds %d bytes", maxRecordBytes)
		}
	}
	payload := make([]byte, 0, total)
	for off := 0; off < len(manifest); off += chunker.HashSize {
		var h ChunkHash
		copy(h[:], manifest[off:])
		payload = append(payload, st.replayChunks[h]...)
	}
	return payload, nil
}

// releaseReplayChunks drops the chunk staging table once replay is done;
// the assembled payloads own their bytes and the staging copies would
// otherwise linger for the process lifetime.
func (st *State) releaseReplayChunks() { st.replayChunks = nil }

// encodeDescriptor serializes an attribute list as an embedded CMIF
// fragment — the same representation the wire protocol ships descriptors
// in, so one proven round-trip serves both layers.
func encodeDescriptor(desc attr.List) ([]byte, error) {
	n := core.NewExt()
	for _, p := range desc.Pairs() {
		n.Attrs.Set(p.Name, p.Value)
	}
	text, err := codec.EncodeNode(n, codec.WriteOptions{Form: codec.Embedded})
	if err != nil {
		return nil, err
	}
	return []byte(text), nil
}

// parseDescriptor inverts encodeDescriptor.
func parseDescriptor(data []byte) (attr.List, error) {
	n, err := codec.ParseNode(string(data))
	if err != nil {
		return attr.List{}, err
	}
	return n.Attrs.Clone(), nil
}
