package newsdoc

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/player"
	"repro/internal/sched"
)

func TestBuildValidates(t *testing.T) {
	d, store, err := Build(Config{Stories: 2})
	if err != nil {
		t.Fatal(err)
	}
	if errs := core.Errors(d.Validate()); len(errs) != 0 {
		t.Fatalf("news document invalid: %v", errs)
	}
	if d.Channels().Len() != 5 {
		t.Errorf("channels = %d", d.Channels().Len())
	}
	// Every external node's file resolves in the store.
	for _, leaf := range d.Root.Leaves() {
		if leaf.Type != core.Ext {
			continue
		}
		file, ok := d.FileOf(leaf)
		if !ok {
			t.Errorf("%s has no file", leaf.PathString())
			continue
		}
		if _, ok := store.GetByName(file); !ok {
			t.Errorf("block %q missing from store", file)
		}
	}
	if err := store.VerifyAll(); err != nil {
		t.Error(err)
	}
}

func TestBuildSchedules(t *testing.T) {
	d, _, err := Build(Config{Stories: 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sched.Build(d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Solve(sched.SolveOptions{Relax: true})
	if err != nil {
		t.Fatal(err)
	}
	// Stories are sequential: story-1 starts when story-0 ends.
	s0 := d.Root.FindByName("story-0")
	s1 := d.Root.FindByName("story-1")
	if s.StartOf(s1) != s.EndOf(s0) {
		t.Errorf("story-1 starts %v, story-0 ends %v", s.StartOf(s1), s.EndOf(s0))
	}
	// The caption gate forces the crime scene to start at cap-4's end
	// (8s into captions), not at talking-head-1's end (4s): freeze-frame.
	crime := s0.FindByName("crime-scene")
	if got := s.StartOf(crime); got != 8*time.Second {
		t.Errorf("crime scene starts %v, want 8s (caption gate)", got)
	}
	th1 := s0.FindByName("talking-head-1")
	if stretch := s.StretchOf(th1, nil); stretch != 4*time.Second {
		t.Errorf("talking head stretch = %v, want 4s freeze-frame", stretch)
	}
	// No channel overlaps.
	if conflicts := s.ChannelConflicts(); len(conflicts) != 0 {
		t.Errorf("channel conflicts: %v", conflicts)
	}
}

func TestBuildPlays(t *testing.T) {
	d, _, err := Build(Config{Stories: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sched.Build(d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := player.Play(g, player.Options{
		Jitter: player.UniformJitter(3, 40*time.Millisecond),
		Relax:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Errorf("news playback violated must arcs: %v", res.MustViolations)
	}
	if len(res.Trace) == 0 {
		t.Error("empty trace")
	}
}

func TestConfigDefaults(t *testing.T) {
	d, store, err := Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	stories := 0
	for _, c := range d.Root.Children() {
		if c.Name() != "" {
			stories++
		}
	}
	if stories != 3 {
		t.Errorf("default stories = %d", stories)
	}
	if store.Len() == 0 {
		t.Error("empty store")
	}
}

func TestSeedsDiffer(t *testing.T) {
	_, s1, err := Build(Config{Stories: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := Build(Config{Stories: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := s1.GetByName("story0-voice.aud")
	b2, _ := s2.GetByName("story0-voice.aud")
	if b1.ID == b2.ID {
		t.Error("different seeds produced identical media")
	}
	// Same seed reproduces bit-for-bit.
	_, s3, err := Build(Config{Stories: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := s3.GetByName("story0-voice.aud")
	if b1.ID != b3.ID {
		t.Error("same seed produced different media")
	}
}
