package sched

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/units"
)

// doc builds a Document and fails the test on error.
func doc(t *testing.T, root *core.Node) *core.Document {
	t.Helper()
	d, err := core.NewDocument(root)
	if err != nil {
		t.Fatal(err)
	}
	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "video", Medium: core.MediumVideo,
		Rates: units.Rates{FrameRate: 25}})
	cd.Define(core.Channel{Name: "sound", Medium: core.MediumAudio,
		Rates: units.Rates{SampleRate: 8000}})
	cd.Define(core.Channel{Name: "text", Medium: core.MediumText})
	d.SetChannels(cd)
	return d
}

// leaf builds an ext leaf with a millisecond duration on a channel.
func leaf(name, channel string, ms int64) *core.Node {
	return core.NewExt().SetName(name).
		SetAttr("channel", attr.ID(channel)).
		SetAttr("file", attr.String(name+".dat")).
		SetAttr("duration", attr.Quantity(units.MS(ms)))
}

func solve(t *testing.T, d *core.Document, opts Options, sopts SolveOptions) *Schedule {
	t.Helper()
	g, err := Build(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Solve(sopts)
	if err != nil {
		t.Fatal(err)
	}
	if viol := g.Verify(s.Times(), s.Dropped); len(viol) != 0 {
		t.Fatalf("schedule violates its own constraints: %v", viol)
	}
	return s
}

func TestSeqSchedulesSequentially(t *testing.T) {
	root := core.NewSeq().SetName("r")
	a, b, c := leaf("a", "video", 100), leaf("b", "video", 200), leaf("c", "video", 50)
	root.Add(a, b, c)
	s := solve(t, doc(t, root), Options{}, SolveOptions{})

	if s.StartOf(a) != 0 || s.EndOf(a) != 100*time.Millisecond {
		t.Errorf("a: [%v, %v]", s.StartOf(a), s.EndOf(a))
	}
	if s.StartOf(b) != 100*time.Millisecond || s.EndOf(b) != 300*time.Millisecond {
		t.Errorf("b: [%v, %v]", s.StartOf(b), s.EndOf(b))
	}
	if s.StartOf(c) != 300*time.Millisecond || s.EndOf(c) != 350*time.Millisecond {
		t.Errorf("c: [%v, %v]", s.StartOf(c), s.EndOf(c))
	}
	if s.EndOf(root) != 350*time.Millisecond {
		t.Errorf("seq parent end = %v", s.EndOf(root))
	}
	if s.Makespan() != 350*time.Millisecond {
		t.Errorf("makespan = %v", s.Makespan())
	}
}

func TestParWaitsForSlowest(t *testing.T) {
	root := core.NewPar().SetName("r")
	fast, slow := leaf("fast", "video", 100), leaf("slow", "sound", 500)
	root.Add(fast, slow)
	s := solve(t, doc(t, root), Options{}, SolveOptions{})

	if s.StartOf(fast) != 0 || s.StartOf(slow) != 0 {
		t.Errorf("par children start: %v, %v", s.StartOf(fast), s.StartOf(slow))
	}
	// "start the successor when the slowest parallel node finishes"
	if s.EndOf(root) != 500*time.Millisecond {
		t.Errorf("par end = %v, want 500ms", s.EndOf(root))
	}
}

func TestNestedStructure(t *testing.T) {
	// par( seq(a, b), c ) with c longer than a+b.
	root := core.NewPar().SetName("r")
	s1 := core.NewSeq().SetName("s1")
	a, b := leaf("a", "video", 100), leaf("b", "video", 100)
	s1.Add(a, b)
	c := leaf("c", "sound", 900)
	root.Add(s1, c)
	s := solve(t, doc(t, root), Options{}, SolveOptions{})

	if s.EndOf(s1) != 200*time.Millisecond {
		t.Errorf("inner seq end = %v", s.EndOf(s1))
	}
	if s.EndOf(root) != 900*time.Millisecond {
		t.Errorf("outer par end = %v", s.EndOf(root))
	}
}

func TestFrameDurationsUseChannelRates(t *testing.T) {
	root := core.NewSeq().SetName("r")
	v := core.NewExt().SetName("v").
		SetAttr("channel", attr.ID("video")).
		SetAttr("file", attr.String("v.vid")).
		SetAttr("duration", attr.Quantity(units.Q(50, units.Frames))) // 2s at 25fps
	root.AddChild(v)
	s := solve(t, doc(t, root), Options{}, SolveOptions{})
	if s.EndOf(v) != 2*time.Second {
		t.Errorf("50fr at 25fps = %v, want 2s", s.EndOf(v))
	}
}

func TestOffsetArc(t *testing.T) {
	// Graphic starts 40ms after the audio begins (the paper's offset
	// synchronization between the graphic channel and the audio portion).
	root := core.NewPar().SetName("r")
	audio := leaf("audio", "sound", 1000)
	graphic := leaf("graphic", "text", 300)
	graphic.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../audio", SrcEnd: core.Begin,
		Offset: units.MS(40), Dest: "",
	})
	root.Add(audio, graphic)
	s := solve(t, doc(t, root), Options{}, SolveOptions{})
	if s.StartOf(graphic) != 40*time.Millisecond {
		t.Errorf("graphic start = %v, want 40ms", s.StartOf(graphic))
	}
}

func TestEndToBeginArcForcesStretch(t *testing.T) {
	// seq(video1, video2) with caption in parallel; an arc from the end of
	// the caption to the begin of video2 means "a new video sequence may
	// not start until the caption text is over" — video1 must freeze-frame.
	root := core.NewPar().SetName("r")
	vseq := core.NewSeq().SetName("vseq")
	v1, v2 := leaf("v1", "video", 100), leaf("v2", "video", 100)
	vseq.Add(v1, v2)
	cap := leaf("cap", "text", 400)
	v2.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../../cap", SrcEnd: core.End, Dest: "",
		MaxDelay: units.InfiniteQuantity(),
	})
	root.Add(vseq, cap)
	s := solve(t, doc(t, root), Options{}, SolveOptions{})

	if s.StartOf(v2) != 400*time.Millisecond {
		t.Errorf("v2 start = %v, want 400ms", s.StartOf(v2))
	}
	// v1 stretched from 100ms to 400ms: 300ms of freeze-frame.
	if got := s.StretchOf(v1, nil); got != 300*time.Millisecond {
		t.Errorf("v1 stretch = %v, want 300ms", got)
	}
	if got := s.StretchOf(v2, nil); got != 0 {
		t.Errorf("v2 stretch = %v, want 0", got)
	}
}

func TestRigidLeavesConflict(t *testing.T) {
	// Same shape as above, but rigid leaves: v1 cannot stretch, so the
	// constraint set is unsatisfiable (conflict case 1).
	root := core.NewPar().SetName("r")
	vseq := core.NewSeq().SetName("vseq")
	v1, v2 := leaf("v1", "video", 100), leaf("v2", "video", 100)
	vseq.Add(v1, v2)
	cap := leaf("cap", "text", 400)
	// v1 must start together with the caption...
	v1.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../../cap", SrcEnd: core.Begin, Dest: "",
		MaxDelay: units.MS(0),
	})
	// ...and v2 may not start until the caption is over.
	v2.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../../cap", SrcEnd: core.End, Dest: "",
		MaxDelay: units.MS(0),
	})
	root.Add(vseq, cap)

	g, err := Build(doc(t, root), Options{RigidLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Solve(SolveOptions{})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want ConflictError, got %v", err)
	}
	if len(ce.Cycle) == 0 {
		t.Error("conflict cycle empty")
	}
	if !strings.Contains(ce.Error(), "unsatisfiable") {
		t.Errorf("conflict message: %v", ce)
	}
	// But the hard upper bound itself is a must arc: MustArcs reports it.
	if len(ce.MustArcs()) == 0 {
		t.Error("must arcs on cycle not reported")
	}
}

func TestMayArcRelaxation(t *testing.T) {
	// Two contradictory hard arcs; one is May and gets dropped.
	root := core.NewPar().SetName("r")
	a, b := leaf("a", "video", 100), leaf("b", "sound", 100)
	// Must: b begins exactly 200ms after a begins.
	b.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../a", SrcEnd: core.Begin, Offset: units.MS(200), Dest: "",
	})
	// May: b begins exactly when a begins (contradiction).
	b.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.May,
		Source: "../a", SrcEnd: core.Begin, Dest: "",
	})
	root.Add(a, b)

	g, err := Build(doc(t, root), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Without relaxation: conflict.
	if _, err := g.Solve(SolveOptions{}); err == nil {
		t.Fatal("contradiction not detected")
	}
	// With relaxation: the May arc is dropped, the Must arc honoured.
	s, err := g.Solve(SolveOptions{Relax: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dropped) != 1 || s.Dropped[0].Arc.Strict != core.May {
		t.Errorf("dropped = %v", s.Dropped)
	}
	if s.StartOf(b)-s.StartOf(a) != 200*time.Millisecond {
		t.Errorf("must arc not honoured: %v vs %v", s.StartOf(b), s.StartOf(a))
	}
}

func TestMustConflictNotRelaxable(t *testing.T) {
	root := core.NewPar().SetName("r")
	a, b := leaf("a", "video", 100), leaf("b", "sound", 100)
	b.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.Must,
		Source: "../a", SrcEnd: core.Begin, Offset: units.MS(200), Dest: ""})
	b.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.Must,
		Source: "../a", SrcEnd: core.Begin, Dest: ""})
	root.Add(a, b)
	g, err := Build(doc(t, root), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ce *ConflictError
	if _, err := g.Solve(SolveOptions{Relax: true}); !errors.As(err, &ce) {
		t.Fatalf("must-must conflict resolved: %v", err)
	}
}

func TestNegativeMinDelayAllowsEarlyStart(t *testing.T) {
	// δ = -50ms: the destination may start up to 50ms before the reference.
	root := core.NewPar().SetName("r")
	a := leaf("a", "video", 500)
	b := leaf("b", "sound", 100)
	b.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../a", SrcEnd: core.End, Dest: "",
		MinDelay: units.MS(-50), MaxDelay: units.MS(0),
	})
	root.Add(a, b)
	s := solve(t, doc(t, root), Options{}, SolveOptions{})
	// Earliest schedule: b starts at end(a) + δ = 500 - 50 = 450ms.
	if s.StartOf(b) != 450*time.Millisecond {
		t.Errorf("b start = %v, want 450ms", s.StartOf(b))
	}
}

func TestDelayWindowBounds(t *testing.T) {
	// Window [0, 100ms]: earliest schedule picks the lower edge.
	root := core.NewPar().SetName("r")
	a, b := leaf("a", "video", 300), leaf("b", "sound", 100)
	b.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../a", SrcEnd: core.Begin, Dest: "",
		MinDelay: units.MS(0), MaxDelay: units.MS(100),
	})
	root.Add(a, b)
	s := solve(t, doc(t, root), Options{}, SolveOptions{})
	if s.StartOf(b) != 0 {
		t.Errorf("b start = %v, want 0 (earliest within window)", s.StartOf(b))
	}
}

func TestDefaultLeafDuration(t *testing.T) {
	root := core.NewSeq().SetName("r")
	a := core.NewImm([]byte("x")).SetName("a").SetAttr("channel", attr.ID("text"))
	b := core.NewImm([]byte("y")).SetName("b").SetAttr("channel", attr.ID("text"))
	root.Add(a, b)
	s := solve(t, doc(t, root), Options{DefaultLeafDuration: 250 * time.Millisecond}, SolveOptions{})
	if s.StartOf(b) != 250*time.Millisecond {
		t.Errorf("default duration not applied: b starts %v", s.StartOf(b))
	}
}

func TestCustomDurationSource(t *testing.T) {
	root := core.NewSeq().SetName("r")
	a, b := leaf("a", "video", 100), leaf("b", "video", 100)
	root.Add(a, b)
	s := solve(t, doc(t, root), Options{
		DurationOf: func(n *core.Node) (time.Duration, bool) {
			return time.Second, true // override everything to 1s
		},
	}, SolveOptions{})
	if s.StartOf(b) != time.Second {
		t.Errorf("custom duration ignored: %v", s.StartOf(b))
	}
}

func TestChannelTimelineAndConflicts(t *testing.T) {
	root := core.NewPar().SetName("r")
	a, b := leaf("a", "video", 300), leaf("b", "video", 300)
	root.Add(a, b) // both on the video channel, in parallel: overlap
	s := solve(t, doc(t, root), Options{}, SolveOptions{})
	tl := s.ChannelTimeline()
	if len(tl["video"]) != 2 {
		t.Fatalf("video timeline = %v", tl["video"])
	}
	overlaps := s.ChannelConflicts()
	if len(overlaps) != 1 || overlaps[0].Channel != "video" {
		t.Errorf("overlaps = %v", overlaps)
	}
	if overlaps[0].String() == "" {
		t.Error("empty overlap description")
	}

	// Sequential placement removes the overlap.
	root2 := core.NewSeq().SetName("r")
	root2.Add(leaf("a", "video", 300), leaf("b", "video", 300))
	s2 := solve(t, doc(t, root2), Options{}, SolveOptions{})
	if got := s2.ChannelConflicts(); len(got) != 0 {
		t.Errorf("sequential doc has overlaps: %v", got)
	}
}

func TestBuildErrors(t *testing.T) {
	// Unresolvable arc path.
	root := core.NewPar().SetName("r")
	a := leaf("a", "video", 100)
	a.AddArc(core.SyncArc{Source: "../ghost", Dest: ""})
	root.AddChild(a)
	if _, err := Build(doc(t, root), Options{}); err == nil {
		t.Error("unresolvable arc accepted")
	}

	// Invalid arc fields.
	root2 := core.NewPar().SetName("r")
	b := leaf("b", "video", 100)
	b.AddArc(core.SyncArc{Source: "", Dest: "", MinDelay: units.MS(10)})
	root2.AddChild(b)
	if _, err := Build(doc(t, root2), Options{}); err == nil {
		t.Error("invalid arc fields accepted")
	}

	// Offset in frames on a channel without a frame rate.
	root3 := core.NewPar().SetName("r")
	c := leaf("c", "text", 100)
	d2 := leaf("d", "text", 100)
	d2.AddArc(core.SyncArc{Source: "../c", Dest: "",
		Offset: units.Q(10, units.Frames)})
	root3.Add(c, d2)
	if _, err := Build(doc(t, root3), Options{}); err == nil {
		t.Error("unconvertible offset accepted")
	}
}

func TestGraphAccessors(t *testing.T) {
	root := core.NewSeq().SetName("r")
	a := leaf("a", "video", 100)
	a.AddArc(core.SyncArc{Source: "..", Dest: ""})
	root.AddChild(a)
	d := doc(t, root)
	g, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEvents() != 4 {
		t.Errorf("NumEvents = %d", g.NumEvents())
	}
	if g.Doc() != d {
		t.Error("Doc() mismatch")
	}
	if len(g.Arcs()) != 1 {
		t.Errorf("Arcs = %v", g.Arcs())
	}
	ev := g.Event(g.Begin(a))
	if ev.Node != a || ev.End != core.Begin {
		t.Errorf("Event = %+v", ev)
	}
	if !strings.Contains(ev.String(), "/a.begin") {
		t.Errorf("Event.String = %q", ev.String())
	}
	if !strings.Contains(g.String(), "events") {
		t.Errorf("Graph.String = %q", g.String())
	}
	if s, err := g.Solve(SolveOptions{}); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(s.String(), "makespan") {
		t.Errorf("Schedule.String = %q", s.String())
	}
}

// Property: on random well-formed documents the solver always produces a
// schedule satisfying every constraint, with non-negative times and
// monotone containment.
func TestRandomDocumentsScheduleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		root := genSchedTree(rng, 0)
		wrapped := core.NewSeq().SetName("r")
		wrapped.AddChild(root)
		d := doc(t, wrapped)
		g, err := Build(d, Options{DefaultLeafDuration: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		s, err := g.Solve(SolveOptions{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if viol := g.Verify(s.Times(), nil); len(viol) != 0 {
			t.Fatalf("iter %d: violations %v", iter, viol)
		}
		wrapped.Walk(func(n *core.Node) bool {
			if s.StartOf(n) < 0 {
				t.Errorf("iter %d: %s starts at %v", iter, n.PathString(), s.StartOf(n))
			}
			if s.EndOf(n) < s.StartOf(n) {
				t.Errorf("iter %d: %s ends before start", iter, n.PathString())
			}
			if p := n.Parent(); p != nil {
				if s.StartOf(n) < s.StartOf(p) {
					t.Errorf("iter %d: %s starts before parent", iter, n.PathString())
				}
				if s.EndOf(n) > s.EndOf(p) && p.Type == core.Par {
					t.Errorf("iter %d: %s outlives par parent", iter, n.PathString())
				}
			}
			return true
		})
	}
}

var channelsForGen = []string{"video", "sound", "text"}

func genSchedTree(rng *rand.Rand, depth int) *core.Node {
	name := string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
	if depth >= 3 || rng.Intn(3) == 0 {
		return leaf(name, channelsForGen[rng.Intn(3)], int64(rng.Intn(500)))
	}
	var n *core.Node
	if rng.Intn(2) == 0 {
		n = core.NewSeq()
	} else {
		n = core.NewPar()
	}
	n.SetName(name)
	kids := 1 + rng.Intn(3)
	for i := 0; i < kids; i++ {
		c := genSchedTree(rng, depth+1)
		c.SetName(c.Name() + string(rune('0'+i))) // ensure sibling-unique names
		n.AddChild(c)
	}
	return n
}
