//go:build !unix || cmif_nommap

package media

import "os"

// Plain-read fallback for platforms without mmap (and for builds that
// force it off with -tags cmif_nommap): payloads load through the page
// cache into ordinary heap slices. Identical semantics, one more copy.
const mmapSupported = false

func mapFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
