package transport

import (
	"time"

	"repro/internal/metrics"
)

// ServerMetrics is the transport server's instrument set, resolved once
// against a metrics.Registry so the per-request path touches only
// atomics. Every method is nil-receiver safe: an uninstrumented server
// pays a single predictable branch.
//
// Metric names (see docs/ARCHITECTURE.md, scale layer 6):
//
//	cmif_connections_open          gauge      open client connections
//	cmif_requests_total{op}        counter    requests received, by op
//	cmif_request_seconds{op}       histogram  admitted-request latency, by op
//	cmif_inflight_requests         gauge      requests currently executing
//	cmif_admission_queue_depth     gauge      requests waiting for a slot
//	cmif_busy_rejections_total{reason} counter sheds: conn_inflight,
//	                                          queue_full, queue_timeout,
//	                                          sub_slow, subs_full
//	cmif_desc_cache_hits_total     counter    descriptor-cache hits
//	cmif_desc_cache_misses_total   counter    descriptor-cache misses
//	cmif_subscribers_active        gauge      live document subscriptions
//	cmif_deltas_pushed_total       counter    change deltas fanned out
//	cmif_delta_fanout_seconds      histogram  edit-broadcast → frame handoff lag
type ServerMetrics struct {
	reg *metrics.Registry

	conns      *metrics.Gauge
	inflight   *metrics.Gauge
	queueDepth *metrics.Gauge

	requests       map[byte]*metrics.Counter
	opSeconds      map[byte]*metrics.Histogram
	requestsOther  *metrics.Counter
	opSecondsOther *metrics.Histogram

	busyConnInflight *metrics.Counter
	busyQueueFull    *metrics.Counter
	busyQueueTimeout *metrics.Counter
	busySubSlow      *metrics.Counter
	busySubsFull     *metrics.Counter

	descHits   *metrics.Counter
	descMisses *metrics.Counter

	subscribers *metrics.Gauge
	deltas      *metrics.Counter
	deltaLag    *metrics.Histogram

	framesCompressed   *metrics.Counter
	bytesSavedCompress *metrics.Counter
	bytesSavedDedupe   *metrics.Counter
	compressRatio      *metrics.Histogram
}

// opNames maps the request ops the server handles to their label values.
var opNames = map[byte]string{
	opGetDoc:       "getdoc",
	opPutDoc:       "putdoc",
	opGetBlk:       "getblk",
	opGetBlks:      "getblks",
	opGetDescs:     "getdescs",
	opPutBlk:       "putblk",
	opList:         "list",
	opGetBlkStream: "getblkstream",
	opSubscribe:    "subscribe",
	opUnsubscribe:  "unsubscribe",
	opSubmitEdit:   "submitedit",

	opGetBlkManifest: "getblkmanifest",
	opGetChunks:      "getchunks",
}

// NewServerMetrics resolves the server instrument set in reg. Attach it
// to a Server before Listen.
func NewServerMetrics(reg *metrics.Registry) *ServerMetrics {
	m := &ServerMetrics{
		reg:        reg,
		conns:      reg.Gauge("cmif_connections_open", "open client connections"),
		inflight:   reg.Gauge("cmif_inflight_requests", "requests currently executing"),
		queueDepth: reg.Gauge("cmif_admission_queue_depth", "requests waiting for an admission slot"),
		requests:   map[byte]*metrics.Counter{},
		opSeconds:  map[byte]*metrics.Histogram{},
		busyConnInflight: reg.Counter("cmif_busy_rejections_total",
			"requests shed with a busy error", "reason", "conn_inflight"),
		busyQueueFull: reg.Counter("cmif_busy_rejections_total",
			"requests shed with a busy error", "reason", "queue_full"),
		busyQueueTimeout: reg.Counter("cmif_busy_rejections_total",
			"requests shed with a busy error", "reason", "queue_timeout"),
		busySubSlow: reg.Counter("cmif_busy_rejections_total",
			"requests shed with a busy error", "reason", "sub_slow"),
		busySubsFull: reg.Counter("cmif_busy_rejections_total",
			"requests shed with a busy error", "reason", "subs_full"),
		descHits:    reg.Counter("cmif_desc_cache_hits_total", "descriptor-cache hits"),
		descMisses:  reg.Counter("cmif_desc_cache_misses_total", "descriptor-cache misses"),
		subscribers: reg.Gauge("cmif_subscribers_active", "live document subscriptions"),
		deltas:      reg.Counter("cmif_deltas_pushed_total", "change deltas fanned out to subscribers"),
		deltaLag:    reg.Histogram("cmif_delta_fanout_seconds", "edit broadcast to frame handoff lag"),
		framesCompressed: reg.Counter("cmif_frames_compressed_total",
			"response frames shipped deflated (protocol v4)"),
		bytesSavedCompress: reg.Counter("cmif_bytes_saved_total",
			"bytes not moved or stored thanks to wire saturation", "reason", "compress"),
		bytesSavedDedupe: reg.Counter("cmif_bytes_saved_total",
			"bytes not moved or stored thanks to wire saturation", "reason", "dedupe"),
		compressRatio: reg.HistogramBuckets("cmif_compress_ratio",
			"compressed/raw frame size ratio",
			[]float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95}),
	}
	for op, name := range opNames {
		m.requests[op] = reg.Counter("cmif_requests_total", "requests received", "op", name)
		m.opSeconds[op] = reg.Histogram("cmif_request_seconds", "request latency", "op", name)
	}
	m.requestsOther = reg.Counter("cmif_requests_total", "requests received", "op", "other")
	m.opSecondsOther = reg.Histogram("cmif_request_seconds", "request latency", "op", "other")
	return m
}

// Registry returns the registry the instruments live in.
func (m *ServerMetrics) Registry() *metrics.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

func (m *ServerMetrics) connOpened() {
	if m != nil {
		m.conns.Add(1)
	}
}

func (m *ServerMetrics) connClosed() {
	if m != nil {
		m.conns.Add(-1)
	}
}

// countRequest tallies one received request by op.
func (m *ServerMetrics) countRequest(op byte) {
	if m == nil {
		return
	}
	if c, ok := m.requests[op]; ok {
		c.Inc()
		return
	}
	m.requestsOther.Inc()
}

// observe records one admitted request's latency — queue wait plus
// service time, the delay the client actually saw.
func (m *ServerMetrics) observe(op byte, start time.Time) {
	if m == nil {
		return
	}
	d := time.Since(start)
	if h, ok := m.opSeconds[op]; ok {
		h.Observe(d)
		return
	}
	m.opSecondsOther.Observe(d)
}

func (m *ServerMetrics) inflightAdd(delta int64) {
	if m != nil {
		m.inflight.Add(delta)
	}
}

func (m *ServerMetrics) queueDepthSet(depth int64) {
	if m != nil {
		m.queueDepth.Set(depth)
	}
}

// shed tallies one busy rejection by reason.
func (m *ServerMetrics) shed(reason string) {
	if m == nil {
		return
	}
	switch reason {
	case shedConnInflight:
		m.busyConnInflight.Inc()
	case shedQueueFull:
		m.busyQueueFull.Inc()
	case shedQueueTimeout:
		m.busyQueueTimeout.Inc()
	case shedSubSlow:
		m.busySubSlow.Inc()
	case shedSubsFull:
		m.busySubsFull.Inc()
	}
}

// subscriberAdd moves the active-subscription gauge.
func (m *ServerMetrics) subscriberAdd(delta int64) {
	if m != nil {
		m.subscribers.Add(delta)
	}
}

// deltaPushed tallies one fanned-out change delta and its hub-to-wire
// handoff lag.
func (m *ServerMetrics) deltaPushed(lag time.Duration) {
	if m == nil {
		return
	}
	m.deltas.Inc()
	m.deltaLag.Observe(lag)
}

// frameCompressed records one response frame that actually shipped
// deflated: raw is the plain encoding's wire size, wire the envelope's.
func (m *ServerMetrics) frameCompressed(raw, wire int64) {
	if m == nil {
		return
	}
	m.framesCompressed.Inc()
	m.bytesSavedCompress.Add(raw - wire)
	m.compressRatio.ObserveSeconds(float64(wire) / float64(raw))
}

// DedupeSaved counts payload bytes the content-defined chunk index
// collapsed — bytes a duplicate-heavy corpus did not store, snapshot
// or replicate twice. Fed by the store's dedupe observer.
func (m *ServerMetrics) DedupeSaved(bytes int64) {
	if m != nil {
		m.bytesSavedDedupe.Add(bytes)
	}
}

// descCacheLookup tallies one descriptor-cache lookup.
func (m *ServerMetrics) descCacheLookup(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.descHits.Inc()
	} else {
		m.descMisses.Inc()
	}
}
