package cmif

import (
	"context"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/newsdoc"
)

// NewsConfig sizes the built-in evening-news corpus (the paper's running
// example, sections 4 and 5.3.4).
type NewsConfig = newsdoc.Config

// BuildNews generates the five-channel evening-news broadcast with its
// synthetic media store. A zero config gets three stories.
func BuildNews(cfg NewsConfig) (*Document, *Store, error) {
	d, store, err := newsdoc.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	return wrapDocument(d), store, nil
}

// CorpusShape selects a load-test corpus generator: CorpusNewsWeb (wide
// multilingual news webs), CorpusArchive (long text-heavy journal runs)
// or CorpusDeepNest (deep par/seq nesting with dense May arcs — schedule
// it with WithRelaxation).
type CorpusShape = corpus.Shape

// The generator shapes.
const (
	CorpusNewsWeb  = corpus.NewsWeb
	CorpusArchive  = corpus.Archive
	CorpusDeepNest = corpus.DeepNest
)

// CorpusSpec sizes one generated document; generation is deterministic
// in the spec, so two processes with the same spec agree on the corpus.
type CorpusSpec = corpus.Spec

// GenerateCorpus builds one synthetic document of the given shape plus
// the store holding its external media blocks. The document validates
// before it is returned.
func GenerateCorpus(spec CorpusSpec) (*Document, *Store, error) {
	d, store, err := corpus.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	return wrapDocument(d), store, nil
}

// CorpusDocument is one entry of a generated corpus set.
type CorpusDocument struct {
	Name  string
	Doc   *Document
	Store *Store
}

// GenerateCorpusSet builds a mixed corpus — one document per shape per
// round — for loading into a server under test.
func GenerateCorpusSet(seed uint64, rounds int) ([]CorpusDocument, error) {
	set, err := corpus.GenerateSet(seed, rounds)
	if err != nil {
		return nil, err
	}
	out := make([]CorpusDocument, len(set))
	for i, n := range set {
		out[i] = CorpusDocument{Name: n.Name, Doc: wrapDocument(n.Doc), Store: n.Store}
	}
	return out, nil
}

// Experiment pairs an experiment id (T1, F1..F10, A1, A2) with its
// generator, regenerating one artifact of the paper's evaluation.
type Experiment = experiments.Experiment

// ExperimentTable is one experiment's tabular result.
type ExperimentTable = experiments.Table

// Experiments lists every reproduction experiment in paper order.
func Experiments() []Experiment { return experiments.All() }

// StoreBenchConfig sizes the storage/fetch concurrent-load scenarios. The
// zero value is usable (64 blocks of 16 KiB, 1 and 16 clients, 256 fetches
// per client).
type StoreBenchConfig = experiments.StoreBenchConfig

// StoreBenchReport is the machine-readable result set of RunStoreBench;
// cmifbench writes it to BENCH_store.json.
type StoreBenchReport = experiments.StoreBenchReport

// RunStoreBench measures the storage/fetch path under concurrent load
// against an in-process server: per-block vs batched round trips, cold vs
// warmed shared cache, at each configured client count.
func RunStoreBench(ctx context.Context, cfg StoreBenchConfig) (*StoreBenchReport, error) {
	return experiments.StoreBench(ctx, cfg)
}

// SchedBenchConfig sizes the S2 scheduler scenarios: par-of-seq documents
// at the configured leaf counts and arc densities, plus edit-churn loops.
// The zero value is usable (1k/10k/100k leaves, 16 arms, 24 edits).
type SchedBenchConfig = experiments.SchedBenchConfig

// SchedBenchReport is the machine-readable result set of RunSchedBench;
// cmifbench writes it to BENCH_sched.json.
type SchedBenchReport = experiments.SchedBenchReport

// RunSchedBench measures the synchronization solver: classic full solve vs
// component-parallel solve, and edit churn through full re-solves vs
// incremental rescheduling, with a per-event equality audit.
func RunSchedBench(cfg SchedBenchConfig) (*SchedBenchReport, error) {
	return experiments.SchedBench(cfg)
}

// WireBenchConfig sizes the S3 wire-protocol scenarios: serialized-v1 vs
// multiplexed-v2 connection disciplines at each worker count, plus the
// huge-block streamed-transfer probe. The zero value is usable (64 blocks
// of 1 KiB, 1/16/64 workers, 128 fetches per worker, 65 MiB huge block).
type WireBenchConfig = experiments.WireBenchConfig

// WireBenchReport is the machine-readable result set of RunWireBench;
// cmifbench writes it to BENCH_wire.json.
type WireBenchReport = experiments.WireBenchReport

// RunWireBench measures the wire layer under concurrent load against an
// in-process server: head-of-line-blocked protocol v1 vs pipelined
// protocol v2 on one shared connection, and a huge-block retrieval that
// only the v2 chunked stream can carry.
func RunWireBench(ctx context.Context, cfg WireBenchConfig) (*WireBenchReport, error) {
	return experiments.WireBench(ctx, cfg)
}

// WireSatBenchConfig sizes the S9 wire-saturation scenarios: the
// dup-heavy and compressible corpora fetched cold and warm over the
// plain v3 discipline and the v4 dedupe/compression paths. The zero
// value is usable (48 blocks of 256 KiB per corpus, 8 workers, 3 warm
// rounds).
type WireSatBenchConfig = experiments.WireSatBenchConfig

// WireSatBenchReport is the machine-readable result set of
// RunWireSatBench; cmifbench writes it to BENCH_wire2.json.
type WireSatBenchReport = experiments.WireSatReport

// RunWireSatBench measures what the v4 wire ships against an in-process
// server: warm chunk-deduped fetches and negotiated compression versus
// plain whole-payload transfers of the same logical bytes.
func RunWireSatBench(ctx context.Context, cfg WireSatBenchConfig) (*WireSatBenchReport, error) {
	return experiments.WireSatBench(ctx, cfg)
}

// LoadWireSatBenchReport reads a BENCH_wire2.json report from disk.
func LoadWireSatBenchReport(path string) (*WireSatBenchReport, error) {
	return experiments.LoadWireSatReport(path)
}

// CheckWireSatBenchReport validates a wire-saturation report: exact
// payload and bytes-on-wire arithmetic, and the committed headline
// floors (warm dedupe throughput ≥ 2x and wire bytes ≥ 5x down on the
// dup-heavy corpus, compression ≥ 2x down on the text corpus, recorded
// at GOMAXPROCS ≥ 4).
func CheckWireSatBenchReport(r *WireSatBenchReport, committed bool) []string {
	return experiments.CheckWireSatReport(r, committed)
}

// DurableBenchConfig sizes the S4 durability scenarios: write throughput
// by fsync policy, recovery time (WAL replay vs snapshot vs wire
// re-ingest) and write amplification. The zero value is usable (2048
// blocks of 4 KiB, recovery at 1k and 10k blocks).
type DurableBenchConfig = experiments.DurableBenchConfig

// DurableBenchReport is the machine-readable result set of
// RunDurableBench; cmifbench writes it to BENCH_durable.json.
type DurableBenchReport = experiments.DurableBenchReport

// RunDurableBench measures the durability layer: journaled write
// throughput under each sync policy, and corpus recovery — replaying the
// WAL or a snapshot against re-ingesting over the wire — with exact
// corpus-equality verification.
func RunDurableBench(ctx context.Context, cfg DurableBenchConfig) (*DurableBenchReport, error) {
	return experiments.DurableBench(ctx, cfg)
}

// SoakBenchConfig sizes the S5 soak scenario: a steady mixed workload
// (read/fetch/query/edit) against a LIVE daemon, then a deliberate
// overload flood, then a scrape of the daemon's metrics endpoint. Addr
// and MetricsURL are required; everything else has usable defaults (60 s
// steady phase, 4 workers, 8 flooding connections, 50/250/1000 ms SLO).
type SoakBenchConfig = experiments.SoakBenchConfig

// SoakSLO is the soak latency budget in milliseconds.
type SoakSLO = experiments.SoakSLO

// SoakBenchReport is the machine-readable result set of RunSoakBench;
// cmifsoak writes it to BENCH_soak.json.
type SoakBenchReport = experiments.SoakBenchReport

// RunSoakBench loads a generated corpus into the daemon at cfg.Addr,
// drives the steady and overload phases, scrapes cfg.MetricsURL and
// returns the report. The context bounds the whole run.
func RunSoakBench(ctx context.Context, cfg SoakBenchConfig) (*SoakBenchReport, error) {
	return experiments.SoakBench(ctx, cfg)
}

// LoadSoakBenchReport reads a BENCH_soak.json report from disk.
func LoadSoakBenchReport(path string) (*SoakBenchReport, error) {
	return experiments.LoadSoakReport(path)
}

// CheckSoakBenchReport validates a soak report: every steady class ran
// error-free within its latency SLO, the overload phase both shed (via
// busy errors) and served (admitted p99 within the tail budget), and the metrics
// endpoint corroborated the client-side story. The committed reference
// file must record ≥ 30 s of steady traffic at GOMAXPROCS ≥ 4.
func CheckSoakBenchReport(r *SoakBenchReport, committed bool) []string {
	return experiments.CheckSoakReport(r, committed)
}

// SubsBenchConfig sizes the S6 live-document scenario: N watchers follow
// a generated document while W writers submit edits, once through v3
// delta fan-out and once through the pre-v3 poll-refetch discipline. The
// zero value is usable (100/1k/10k subscribers, 16 edits, 2 writers).
type SubsBenchConfig = experiments.SubsBenchConfig

// SubsBenchReport is the machine-readable result set of RunSubsBench;
// cmifbench writes it to BENCH_subs.json.
type SubsBenchReport = experiments.SubsBenchReport

// RunSubsBench measures live-document fan-out against an in-process
// server: every watcher must absorb every edit, replicas must converge
// byte-for-byte on the authoritative document, and the report records
// how much faster pushed deltas are than per-update refetching.
func RunSubsBench(ctx context.Context, cfg SubsBenchConfig) (*SubsBenchReport, error) {
	return experiments.SubsBench(ctx, cfg)
}

// LoadSubsBenchReport reads a BENCH_subs.json report from disk.
func LoadSubsBenchReport(path string) (*SubsBenchReport, error) {
	return experiments.LoadSubsReport(path)
}

// CheckSubsBenchReport validates a subscription-bench report: exact
// update arithmetic (Subscribers × Edits, no resyncs, converged
// replicas) and the delta-push speedup floor (5x at ≥ 1000 subscribers
// for the committed reference file, which must also record
// GOMAXPROCS ≥ 4).
func CheckSubsBenchReport(r *SubsBenchReport, committed bool) []string {
	return experiments.CheckSubsReport(r, committed)
}

// EdgeBenchConfig sizes the S7 edge-tier scenario: a client population
// fetching a shared corpus direct-to-origin and through ladders of
// warmed edge caches. The zero value is usable (1000 clients, 1 then 4
// edges, 64 blocks, 32 fetches per client, 16 connections per server).
type EdgeBenchConfig = experiments.EdgeBenchConfig

// EdgeBenchReport is the machine-readable result set of RunEdgeBench;
// cmifbench writes it to BENCH_edge.json.
type EdgeBenchReport = experiments.EdgeBenchReport

// RunEdgeBench measures the edge tier against an in-process origin:
// origin offload (from the edges' own upstream round-trip counters) and
// client-observed p50/p99 latency, direct versus behind each configured
// edge count.
func RunEdgeBench(ctx context.Context, cfg EdgeBenchConfig) (*EdgeBenchReport, error) {
	return experiments.EdgeBench(ctx, cfg)
}

// LoadEdgeBenchReport reads a BENCH_edge.json report from disk.
func LoadEdgeBenchReport(path string) (*EdgeBenchReport, error) {
	return experiments.LoadEdgeReport(path)
}

// CheckEdgeBenchReport validates an edge-bench report: exact fetch
// arithmetic, warm offload ≥ 0.9, and — for the committed reference —
// ≥ 1000 clients behind ≥ 4 edges whose p99 does not exceed the direct
// p99, recorded at GOMAXPROCS ≥ 4.
func CheckEdgeBenchReport(r *EdgeBenchReport, committed bool) []string {
	return experiments.CheckEdgeReport(r, committed)
}

// BenchEnv records the environment a benchmark ran under (GOMAXPROCS, CPU
// count, go version); it travels inside every BENCH report.
type BenchEnv = experiments.BenchEnv

// CaptureBenchEnv snapshots the current process environment for a report.
func CaptureBenchEnv() BenchEnv { return experiments.CaptureBenchEnv() }

// LoadStoreBenchReport reads a BENCH_store.json report from disk.
func LoadStoreBenchReport(path string) (*StoreBenchReport, error) {
	return experiments.LoadStoreReport(path)
}

// LoadSchedBenchReport reads a BENCH_sched.json report from disk.
func LoadSchedBenchReport(path string) (*SchedBenchReport, error) {
	return experiments.LoadSchedReport(path)
}

// LoadWireBenchReport reads a BENCH_wire.json report from disk.
func LoadWireBenchReport(path string) (*WireBenchReport, error) {
	return experiments.LoadWireReport(path)
}

// LoadDurableBenchReport reads a BENCH_durable.json report from disk.
func LoadDurableBenchReport(path string) (*DurableBenchReport, error) {
	return experiments.LoadDurableReport(path)
}

// CheckDurableBenchReport validates a durability-bench report: recovery
// restores 100% of the corpus byte-for-byte, write amplification stays
// within the record format's ceiling, and WAL replay beats wire re-ingest
// (≥ 10x for the committed reference file).
func CheckDurableBenchReport(r *DurableBenchReport, committed bool) []string {
	return experiments.CheckDurableReport(r, committed)
}

// CheckWireBenchReport validates a wire-bench report: exact wire-call
// arithmetic, the multiplexing speedup floor at 16 workers (3x for the
// committed reference file), and the huge-block stream probe (≥ 64 MiB
// committed, unfetchable over protocol v1).
func CheckWireBenchReport(r *WireBenchReport, committed bool) []string {
	return experiments.CheckWireReport(r, committed)
}

// CheckStoreBenchReport validates a store-bench report against the
// bench-regression invariants (wire-call arithmetic, cache monotonicity,
// throughput floors). committed applies the tighter thresholds expected of
// the repository's reference file. Violations come back human-readable;
// empty means the report passes.
func CheckStoreBenchReport(r *StoreBenchReport, committed bool) []string {
	return experiments.CheckStoreReport(r, committed)
}

// CheckSchedBenchReport validates a sched-bench report: schedule-equality
// and component invariants, allocation ratios, and the incremental/parallel
// speedup floors (the parallel floor applies when the recorded environment
// had GOMAXPROCS ≥ 4).
func CheckSchedBenchReport(r *SchedBenchReport, committed bool) []string {
	return experiments.CheckSchedReport(r, committed)
}

// ClusterBenchConfig sizes the S8 cluster-tier scenario: a node-count
// ladder under concurrent readers and writers, with one node killed
// mid-load in every scenario. The zero value is usable (1/3/5 nodes, 12
// readers, 2 writers, replication 3, a 3s window per scenario).
type ClusterBenchConfig = experiments.ClusterBenchConfig

// ClusterBenchReport is the machine-readable result set of
// RunClusterBench; cmifbench writes it to BENCH_cluster.json.
type ClusterBenchReport = experiments.ClusterBenchReport

// RunClusterBench measures the cluster tier: acked-write survival and
// read availability through a mid-load node kill (failover for
// multi-node scenarios, restart-and-recover for the single node), and
// how read throughput scales with the node count under a fixed per-node
// capacity model.
func RunClusterBench(ctx context.Context, cfg ClusterBenchConfig) (*ClusterBenchReport, error) {
	return experiments.ClusterBench(ctx, cfg)
}

// LoadClusterBenchReport reads a BENCH_cluster.json report from disk.
func LoadClusterBenchReport(path string) (*ClusterBenchReport, error) {
	return experiments.LoadClusterReport(path)
}

// CheckClusterBenchReport validates a cluster-bench report: zero lost
// acknowledged writes and continued reads through every kill, the
// no-read-gap SLO, and — for the committed reference — the full
// 1/3/5-node ladder with 3-node read throughput ≥ 2x the single node's,
// recorded at GOMAXPROCS ≥ 4.
func CheckClusterBenchReport(r *ClusterBenchReport, committed bool) []string {
	return experiments.CheckClusterReport(r, committed)
}
