package media

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
)

// saveTestStore writes a small mixed corpus (including an empty
// payload, the mmap edge case) and returns it.
func saveTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	s := NewStore()
	rng := rand.New(rand.NewSource(99))
	big := make([]byte, 300<<10)
	rng.Read(big)
	s.Put(NewBlock("big-video", core.MediumVideo, big, attr.List{}))
	s.Put(NewBlock("note", core.MediumText, []byte("a small text block"), attr.List{}))
	s.Put(NewBlock("empty", core.MediumText, nil, attr.List{}))
	if err := SaveDir(s, dir); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLoadDirMappedParity proves the mapped load path serves the same
// bytes as the plain one — on mmap builds through real mappings, and
// under -tags cmif_nommap through the forced plain-read fallback (the
// CI fallback test runs this same test both ways).
func TestLoadDirMappedParity(t *testing.T) {
	dir := t.TempDir()
	want := saveTestStore(t, dir)

	mapped, err := LoadDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	for _, name := range want.Names() {
		a, _ := want.GetByName(name)
		b, ok := mapped.GetByNameRef(name)
		if !ok {
			t.Fatalf("mapped store lost %q", name)
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("payload mismatch for %q", name)
		}
	}
	t.Logf("mmap supported in this build: %v", MmapSupported())
}

// TestLoadDirMappedChunksIndexed: dedupe must work over mapped
// payloads too (chunks subslice the mapping).
func TestLoadDirMappedChunksIndexed(t *testing.T) {
	dir := t.TempDir()
	saveTestStore(t, dir)
	mapped, err := LoadDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := mapped.Resolve("big-video")
	if !ok {
		t.Fatal("big-video missing")
	}
	if _, ok := mapped.Manifest(id); !ok {
		t.Fatal("mapped large block was not chunk-indexed")
	}
}

func TestLoadDirMappedMissingDir(t *testing.T) {
	if _, err := LoadDirMapped(t.TempDir()); err == nil {
		t.Fatal("want error for empty dir")
	}
}
