// Package codec implements the human-readable CMIF document text format and
// a compact binary form. Section 5 of the paper: "The tree is a
// human-readable document that can be passed from one location to another
// with or without the underlying data."
//
// Grammar (see also Figure 6 of the paper for node shapes):
//
//	document := node
//	node     := '(' NODETYPE element* ')'     NODETYPE ∈ {seq, par, ext, imm}
//	element  := node | pair
//	pair     := '(' NAME value* ')'           NAME is any identifier except a node type
//	value    := IDENT | NUMBER | STRING | list
//	list     := '[' item* ']'
//	item     := value | pair                  pairs inside lists are named items
//
// A pair with no values carries the empty list; a pair with several values
// carries an anonymous list of them. Numbers may carry the media-dependent
// unit suffixes of package units ("40ms", "25fr"). Comments run from ';' to
// end of line. Immediate-node payloads are carried by the reserved "data"
// (UTF-8 text) or "datahex" (binary) attributes.
package codec

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokLBrack
	tokRBrack
	tokIdent
	tokNumber
	tokString
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// token is one lexical token with its source text and position.
type token struct {
	kind tokenKind
	text string // identifier text, raw number text, or decoded string body
	pos  Pos
}

// SyntaxError reports a lexical or grammatical error with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("codec: %v: %s", e.Pos, e.Msg)
}

// lexer produces tokens from document text.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(pos Pos, format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// peekByte returns the current byte without consuming, or 0 at EOF.
func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

// advance consumes one byte, tracking position.
func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

// skipSpace consumes whitespace and ';' comments.
func (l *lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == ';':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// isIdentStart reports whether c can start an identifier.
func isIdentStart(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == '/' || c == '#' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c >= utf8.RuneSelf
}

// isIdentCont reports whether c can continue an identifier.
func isIdentCont(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9') || c == '*' || c == '+'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.peekByte()
	switch {
	case c == '(':
		l.advance()
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.advance()
		return token{kind: tokRParen, pos: start}, nil
	case c == '[':
		l.advance()
		return token{kind: tokLBrack, pos: start}, nil
	case c == ']':
		l.advance()
		return token{kind: tokRBrack, pos: start}, nil
	case c == '"':
		return l.lexString(start)
	case c == '+' || c == '-' || ('0' <= c && c <= '9'):
		return l.lexNumberOrIdent(start)
	case isIdentStart(c):
		return l.lexIdent(start), nil
	default:
		l.advance()
		return token{}, l.errorf(start, "unexpected character %q", rune(c))
	}
}

// lexIdent consumes an identifier.
func (l *lexer) lexIdent(start Pos) token {
	from := l.off
	for l.off < len(l.src) && isIdentCont(l.peekByte()) {
		l.advance()
	}
	return token{kind: tokIdent, text: l.src[from:l.off], pos: start}
}

// lexNumberOrIdent consumes a number (with optional sign and unit suffix).
// A bare '-' or '+' followed by identifier characters is an identifier
// (e.g. "-" used as the empty-ID rendering).
func (l *lexer) lexNumberOrIdent(start Pos) (token, error) {
	from := l.off
	c := l.peekByte()
	if c == '+' || c == '-' {
		l.advance()
		next := l.peekByte()
		if next < '0' || next > '9' {
			// Sign with no digits: lex the rest as an identifier.
			for l.off < len(l.src) && isIdentCont(l.peekByte()) {
				l.advance()
			}
			return token{kind: tokIdent, text: l.src[from:l.off], pos: start}, nil
		}
	}
	for l.off < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
		l.advance()
	}
	// Unit suffix: letters directly attached.
	for l.off < len(l.src) {
		c := l.peekByte()
		if ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') {
			l.advance()
			continue
		}
		break
	}
	return token{kind: tokNumber, text: l.src[from:l.off], pos: start}, nil
}

// lexString consumes a double-quoted string with the escapes of attr.quote.
func (l *lexer) lexString(start Pos) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return token{}, l.errorf(start, "unterminated string")
		}
		c := l.advance()
		switch c {
		case '"':
			return token{kind: tokString, text: b.String(), pos: start}, nil
		case '\\':
			if l.off >= len(l.src) {
				return token{}, l.errorf(start, "unterminated escape in string")
			}
			e := l.advance()
			switch e {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return token{}, l.errorf(start, "unknown escape \\%c", e)
			}
		default:
			b.WriteByte(c)
		}
	}
}

// identOK reports whether s is writable as a bare identifier.
func identOK(s string) bool {
	if s == "" {
		return false
	}
	if !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentCont(s[i]) {
			return false
		}
	}
	// Reject anything that would lex back as a number.
	if unicode.IsDigit(rune(s[0])) {
		return false
	}
	return true
}
