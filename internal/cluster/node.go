package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// Defaults for Config's tunables.
const (
	DefaultGossipInterval = 250 * time.Millisecond
	DefaultPeerTimeout    = 2 * time.Second
)

// Config configures one cluster node.
type Config struct {
	// Addr is the listen address; "127.0.0.1:0" picks a free port. The
	// bound address doubles as the node's cluster identity.
	Addr string
	// DataDir is the node's durable directory (WAL + snapshots);
	// required. A rejoining node recovers it first, then resyncs the
	// writes it missed from a peer.
	DataDir string
	// Peers seeds gossip with other nodes' addresses. The first node of
	// a fresh cluster starts with none; everyone else lists at least one
	// live peer.
	Peers []string
	// Replication is the number of nodes each key lands on (default
	// DefaultReplication). Clusters smaller than Replication replicate
	// to every node.
	Replication int
	// VirtualNodes is the ring's vnode count per node (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// GossipInterval paces membership exchange (default 250ms).
	GossipInterval time.Duration
	// SuspectAfter condemns a peer whose gossip record stops advancing
	// (default 8 gossip intervals). Direct connection failures condemn
	// immediately.
	SuspectAfter time.Duration
	// PeerTimeout bounds every node-to-node RPC (default 2s). A peer
	// that cannot answer within it is treated as dead and failed over.
	PeerTimeout time.Duration

	// Sync is the WAL fsync policy (default SyncInterval; SyncAlways for
	// the strict no-acked-loss guarantee).
	Sync durable.SyncPolicy
	// SnapshotBytes is the auto-snapshot threshold (0 keeps the durable
	// default, negative disables).
	SnapshotBytes int64

	// Serving knobs, passed through to the transport server.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
	MaxInFlight  int
	Admission    transport.Admission
	SubQueueCap  int
	// Compression offers negotiated per-frame compression to
	// protocol-v4 clients of this node.
	Compression bool
	// ServiceDelay adds a fixed per-request service time — the capacity
	// model the cluster bench scales against.
	ServiceDelay time.Duration
	// Metrics, when non-nil, receives the node's instruments (server,
	// durable and cluster counters).
	Metrics *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.Replication <= 0 {
		c.Replication = DefaultReplication
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = DefaultGossipInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 8 * c.GossipInterval
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = DefaultPeerTimeout
	}
}

// Node is one member of a replicated cluster: a full cmifd-class server
// (durable corpus, live documents, admission control) plus the cluster
// machinery — gossip membership, consistent-hash write routing, WAL-record
// replication and rejoin resync. It implements transport.ClusterHandler.
//
// Any node answers any request: reads it cannot serve locally are proxied
// to a replica of the key, writes it does not own are forwarded to the
// key's primary. Losing a node neither loses acknowledged data (each key
// lives on Replication WALs) nor availability (ownership fails over to
// the survivors within a gossip interval).
type Node struct {
	cfg  Config
	addr string

	log  *durable.Log
	reg  *transport.Registry
	srv  *transport.Server
	view *View

	// peers caches one client per member address; a connection-level
	// failure drops the entry so the next use re-dials.
	peerMu sync.Mutex
	peers  map[string]*transport.Client

	// ringMu memoizes the ring for the current alive set.
	ringMu     sync.Mutex
	ringFor    string
	ringCached *Ring

	// replMu serializes this node's primary writes, so each replica sees
	// them in append order.
	replMu sync.Mutex

	// applyMu serializes replica-side applies (live replication, resync
	// chunks) and guards the touched-key set that keeps a stale resync
	// record from regressing a concurrent live write.
	applyMu sync.Mutex
	touched map[string]bool

	// ready closes once Start finishes wiring the node; handler methods
	// wait on it, because the listener accepts before the view exists.
	ready     chan struct{}
	synced    chan struct{}
	stop      chan struct{}
	stopOnce  sync.Once
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup

	mForwarded *metrics.Counter
	mReplRecs  *metrics.Counter
	mResyncRec *metrics.Counter
	mDeaths    *metrics.Counter
	mGossip    *metrics.Counter
	mProxied   *metrics.Counter
}

// Start opens (or recovers) the node's data directory, binds its listener
// — the bound address is the node's identity — and joins gossip with the
// configured peers. A node with peers resyncs the writes it missed in the
// background; WaitSynced blocks until that catch-up completes.
func Start(cfg Config) (*Node, error) {
	cfg.fillDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("cluster: Config.DataDir is required")
	}
	log, st, err := durable.Open(cfg.DataDir, durable.Options{
		Sync:          cfg.Sync,
		SnapshotBytes: cfg.SnapshotBytes,
	})
	if err != nil {
		return nil, err
	}

	// The registry shares the recovered block store. The journal is NOT
	// attached as the store's mutation hook and OnPutDoc stays nil: every
	// cluster mutation is framed once and fed through AppendFrames, which
	// journals and applies in one step (a self-journaling state would
	// record everything twice).
	reg := transport.NewRegistry(st.Store)
	for name, d := range st.Docs {
		reg.PutDoc(name, d)
	}
	reg.DurabilityErr = log.Err

	n := &Node{
		cfg:    cfg,
		log:    log,
		reg:    reg,
		peers:  make(map[string]*transport.Client),
		ready:  make(chan struct{}),
		synced: make(chan struct{}),
		stop:   make(chan struct{}),
	}

	srv := transport.NewServer(reg)
	srv.IdleTimeout = cfg.IdleTimeout
	srv.WriteTimeout = cfg.WriteTimeout
	srv.MaxInFlight = cfg.MaxInFlight
	srv.Admission = cfg.Admission
	srv.SubQueueCap = cfg.SubQueueCap
	srv.Compression = cfg.Compression
	srv.ServiceDelay = cfg.ServiceDelay
	srv.Cluster = n
	if cfg.Metrics != nil {
		srv.Metrics = transport.NewServerMetrics(cfg.Metrics)
		log.Instrument(cfg.Metrics)
	}
	mreg := cfg.Metrics
	if mreg == nil {
		mreg = metrics.NewRegistry()
	}
	n.mForwarded = mreg.Counter("cmif_cluster_forwarded_writes_total", "Writes forwarded to a key's primary.")
	n.mReplRecs = mreg.Counter("cmif_cluster_replicated_batches_total", "Replication batches shipped to replicas.")
	n.mResyncRec = mreg.Counter("cmif_cluster_resync_chunks_total", "Resync chunks applied while rejoining.")
	n.mDeaths = mreg.Counter("cmif_cluster_peer_deaths_total", "Peers condemned on direct failure evidence.")
	n.mGossip = mreg.Counter("cmif_cluster_gossip_rounds_total", "Gossip rounds completed.")
	n.mProxied = mreg.Counter("cmif_cluster_proxied_reads_total", "Read misses answered by a replica.")

	addr, err := srv.Listen(cfg.Addr)
	if err != nil {
		log.Close()
		return nil, err
	}
	n.srv = srv
	n.addr = addr
	n.view = NewView(addr, addr, cfg.Peers)
	close(n.ready)

	n.wg.Add(2)
	go n.gossipLoop()
	go n.resyncLoop()
	return n, nil
}

// Addr returns the node's bound address — its cluster identity.
func (n *Node) Addr() string { return n.addr }

// Members returns the node's current membership view.
func (n *Node) Members() []Member { return n.view.Members() }

// Synced reports whether the startup resync has completed.
func (n *Node) Synced() bool {
	select {
	case <-n.synced:
		return true
	default:
		return false
	}
}

// WaitSynced blocks until the startup resync completes (immediately on a
// node without peers) or ctx expires.
func (n *Node) WaitSynced(ctx context.Context) error {
	select {
	case <-n.synced:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DurableStats reports the node's WAL activity.
func (n *Node) DurableStats() durable.Stats { return n.log.Stats() }

// Shutdown drains in-flight requests (bounded by ctx), stops gossip and
// closes the durable log.
func (n *Node) Shutdown(ctx context.Context) error {
	n.stopLoops()
	err := n.srv.Shutdown(ctx)
	if cerr := n.closeShared(); err == nil {
		err = cerr
	}
	return err
}

// Kill force-closes the listener and every connection without draining —
// the in-process stand-in for a killed node (acknowledged writes are
// already in the WAL; under SyncAlways they are on disk too).
func (n *Node) Kill() {
	n.stopLoops()
	_ = n.srv.Close()
	_ = n.closeShared()
}

func (n *Node) stopLoops() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

func (n *Node) closeShared() error {
	n.closeOnce.Do(func() {
		n.peerMu.Lock()
		for _, c := range n.peers {
			_ = c.Close()
		}
		n.peers = map[string]*transport.Client{}
		n.peerMu.Unlock()
		n.closeErr = n.log.Close()
	})
	return n.closeErr
}

// ---- membership -----------------------------------------------------

// gossipLoop exchanges views with every alive peer each interval. Small
// clusters gossip all-to-all, so membership converges within a round or
// two; a peer that cannot be reached is condemned immediately (direct
// evidence), one whose record stops advancing is swept after SuspectAfter.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		n.view.Tick()
		encoded := n.view.Encode()
		for _, m := range n.view.Members() {
			if m.ID == n.view.SelfID() || m.State != StateAlive {
				continue
			}
			c, err := n.peer(m.Addr)
			if err != nil {
				n.condemn(m.ID, m.Addr)
				continue
			}
			ctx, cancel := n.peerCtx()
			resp, err := c.GossipExchange(ctx, encoded)
			cancel()
			if err != nil {
				if isPeerDown(err) {
					n.condemn(m.ID, m.Addr)
				}
				continue
			}
			_, _ = n.view.Merge(resp)
		}
		n.view.SweepStale(n.cfg.SuspectAfter)
		n.mGossip.Inc()
	}
}

// condemn records direct failure evidence for a peer and drops its cached
// connection.
func (n *Node) condemn(id, addr string) {
	if n.view.MarkDead(id) {
		n.mDeaths.Inc()
	}
	if addr != "" {
		n.dropPeer(addr)
	}
}

// isPeerDown classifies an RPC failure: an error the peer itself answered
// (ErrRemote wraps it, including not-found and busy) proves the peer
// alive; anything else — dial refusal, broken connection, timeout — is
// failure evidence.
func isPeerDown(err error) bool {
	return err != nil && !errors.Is(err, transport.ErrRemote)
}

func (n *Node) peerCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), n.cfg.PeerTimeout)
}

// peer returns the cached client for addr, dialing on first use.
func (n *Node) peer(addr string) (*transport.Client, error) {
	n.peerMu.Lock()
	if c, ok := n.peers[addr]; ok {
		n.peerMu.Unlock()
		return c, nil
	}
	n.peerMu.Unlock()
	ctx, cancel := n.peerCtx()
	c, err := transport.DialContext(ctx, addr)
	cancel()
	if err != nil {
		return nil, err
	}
	c.Timeout = n.cfg.PeerTimeout
	n.peerMu.Lock()
	if prev, ok := n.peers[addr]; ok {
		n.peerMu.Unlock()
		_ = c.Close()
		return prev, nil
	}
	n.peers[addr] = c
	n.peerMu.Unlock()
	return c, nil
}

func (n *Node) dropPeer(addr string) {
	n.peerMu.Lock()
	if c, ok := n.peers[addr]; ok {
		delete(n.peers, addr)
		_ = c.Close()
	}
	n.peerMu.Unlock()
}

// ring returns the consistent-hash ring over the current alive set,
// memoized until membership changes.
func (n *Node) ring() *Ring {
	alive := n.view.Alive()
	fp := strings.Join(alive, "\x00")
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	if n.ringCached == nil || n.ringFor != fp {
		n.ringCached = NewRing(alive, n.cfg.VirtualNodes)
		n.ringFor = fp
	}
	return n.ringCached
}

// ---- key scheme ------------------------------------------------------

// DocKey is the ring placement key of a document name. Documents and
// blocks hash into one keyspace with a type prefix, so a document and a
// block sharing a name do not collide. Exported so placement-aware
// clients route a key to the same replicas the nodes do.
func DocKey(name string) string { return "d/" + name }

// BlockKey is the ring placement key of a block name (or content
// address — whichever identifier the block is addressed by).
func BlockKey(name string) string { return "b/" + name }

func docKey(name string) string { return DocKey(name) }
func blkKey(name string) string { return BlockKey(name) }

// blockKey places a block by its registered name when it has one (reads
// resolve names), by content address otherwise.
func blockKey(b *media.Block) string {
	if b.Name != "" {
		return blkKey(b.Name)
	}
	return blkKey(b.ID)
}

// recordKey identifies the state a WAL record touches, for the resync
// race filter. The namespaces are distinct from placement keys on
// purpose: a replicated putblk touches both its block ("B/") and its
// name registration ("n/").
func recordKey(r durable.Record) string {
	switch r.Op {
	case durable.RecPutDoc, durable.RecDelDoc:
		return "d/" + string(r.Fields[0])
	case durable.RecPutBlk, durable.RecDelBlk:
		return "B/" + string(r.Fields[0])
	case durable.RecName:
		return "n/" + string(r.Fields[0])
	default:
		return "D/" + string(r.Fields[0])
	}
}

// ---- write path ------------------------------------------------------

// routeWrite runs a write at its key's primary: locally when this node is
// primary, forwarded otherwise. A forward that fails at the connection
// level condemns the primary and retries against the recomputed ring, up
// to Replication+1 attempts — the failover path a killed primary's keys
// take.
func (n *Node) routeWrite(key string, local func() error, forward func(ctx context.Context, c *transport.Client) error) error {
	var lastErr error
	for attempt := 0; attempt <= n.cfg.Replication; attempt++ {
		r := n.ring()
		if r.Len() == 0 {
			return errors.New("cluster: no alive members")
		}
		primary := r.Primary(key)
		if primary == n.view.SelfID() {
			return local()
		}
		addr := n.view.AliveAddr(primary)
		if addr == "" {
			// Condemned between ring build and here; recompute.
			lastErr = fmt.Errorf("cluster: primary %s not alive", primary)
			continue
		}
		c, err := n.peer(addr)
		if err != nil {
			n.condemn(primary, addr)
			lastErr = err
			continue
		}
		ctx, cancel := n.peerCtx()
		err = forward(ctx, c)
		cancel()
		if err == nil {
			n.mForwarded.Inc()
			return nil
		}
		if !isPeerDown(err) {
			// The primary answered: a semantic rejection (conflict,
			// validation), not a liveness problem.
			return err
		}
		n.condemn(primary, addr)
		lastErr = err
	}
	return fmt.Errorf("cluster: write failed after failover: %w", lastErr)
}

// commitLocal is the primary half of a write: journal + apply the frames
// locally, then ship the identical bytes to every other alive replica of
// the key. replMu serializes the pair, so replicas see this node's writes
// in WAL order.
func (n *Node) commitLocal(key string, frames []byte) error {
	n.replMu.Lock()
	defer n.replMu.Unlock()
	if err := n.applyFrames(frames); err != nil {
		return err
	}
	return n.replicateOut(key, frames)
}

// replicateOut ships frames to the key's other alive replicas,
// synchronously — the write is not acknowledged until every reachable
// replica holds it. A replica that fails at the connection level is
// condemned and skipped (its range has failed over; it will resync on
// rejoin); a replica that answers with a rejection fails the write.
func (n *Node) replicateOut(key string, frames []byte) error {
	self := n.view.SelfID()
	for _, id := range n.ring().ReplicaSet(key, n.cfg.Replication) {
		if id == self {
			continue
		}
		addr := n.view.AliveAddr(id)
		if addr == "" {
			continue
		}
		c, err := n.peer(addr)
		if err != nil {
			n.condemn(id, addr)
			continue
		}
		ctx, cancel := n.peerCtx()
		err = c.Replicate(ctx, frames)
		cancel()
		if err == nil {
			n.mReplRecs.Inc()
			continue
		}
		if isPeerDown(err) {
			n.condemn(id, addr)
			continue
		}
		return fmt.Errorf("cluster: replica %s rejected write: %w", id, err)
	}
	return nil
}

// applyFrames journals and applies a batch, refreshing the serving
// registry for any document it changed. Serialized with resync applies so
// the touched-key bookkeeping cannot miss a write.
func (n *Node) applyFrames(frames []byte) error {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.noteTouchedLocked(frames)
	return n.applyFramesLocked(frames, true)
}

// applyFramesLocked appends frames through the WAL and mirrors document
// changes into the registry (refreshReg false skips the mirror — the
// edit path already updated the registry through EditDoc).
func (n *Node) applyFramesLocked(frames []byte, refreshReg bool) error {
	if len(frames) == 0 {
		return nil
	}
	putDocs, delDocs, err := n.log.AppendFrames(frames)
	if err != nil {
		return err
	}
	if !refreshReg {
		return nil
	}
	if len(putDocs) > 0 {
		changed := make(map[string]bool, len(putDocs))
		for _, name := range putDocs {
			changed[name] = true
		}
		// Decode errors are impossible here: AppendFrames just validated
		// the identical bytes.
		recs, _ := durable.DecodeFrames(frames)
		for _, r := range recs {
			if r.Op != durable.RecPutDoc || !changed[string(r.Fields[0])] {
				continue
			}
			if d, derr := codec.DecodeBinary(r.Fields[1]); derr == nil {
				n.reg.PutDoc(string(r.Fields[0]), d)
			}
		}
	}
	for _, name := range delDocs {
		n.reg.DropDoc(name, "cluster: deleted")
	}
	return nil
}

// noteTouchedLocked records the keys a batch touches while a resync is in
// flight, so the resync filter drops its stale copies of them.
func (n *Node) noteTouchedLocked(frames []byte) {
	if n.touched == nil {
		return
	}
	recs, err := durable.DecodeFrames(frames)
	if err != nil {
		return
	}
	for _, r := range recs {
		if len(r.Fields) > 0 {
			n.touched[recordKey(r)] = true
		}
	}
}

// ---- transport.ClusterHandler ---------------------------------------

// PutDoc routes a document registration: inlined payloads are extracted
// and placed as blocks first (each to its own replica set), then the
// document itself is journaled at its primary and replicated.
func (n *Node) PutDoc(name string, d *core.Document) error {
	<-n.ready
	scratch := media.NewStore()
	extracted, err := transport.Extract(d, scratch)
	if err != nil {
		return fmt.Errorf("cluster: extract: %w", err)
	}
	var blkErr error
	scratch.Each(func(b *media.Block) bool {
		if _, err := n.PutBlock(b); err != nil {
			blkErr = err
			return false
		}
		return true
	})
	if blkErr != nil {
		return blkErr
	}
	data, err := codec.EncodeBinary(extracted)
	if err != nil {
		return fmt.Errorf("cluster: encode %q: %w", name, err)
	}
	key := docKey(name)
	frame := durable.FramePutDoc(name, data)
	return n.routeWrite(key,
		func() error { return n.commitLocal(key, frame) },
		func(ctx context.Context, c *transport.Client) error {
			return c.PutDoc(ctx, name, extracted, transport.EncodingBinary)
		})
}

// PutBlock routes a block put. The journal frames carry the block and,
// when it is named, the name registration — exactly the records a
// single-node server's journal writes.
func (n *Node) PutBlock(b *media.Block) (string, error) {
	<-n.ready
	frame, err := durable.FramePutBlock(b)
	if err != nil {
		return "", err
	}
	if b.Name != "" {
		frame = append(frame, durable.FrameRegisterName(b.Name, b.ID)...)
	}
	key := blockKey(b)
	id := b.ID
	err = n.routeWrite(key,
		func() error { return n.commitLocal(key, frame) },
		func(ctx context.Context, c *transport.Client) error {
			rid, ferr := c.PutBlock(ctx, b)
			if ferr == nil {
				id = rid
			}
			return ferr
		})
	if err != nil {
		return "", err
	}
	return id, nil
}

// SubmitEdit routes an edit to the document's primary, which applies it
// against its live registry (the single point where conflicts are
// decided) and replicates the post-edit document as a full-state record.
func (n *Node) SubmitEdit(name string, recs []core.ChangeRecord) (uint64, error) {
	<-n.ready
	key := docKey(name)
	var gen uint64
	err := n.routeWrite(key,
		func() error {
			n.replMu.Lock()
			defer n.replMu.Unlock()
			g, err := n.reg.EditDoc(name, recs)
			if err != nil {
				return err
			}
			gen = g
			doc, ok := n.reg.GetDoc(name)
			if !ok {
				return fmt.Errorf("cluster: edited document %q vanished", name)
			}
			data, err := codec.EncodeBinary(doc)
			if err != nil {
				return err
			}
			frame := durable.FramePutDoc(name, data)
			n.applyMu.Lock()
			n.noteTouchedLocked(frame)
			err = n.applyFramesLocked(frame, false)
			n.applyMu.Unlock()
			if err != nil {
				return err
			}
			return n.replicateOut(key, frame)
		},
		func(ctx context.Context, c *transport.Client) error {
			g, err := c.SubmitEdit(ctx, name, recs)
			if err != nil {
				return err
			}
			gen = g
			return nil
		})
	if err != nil {
		return 0, err
	}
	return gen, nil
}

// Gossip answers a peer's exchange: merge its view, return ours.
func (n *Node) Gossip(view []byte) ([]byte, error) {
	<-n.ready
	if len(view) > 0 {
		if _, err := n.view.Merge(view); err != nil {
			return nil, err
		}
	}
	return n.view.Encode(), nil
}

// Replicate applies a primary's shipped WAL records — the replica half of
// the write path.
func (n *Node) Replicate(frames []byte) error {
	<-n.ready
	return n.applyFrames(frames)
}

// Resync serves a chunk of this node's state to a rejoining replica.
func (n *Node) Resync(cursor string) ([]byte, string, error) {
	<-n.ready
	return n.log.ResyncChunk(cursor, 0)
}

// MissingDoc proxies a local read miss to the key's replicas. A node that
// is itself a replica of the key answers authoritatively (its miss IS the
// answer), which also bounds the proxy chain at one hop.
func (n *Node) MissingDoc(name string) (*core.Document, bool) {
	<-n.ready
	doc := proxyRead(n, docKey(name), func(ctx context.Context, c *transport.Client) (*core.Document, error) {
		return c.GetDoc(ctx, name, transport.GetDocOptions{Encoding: transport.EncodingBinary})
	})
	return doc, doc != nil
}

// MissingBlock proxies a local block miss to the key's replicas.
func (n *Node) MissingBlock(name string) (*media.Block, bool) {
	<-n.ready
	b := proxyRead(n, blkKey(name), func(ctx context.Context, c *transport.Client) (*media.Block, error) {
		return c.GetBlock(ctx, name)
	})
	return b, b != nil
}

// proxyRead fetches a key from its other replicas, unless this node is
// one of them (an owner's miss is authoritative — and owners never
// proxying keeps the chain from recursing).
func proxyRead[T any](n *Node, key string, fetch func(ctx context.Context, c *transport.Client) (*T, error)) *T {
	self := n.view.SelfID()
	set := n.ring().ReplicaSet(key, n.cfg.Replication)
	for _, id := range set {
		if id == self {
			return nil
		}
	}
	for _, id := range set {
		addr := n.view.AliveAddr(id)
		if addr == "" {
			continue
		}
		c, err := n.peer(addr)
		if err != nil {
			n.condemn(id, addr)
			continue
		}
		ctx, cancel := n.peerCtx()
		v, err := fetch(ctx, c)
		cancel()
		if err == nil {
			n.mProxied.Inc()
			return v
		}
		if isPeerDown(err) {
			n.condemn(id, addr)
		}
	}
	return nil
}

// DocNames merges the cluster-wide document listing: local names plus
// each alive peer's local-only listing (local-only, so the fan-out cannot
// recurse). Unreachable peers are skipped — the listing degrades to what
// the reachable cluster holds rather than failing.
func (n *Node) DocNames() ([]string, error) {
	<-n.ready
	seen := make(map[string]bool)
	for _, name := range n.reg.DocNames() {
		seen[name] = true
	}
	self := n.view.SelfID()
	for _, m := range n.view.Members() {
		if m.ID == self || m.State != StateAlive {
			continue
		}
		c, err := n.peer(m.Addr)
		if err != nil {
			n.condemn(m.ID, m.Addr)
			continue
		}
		ctx, cancel := n.peerCtx()
		names, err := c.ListDocsLocal(ctx)
		cancel()
		if err != nil {
			if isPeerDown(err) {
				n.condemn(m.ID, m.Addr)
			}
			continue
		}
		for _, name := range names {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// ---- rejoin resync ---------------------------------------------------

// resyncLoop catches a (re)joining node up: pull the full keyed walk of a
// peer's state and replay it through AppendFrames (which dedupes, so a
// mostly-caught-up WAL appends only the delta). Writes that arrive live
// during the pull mark their keys touched, and the stale resync copies of
// those keys are filtered out — a resync can only add missing state,
// never regress a newer write. A node with no reachable peers (the
// genesis node) gives up after a few rounds and serves empty.
func (n *Node) resyncLoop() {
	defer n.wg.Done()
	defer close(n.synced)

	n.applyMu.Lock()
	n.touched = make(map[string]bool)
	n.applyMu.Unlock()
	defer func() {
		n.applyMu.Lock()
		n.touched = nil
		n.applyMu.Unlock()
	}()

	unreachableRounds := 0
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		src := n.pickResyncSource()
		if src == "" {
			unreachableRounds++
			if unreachableRounds >= 8 {
				return
			}
			select {
			case <-n.stop:
				return
			case <-time.After(n.cfg.GossipInterval):
			}
			continue
		}
		if n.resyncFrom(src) {
			return
		}
		select {
		case <-n.stop:
			return
		case <-time.After(n.cfg.GossipInterval):
		}
	}
}

// pickResyncSource returns the address of an alive peer, "" if none.
func (n *Node) pickResyncSource() string {
	self := n.view.SelfID()
	for _, m := range n.view.Members() {
		if m.ID == self || m.State != StateAlive {
			continue
		}
		if _, err := n.peer(m.Addr); err != nil {
			n.condemn(m.ID, m.Addr)
			continue
		}
		return m.Addr
	}
	return ""
}

// resyncFrom drains one peer's keyed walk; false aborts the attempt (the
// peer failed mid-walk) and the loop retries from the start — the walk is
// idempotent, so a retry re-verifies rather than re-appends.
func (n *Node) resyncFrom(addr string) bool {
	c, err := n.peer(addr)
	if err != nil {
		return false
	}
	cursor := ""
	for {
		select {
		case <-n.stop:
			return true
		default:
		}
		ctx, cancel := n.peerCtx()
		frames, next, err := c.ResyncPull(ctx, cursor)
		cancel()
		if err != nil {
			if isPeerDown(err) {
				n.dropPeer(addr)
			}
			return false
		}
		n.applyMu.Lock()
		kept, ferr := durable.FilterFrames(frames, func(r durable.Record) bool {
			return !n.touched[recordKey(r)]
		})
		if ferr == nil {
			ferr = n.applyFramesLocked(kept, true)
		}
		n.applyMu.Unlock()
		if ferr != nil {
			return false
		}
		n.mResyncRec.Inc()
		if next == "" {
			return true
		}
		cursor = next
	}
}
