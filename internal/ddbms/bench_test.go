package ddbms

import (
	"fmt"
	"testing"

	"repro/internal/attr"
	"repro/internal/units"
)

func benchDB(b *testing.B, n int) *DB {
	b.Helper()
	db := New()
	media := []string{"video", "audio", "image", "text"}
	for i := 0; i < n; i++ {
		desc := attr.MustList(
			attr.P("medium", attr.ID(media[i%4])),
			attr.P("width", attr.Number(int64(i%16)*40)),
			attr.P("duration", attr.Quantity(units.MS(int64(i)))),
			attr.P("title", attr.String(fmt.Sprintf("block %d", i))),
		)
		if err := db.Insert(fmt.Sprintf("d%06d", i), desc); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsert(b *testing.B) {
	desc := attr.MustList(
		attr.P("medium", attr.ID("video")),
		attr.P("duration", attr.Quantity(units.MS(400))),
	)
	db := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cycle ids so the store stays bounded and the measurement is the
		// steady-state upsert cost, not unbounded posting-list growth.
		db.Upsert(fmt.Sprintf("d%09d", i%10000), desc)
	}
}

func BenchmarkSelectScaling(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := benchDB(b, n)
		preds := []Pred{
			Eq("medium", attr.ID("video")),
			Range("duration", int64(n/4), int64(n/2), units.Millis),
		}
		b.Run(fmt.Sprintf("indexed-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.Select(preds...)
			}
		})
		b.Run(fmt.Sprintf("linear-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.SelectLinear(preds...)
			}
		})
	}
}

func BenchmarkSelectHas(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Select(Has("width"))
	}
}

func BenchmarkDelete(b *testing.B) {
	const size = 5000
	db := benchDB(b, size)
	desc, _ := db.Get("d000000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("d%06d", i%size)
		db.Delete(id)
		db.Upsert(id, desc)
	}
}
