package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// The bench gate validates BENCH_*.json reports in CI: structural
// invariants that hold on any machine (wire-call arithmetic, schedule
// equality, allocation ratios), throughput relations with generous
// tolerances, and — for the committed reference files — the headline
// speedups the repository claims, checked against the environment the run
// actually recorded. scripts/check_bench.sh drives this through
// cmifbench's -check-store/-check-sched flags.

// LoadStoreReport reads a BENCH_store.json.
func LoadStoreReport(path string) (*StoreBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r StoreBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// LoadSchedReport reads a BENCH_sched.json.
func LoadSchedReport(path string) (*SchedBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r SchedBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CheckStoreReport validates a store-bench report. committed tightens the
// thresholds to the levels the reference file is expected to document.
// It returns human-readable violations; empty means the report passes.
func CheckStoreReport(r *StoreBenchReport, committed bool) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if len(r.Rows) == 0 {
		return []string{"store report has no rows"}
	}
	if r.Env.GoMaxProcs < 1 || r.Env.GoVersion == "" {
		fail("store report env not captured: %+v", r.Env)
	}

	type key struct {
		scenario string
		clients  int
	}
	rows := map[key]StoreBenchRow{}
	for _, row := range r.Rows {
		rows[key{row.Scenario, row.Clients}] = row
	}
	for _, clients := range r.Config.Clients {
		cold, okCold := rows[key{"per-block-cold", clients}]
		batched, okBatched := rows[key{"batched-cold", clients}]
		if !okCold || !okBatched {
			fail("missing per-block-cold/batched-cold rows at %d clients", clients)
			continue
		}
		// Wire-call arithmetic is machine-independent and exact.
		if cold.WireCalls != int64(cold.Fetches) {
			fail("per-block-cold at %d clients: wire_calls %d != fetches %d",
				clients, cold.WireCalls, cold.Fetches)
		}
		if batched.WireCalls*8 > int64(batched.Fetches) {
			fail("batched-cold at %d clients: wire_calls %d not ≤ fetches/8 (%d)",
				clients, batched.WireCalls, batched.Fetches/8)
		}
		for _, scenario := range []string{"per-block", "batched"} {
			warm, ok := rows[key{scenario + "-warm", clients}]
			if !ok {
				continue
			}
			coldRow := rows[key{scenario + "-cold", clients}]
			if warm.WireCalls > coldRow.WireCalls {
				fail("%s-warm at %d clients: wire_calls %d exceed cold %d",
					scenario, clients, warm.WireCalls, coldRow.WireCalls)
			}
		}
	}

	// Relative throughput: the locality headline must survive, with a
	// generous tolerance for slow or noisy runners.
	minSpeedup := 1.2
	if committed {
		minSpeedup = 4.0
	}
	if r.SpeedupWarmBatched < minSpeedup {
		fail("warm-batched speedup %.2fx below the %.1fx floor", r.SpeedupWarmBatched, minSpeedup)
	}
	return v
}

// LoadWireReport reads a BENCH_wire.json.
func LoadWireReport(path string) (*WireBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r WireBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CheckWireReport validates a wire-bench report. committed enforces the
// repository's headline claims: the multiplexed path at least 3x the
// serialized path at 16 workers on one connection, and a ≥ 64 MiB block
// retrieved through the chunked stream — a transfer protocol v1 cannot
// perform at all.
func CheckWireReport(r *WireBenchReport, committed bool) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if len(r.Rows) == 0 {
		return []string{"wire report has no rows"}
	}
	if r.Env.GoMaxProcs < 1 || r.Env.GoVersion == "" {
		fail("wire report env not captured: %+v", r.Env)
	}

	rows := map[string]map[int]WireBenchRow{}
	for _, row := range r.Rows {
		if rows[row.Scenario] == nil {
			rows[row.Scenario] = map[int]WireBenchRow{}
		}
		rows[row.Scenario][row.Workers] = row

		// Wire-call arithmetic is machine-independent and exact: every
		// fetch is one request on the wire under both disciplines (the
		// corpus blocks all fit single frames).
		if row.WireCalls != int64(row.Fetches) {
			fail("%s at %d workers: wire_calls %d != fetches %d",
				row.Scenario, row.Workers, row.WireCalls, row.Fetches)
		}
	}
	for _, workers := range r.Config.Workers {
		if _, ok := rows["serial-v1"][workers]; !ok {
			fail("missing serial-v1 row at %d workers", workers)
		}
		if _, ok := rows["mux-v2"][workers]; !ok {
			fail("missing mux-v2 row at %d workers", workers)
		}
	}

	// The pipelining headline: the committed reference must document the
	// 3x win at 16 workers; fresh smoke runs on noisy runners only have
	// to show the mux is not slower.
	if _, ok := rows["serial-v1"][16]; ok {
		minSpeedup := 1.1
		if committed {
			minSpeedup = 3.0
		}
		if r.SpeedupMux16 < minSpeedup {
			fail("mux speedup %.2fx below the %.1fx floor at 16 workers", r.SpeedupMux16, minSpeedup)
		}
	} else if committed {
		fail("committed wire report lacks the 16-worker rows the 3x headline is measured at")
	}

	// The streamed-transfer probe.
	if r.Huge == nil {
		if committed {
			fail("committed wire report lacks the huge-block probe")
		}
		return v
	}
	if !r.Huge.Streamed || r.Huge.Chunks < 2 {
		fail("huge block was not streamed in chunks (streamed=%v, chunks=%d)", r.Huge.Streamed, r.Huge.Chunks)
	}
	if r.Huge.Bytes != r.Config.HugeBlockBytes {
		fail("huge block carried %d bytes, config says %d", r.Huge.Bytes, r.Config.HugeBlockBytes)
	}
	if !r.Huge.V1Failed {
		fail("protocol v1 fetched the huge block; it must be unfetchable without streaming")
	}
	if committed && r.Huge.Bytes < 64<<20 {
		fail("committed huge block is %d bytes; the headline requires ≥ 64 MiB", r.Huge.Bytes)
	}
	return v
}

// CheckSchedReport validates a sched-bench report. committed enforces the
// repository's headline claims (incremental ≥10x; parallel ≥2x whenever
// the recorded environment had GOMAXPROCS ≥ 4).
func CheckSchedReport(r *SchedBenchReport, committed bool) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if len(r.Rows) == 0 {
		return []string{"sched report has no rows"}
	}
	if r.Env.GoMaxProcs < 1 || r.Env.GoVersion == "" {
		fail("sched report env not captured: %+v", r.Env)
	}
	if !r.SchedulesIdentical {
		fail("schedules_identical is false: the parallel/incremental paths diverged from the full solve")
	}

	type key struct {
		leaves, arcs int
	}
	makespans := map[key]map[string]int64{}
	for _, row := range r.Rows {
		k := key{row.Leaves, row.Arcs}
		if makespans[k] == nil {
			makespans[k] = map[string]int64{}
		}
		makespans[k][row.Scenario] = row.MakespanMS

		switch row.Scenario {
		case "full-parallel":
			if row.Components != row.Arms {
				fail("full-parallel at %d leaves: %d components, want one per arm (%d)",
					row.Leaves, row.Components, row.Arms)
			}
		case "edit-incremental":
			if row.ComponentsResolvedPerOp > 1.01 {
				fail("edit-incremental at %d leaves: %.2f components re-solved per single-leaf edit, want 1",
					row.Leaves, row.ComponentsResolvedPerOp)
			}
		}
	}
	// The full solve and the parallel solve of one document must agree on
	// the makespan exactly; the two edit loops run different edits, so
	// only the solve pair is comparable.
	for k, m := range makespans {
		if s, ok := m["full-single"]; ok {
			if p, ok := m["full-parallel"]; ok && s != p {
				fail("makespan mismatch at %d leaves/%d arcs: single %dms vs parallel %dms",
					k.leaves, k.arcs, s, p)
			}
		}
	}

	// Allocation: the incremental path must allocate far less than the
	// rebuild-everything path.
	alloc := map[string]float64{}
	for _, row := range r.Rows {
		if row.Leaves == maxLeaves(r) {
			alloc[row.Scenario] = row.AllocKBPerOp
		}
	}
	if full, ok := alloc["edit-full"]; ok {
		if inc, ok := alloc["edit-incremental"]; ok && inc*4 > full {
			fail("edit-incremental allocates %.0fKB/op, not ≤ 1/4 of edit-full's %.0fKB/op", inc, full)
		}
	}

	minIncremental := 2.0
	if committed {
		minIncremental = 10.0
	}
	if r.IncrementalSpeedup < minIncremental {
		fail("incremental speedup %.1fx below the %.1fx floor", r.IncrementalSpeedup, minIncremental)
	}
	if r.Env.GoMaxProcs >= 4 {
		// Fresh smoke runs measure small documents on shared runners:
		// require only "not catastrophically slower" there, and the full
		// headline on the committed reference file.
		minParallel := 0.7
		if committed {
			minParallel = 2.0
		}
		if r.ParallelSpeedup < minParallel {
			fail("parallel speedup %.2fx below the %.1fx floor at GOMAXPROCS=%d",
				r.ParallelSpeedup, minParallel, r.Env.GoMaxProcs)
		}
	}
	return v
}

func maxLeaves(r *SchedBenchReport) int {
	m := 0
	for _, row := range r.Rows {
		if row.Leaves > m {
			m = row.Leaves
		}
	}
	return m
}
