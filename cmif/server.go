package cmif

import (
	"context"
	"time"

	"repro/internal/media"
	"repro/internal/transport"
)

// Server serves documents and data blocks over the interchange protocol —
// the paper's distributed document store (section 6). Build one with
// NewServer, or use the one-call Serve.
type Server struct {
	reg *transport.Registry
	srv *transport.Server
	// grace bounds Serve's wait for in-flight requests after cancellation.
	grace time.Duration
}

// serverConfig collects the server options.
type serverConfig struct {
	store        *media.Store
	docs         []namedDoc
	idleTimeout  time.Duration
	writeTimeout time.Duration
	grace        time.Duration
	maxInFlight  int
	maxVersion   int
}

type namedDoc struct {
	name string
	doc  *Document
}

// ServerOption configures NewServer and Serve.
type ServerOption func(*serverConfig)

// WithServedStore backs the server with an existing block store instead of
// an empty one.
func WithServedStore(s *Store) ServerOption {
	return func(c *serverConfig) { c.store = s }
}

// WithServedDocument preloads a document under name.
func WithServedDocument(name string, d *Document) ServerOption {
	return func(c *serverConfig) { c.docs = append(c.docs, namedDoc{name, d}) }
}

// WithIdleTimeout hangs up connections that sit idle between requests
// longer than d. Zero (the default) keeps them forever.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.idleTimeout = d }
}

// WithWriteTimeout bounds each response write. Zero (the default) means no
// bound.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.writeTimeout = d }
}

// WithShutdownGrace bounds how long Serve waits for in-flight requests
// after its context is cancelled before force-closing connections. The
// default is 5 seconds.
func WithShutdownGrace(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.grace = d }
}

// WithMaxInFlight bounds how many requests one protocol-v2 connection may
// have in flight at once; requests past the bound are rejected with a
// busy error (ErrBusy). The bound is advertised to clients at connect so
// well-behaved clients queue locally instead of being rejected. Zero (the
// default) means 32.
func WithMaxInFlight(n int) ServerOption {
	return func(c *serverConfig) { c.maxInFlight = n }
}

// WithMaxProtocolVersion caps the wire protocol version the server
// negotiates: 1 forces every connection onto the legacy strict
// request/response protocol, 2 (the default) offers the multiplexed
// protocol to clients that ask for it while still serving v1 clients.
func WithMaxProtocolVersion(v int) ServerOption {
	return func(c *serverConfig) { c.maxVersion = v }
}

// NewServer builds a server from functional options. It does not listen
// yet; call Listen, then Serve (or Close).
func NewServer(opts ...ServerOption) *Server {
	cfg := serverConfig{grace: 5 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	reg := transport.NewRegistry(cfg.store)
	for _, nd := range cfg.docs {
		reg.PutDoc(nd.name, nd.doc.doc)
	}
	srv := transport.NewServer(reg)
	srv.IdleTimeout = cfg.idleTimeout
	srv.WriteTimeout = cfg.writeTimeout
	srv.MaxInFlight = cfg.maxInFlight
	srv.MaxVersion = cfg.maxVersion
	return &Server{reg: reg, srv: srv, grace: cfg.grace}
}

// Register adds (or replaces) a document under name while serving.
func (s *Server) Register(name string, d *Document) { s.reg.PutDoc(name, d.doc) }

// DocumentNames lists the registered document names, sorted.
func (s *Server) DocumentNames() []string { return s.reg.DocNames() }

// Store returns the server's block store.
func (s *Server) Store() *Store { return s.reg.Store }

// Listen starts accepting on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// Serve blocks until ctx is cancelled, then shuts down gracefully: the
// listener closes, in-flight requests get their responses, idle
// connections are released, and — after the shutdown grace period —
// stragglers are force-closed. Call after Listen. Returns nil on a clean
// drain; a forced close after the grace expired returns an error matching
// context.DeadlineExceeded, so callers can tell the two apart.
func (s *Server) Serve(ctx context.Context) error {
	<-ctx.Done()
	graceCtx, cancel := context.WithTimeout(context.Background(), s.grace)
	defer cancel()
	return s.srv.Shutdown(graceCtx)
}

// Shutdown drains the server: no new connections, in-flight requests
// complete, and when ctx expires remaining connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close force-closes the listener and every connection immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Serve is the one-call server: listen on addr, serve until ctx is
// cancelled, then drain gracefully. The bound address is reported through
// onListen when non-nil (useful with ":0" addresses).
func Serve(ctx context.Context, addr string, onListen func(boundAddr string, s *Server), opts ...ServerOption) error {
	s := NewServer(opts...)
	bound, err := s.Listen(addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(bound, s)
	}
	return s.Serve(ctx)
}
