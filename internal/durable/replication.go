package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/attr"
	"repro/internal/codec"
	"repro/internal/media"
)

// Log shipping: the WAL's framed records double as the cluster's
// replication stream. A primary frames each mutation once, appends it to
// its own log, and ships the identical bytes to every replica; the
// replica verifies and appends them through AppendFrames — replaying
// exactly what crash recovery replays, so a replica's directory is
// byte-compatible with a primary's and either can recover the other's
// state. A rejoining node catches up the same way: ResyncChunk walks the
// live state in deterministic key order and re-frames it as the records
// a snapshot would hold.

// Exported record-op aliases for replication consumers (the cluster
// layer routes records by key, and the key is Fields[0] for every op).
const (
	RecPutDoc  = recPutDoc
	RecDelDoc  = recDelDoc
	RecPutBlk  = recPutBlk
	RecDelBlk  = recDelBlk
	RecPutDesc = recPutDesc
	RecDelDesc = recDelDesc
	RecName    = recName
)

// Record is one decoded WAL record: the op byte plus its fields. Fields
// alias the buffer they were decoded from; detach before retaining.
type Record struct {
	Op     byte
	Fields [][]byte
}

// FramePutDoc frames a document registration. docBinary is the
// codec.EncodeBinary form of the document.
func FramePutDoc(name string, docBinary []byte) []byte {
	return encodeFrame(recPutDoc, []byte(name), docBinary)
}

// FrameDelDoc frames a document removal.
func FrameDelDoc(name string) []byte {
	return encodeFrame(recDelDoc, []byte(name))
}

// FramePutBlock frames a detached block put (register flag 0 — name
// registrations travel as separate FrameRegisterName records, exactly as
// the journal writes them).
func FramePutBlock(b *media.Block) ([]byte, error) {
	desc, err := encodeDescriptor(b.Descriptor)
	if err != nil {
		return nil, fmt.Errorf("durable: block %q descriptor: %w", b.Name, err)
	}
	return encodeFrame(recPutBlk,
		[]byte(b.ID), []byte(b.Name), []byte(b.Medium.String()), desc, b.Payload, []byte{0}), nil
}

// FrameDelBlock frames a block removal.
func FrameDelBlock(id string) []byte {
	return encodeFrame(recDelBlk, []byte(id))
}

// FrameRegisterName frames a registry name→content-address registration.
func FrameRegisterName(name, id string) []byte {
	return encodeFrame(recName, []byte(name), []byte(id))
}

// FramePutDescriptor frames a ddbms descriptor upsert.
func FramePutDescriptor(id string, desc attr.List) ([]byte, error) {
	data, err := encodeDescriptor(desc)
	if err != nil {
		return nil, fmt.Errorf("durable: descriptor %q: %w", id, err)
	}
	return encodeFrame(recPutDesc, []byte(id), data), nil
}

// FrameDelDescriptor frames a ddbms descriptor removal.
func FrameDelDescriptor(id string) []byte {
	return encodeFrame(recDelDesc, []byte(id))
}

// DecodeFrames splits a concatenation of framed records, verifying each
// frame's length header and CRC-32C — the same checks recovery applies.
// Returned fields alias data. A short or corrupt frame fails the whole
// batch with an error matching ErrCorrupt.
func DecodeFrames(data []byte) ([]Record, error) {
	var recs []Record
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeaderSize {
			return nil, &CorruptError{Path: "(stream)", Offset: int64(off),
				Reason: "truncated frame header"}
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		if length == 0 || length > maxRecordBytes {
			return nil, &CorruptError{Path: "(stream)", Offset: int64(off),
				Reason: fmt.Sprintf("impossible record length %d", length)}
		}
		if uint64(len(data)-off-frameHeaderSize) < uint64(length) {
			return nil, &CorruptError{Path: "(stream)", Offset: int64(off),
				Reason: "truncated record payload"}
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(length)]
		if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(data[off+4:off+8]); got != want {
			return nil, &CorruptError{Path: "(stream)", Offset: int64(off),
				Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got)}
		}
		op, fields, err := decodeRecord(payload, nil)
		if err != nil {
			return nil, &CorruptError{Path: "(stream)", Offset: int64(off),
				Reason: err.Error()}
		}
		recs = append(recs, Record{Op: op, Fields: fields})
		off += frameHeaderSize + int(length)
	}
	return recs, nil
}

// FilterFrames re-frames a batch, keeping only the frames whose decoded
// record keep reports true. The kept frames are the original bytes,
// boundaries and checksums intact — the cluster's resync path uses this
// to drop records for keys a concurrent live replication already
// delivered, without re-encoding anything.
func FilterFrames(frames []byte, keep func(Record) bool) ([]byte, error) {
	var out []byte
	off := 0
	for off < len(frames) {
		if len(frames)-off < frameHeaderSize {
			return nil, &CorruptError{Path: "(stream)", Offset: int64(off),
				Reason: "truncated frame header"}
		}
		length := int(binary.LittleEndian.Uint32(frames[off : off+4]))
		end := off + frameHeaderSize + length
		if length == 0 || length > maxRecordBytes || end > len(frames) {
			return nil, &CorruptError{Path: "(stream)", Offset: int64(off),
				Reason: "truncated or oversized record"}
		}
		payload := frames[off+frameHeaderSize : end]
		op, fields, err := decodeRecord(payload, nil)
		if err != nil {
			return nil, &CorruptError{Path: "(stream)", Offset: int64(off),
				Reason: err.Error()}
		}
		if keep(Record{Op: op, Fields: fields}) {
			out = append(out, frames[off:end]...)
		}
		off = end
	}
	return out, nil
}

// AppendFrames verifies a batch of framed records, appends them to the
// WAL and applies each to the live state — the replica half of log
// shipping. The whole batch is validated (checksums, field shapes,
// decodability, content-address agreement) before anything is appended,
// so a bad batch can never brick the directory with a record recovery
// would reject. Records whose effect the state already holds are skipped
// — equal-bytes document re-puts, blocks already stored under their
// content address, name registrations already pointing at the same id —
// so a full-state resync replayed over a mostly-caught-up replica
// appends only the delta.
//
// The caller must NOT have attached this log as the state's mutation
// journal (media.Store.SetJournal / ddbms journal): AppendFrames applies
// mutations directly and journals them itself, and a self-journaling
// state would record every record twice. Cluster nodes replicate
// explicitly and leave the journal detached.
//
// It returns the names of documents the batch registered (putDocs) and
// removed (delDocs), so a serving registry can be refreshed.
func (l *Log) AppendFrames(frames []byte) (putDocs, delDocs []string, err error) {
	recs, err := DecodeFrames(frames)
	if err != nil {
		return nil, nil, err
	}

	type planned struct {
		rec   Record
		apply func()
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, nil, err
	}

	plan := make([]planned, 0, len(recs))
	want := func(r Record, n int) error {
		if len(r.Fields) != n {
			return fmt.Errorf("durable: replicated op %d: want %d fields, got %d", r.Op, n, len(r.Fields))
		}
		return nil
	}
	for _, r := range recs {
		r := r
		switch r.Op {
		case recPutDoc:
			if err = want(r, 2); err != nil {
				break
			}
			name := string(r.Fields[0])
			if prev, ok := l.docs[name]; ok && bytes.Equal(prev, r.Fields[1]) {
				continue
			}
			doc, derr := codec.DecodeBinary(r.Fields[1])
			if derr != nil {
				err = fmt.Errorf("durable: replicated document %q: %w", name, derr)
				break
			}
			data := append([]byte(nil), r.Fields[1]...)
			plan = append(plan, planned{r, func() {
				l.docs[name] = data
				l.st.Docs[name] = doc
				putDocs = append(putDocs, name)
			}})
		case recDelDoc:
			if err = want(r, 1); err != nil {
				break
			}
			name := string(r.Fields[0])
			if _, ok := l.docs[name]; !ok {
				continue
			}
			plan = append(plan, planned{r, func() {
				delete(l.docs, name)
				delete(l.st.Docs, name)
				delDocs = append(delDocs, name)
			}})
		case recPutBlk:
			if err = want(r, 6); err != nil {
				break
			}
			if len(r.Fields[5]) != 1 {
				err = fmt.Errorf("durable: replicated putblk: bad register flag")
				break
			}
			b, berr := l.st.blockFromRecord(r.Fields)
			if berr != nil {
				err = fmt.Errorf("durable: replicated putblk %q: %w", r.Fields[1], berr)
				break
			}
			if b.ID != string(r.Fields[0]) {
				err = fmt.Errorf("durable: replicated putblk %q: content address %.12s does not match payload",
					r.Fields[1], r.Fields[0])
				break
			}
			if _, ok := l.st.Store.Get(b.ID); ok {
				continue
			}
			register := r.Fields[5][0] == 1
			plan = append(plan, planned{r, func() { l.st.Store.PutOwned(b, register) }})
		case recDelBlk:
			if err = want(r, 1); err != nil {
				break
			}
			id := string(r.Fields[0])
			if _, ok := l.st.Store.Get(id); !ok {
				continue
			}
			plan = append(plan, planned{r, func() { l.st.Store.Delete(id) }})
		case recName:
			if err = want(r, 2); err != nil {
				break
			}
			name, id := string(r.Fields[0]), string(r.Fields[1])
			if cur, ok := l.st.Store.Resolve(name); ok && cur == id {
				continue
			}
			plan = append(plan, planned{r, func() { l.st.Store.RegisterName(name, id) }})
		case recPutDesc:
			if err = want(r, 2); err != nil {
				break
			}
			id := string(r.Fields[0])
			desc, derr := parseDescriptor(r.Fields[1])
			if derr != nil {
				err = fmt.Errorf("durable: replicated descriptor %q: %w", id, derr)
				break
			}
			if cur, ok := l.st.DB.Get(id); ok {
				if curData, cerr := encodeDescriptor(cur); cerr == nil && bytes.Equal(curData, r.Fields[1]) {
					continue
				}
			}
			plan = append(plan, planned{r, func() { l.st.DB.Upsert(id, desc) }})
		case recDelDesc:
			if err = want(r, 1); err != nil {
				break
			}
			id := string(r.Fields[0])
			if _, ok := l.st.DB.Get(id); !ok {
				continue
			}
			plan = append(plan, planned{r, func() { l.st.DB.Delete(id) }})
		default:
			err = fmt.Errorf("durable: replicated record: unknown op %d", r.Op)
		}
		if err != nil {
			l.mu.Unlock()
			return nil, nil, err
		}
	}

	snapDue := false
	for _, p := range plan {
		due, aerr := l.appendLocked(p.rec.Op, p.rec.Fields...)
		if aerr != nil {
			l.mu.Unlock()
			return nil, nil, aerr
		}
		snapDue = snapDue || due
		p.apply()
	}
	l.mu.Unlock()
	if snapDue {
		l.snapshotAsync()
	}
	return putDocs, delDocs, nil
}

// Resync cursor phases, walked in snapshot order.
const (
	resyncDocs   = "docs"
	resyncBlocks = "blocks"
	resyncNames  = "names"
	resyncDescs  = "descs"
)

var resyncPhases = []string{resyncDocs, resyncBlocks, resyncNames, resyncDescs}

// ResyncChunk serializes a slice of the live state as framed records,
// resuming from cursor ("" starts from the beginning). It walks
// documents, blocks, name registrations and descriptors in sorted key
// order — the cursor is "phase/lastKey", so resumption is keyed, not
// positional, and concurrent churn can only re-send a key (harmless:
// AppendFrames dedupes), never skip one that existed when the walk
// started. The chunk stops once maxBytes is exceeded; next == "" means
// the walk is complete. This is the pull half of a rejoining replica's
// catch-up: the records are exactly what a snapshot of the source would
// hold, so the target replays them like crash recovery.
func (l *Log) ResyncChunk(cursor string, maxBytes int) (frames []byte, next string, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	phase, lastKey := resyncDocs, ""
	if cursor != "" {
		i := -1
		for j := 0; j < len(cursor); j++ {
			if cursor[j] == '/' {
				i = j
				break
			}
		}
		if i < 0 {
			return nil, "", fmt.Errorf("durable: bad resync cursor %q", cursor)
		}
		phase, lastKey = cursor[:i], cursor[i+1:]
		ok := false
		for _, p := range resyncPhases {
			if p == phase {
				ok = true
			}
		}
		if !ok {
			return nil, "", fmt.Errorf("durable: bad resync cursor %q", cursor)
		}
	}

	var buf bytes.Buffer
	emit := func(frame []byte) { buf.Write(frame) }

	phaseIdx := 0
	for i, p := range resyncPhases {
		if p == phase {
			phaseIdx = i
		}
	}
	for ; phaseIdx < len(resyncPhases); phaseIdx++ {
		phase = resyncPhases[phaseIdx]
		keys := l.resyncKeys(phase)
		sort.Strings(keys)
		for _, key := range keys {
			if key <= lastKey {
				continue
			}
			frame, ferr := l.resyncFrame(phase, key)
			if ferr != nil {
				return nil, "", ferr
			}
			if frame != nil {
				emit(frame)
			}
			lastKey = key
			if buf.Len() >= maxBytes {
				return buf.Bytes(), phase + "/" + lastKey, nil
			}
		}
		lastKey = ""
	}
	return buf.Bytes(), "", nil
}

// resyncKeys lists the current keys of one resync phase.
func (l *Log) resyncKeys(phase string) []string {
	switch phase {
	case resyncDocs:
		l.mu.Lock()
		keys := make([]string, 0, len(l.docs))
		for name := range l.docs {
			keys = append(keys, name)
		}
		l.mu.Unlock()
		return keys
	case resyncBlocks:
		var ids []string
		l.st.Store.Each(func(b *media.Block) bool {
			ids = append(ids, b.ID)
			return true
		})
		return ids
	case resyncNames:
		return l.st.Store.Names()
	case resyncDescs:
		return l.st.DB.IDs()
	}
	return nil
}

// resyncFrame frames the current value of one key; nil (no error) if the
// key vanished since it was listed.
func (l *Log) resyncFrame(phase, key string) ([]byte, error) {
	switch phase {
	case resyncDocs:
		l.mu.Lock()
		data, ok := l.docs[key]
		if ok {
			data = append([]byte(nil), data...)
		}
		l.mu.Unlock()
		if !ok {
			return nil, nil
		}
		return FramePutDoc(key, data), nil
	case resyncBlocks:
		b, ok := l.st.Store.Get(key)
		if !ok {
			return nil, nil
		}
		return FramePutBlock(b)
	case resyncNames:
		id, ok := l.st.Store.Resolve(key)
		if !ok {
			return nil, nil
		}
		return FrameRegisterName(key, id), nil
	case resyncDescs:
		desc, ok := l.st.DB.Get(key)
		if !ok {
			return nil, nil
		}
		return FramePutDescriptor(key, desc)
	}
	return nil, fmt.Errorf("durable: unknown resync phase %q", phase)
}
