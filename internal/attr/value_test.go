package attr

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{ID("video"), KindID},
		{String("hello world"), KindString},
		{Number(42), KindNumber},
		{Quantity(units.MS(100)), KindNumber},
		{VList(Number(1), Number(2)), KindList},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestIDSanitization(t *testing.T) {
	v := ID("has space(and)parens\"quote")
	id, ok := v.AsID()
	if !ok {
		t.Fatal("not an ID")
	}
	for _, r := range id {
		switch r {
		case ' ', '(', ')', '"', '\t', '\n':
			t.Fatalf("ID %q retains forbidden rune %q", id, r)
		}
	}
}

func TestAccessorMismatches(t *testing.T) {
	if _, ok := ID("x").AsString(); ok {
		t.Error("ID answered AsString")
	}
	if _, ok := String("x").AsID(); ok {
		t.Error("String answered AsID")
	}
	if _, ok := Number(1).AsList(); ok {
		t.Error("Number answered AsList")
	}
	if _, ok := VList().AsNumber(); ok {
		t.Error("List answered AsNumber")
	}
	if _, ok := Quantity(units.Sec(1)).AsInt(); ok {
		t.Error("unit-carrying number answered AsInt")
	}
	if n, ok := Number(7).AsInt(); !ok || n != 7 {
		t.Errorf("Number(7).AsInt() = %d, %v", n, ok)
	}
}

func TestValueEqual(t *testing.T) {
	a := ListOf(Named("x", Number(1)), Item{Value: String("s")})
	b := ListOf(Named("x", Number(1)), Item{Value: String("s")})
	if !a.Equal(b) {
		t.Error("identical lists not equal")
	}
	c := ListOf(Named("y", Number(1)), Item{Value: String("s")})
	if a.Equal(c) {
		t.Error("lists with different item names equal")
	}
	if Number(1).Equal(String("1")) {
		t.Error("cross-kind equality")
	}
	if !Quantity(units.MS(5)).Equal(Quantity(units.MS(5))) {
		t.Error("equal quantities not equal")
	}
	if Quantity(units.MS(5)).Equal(Quantity(units.Sec(5))) {
		t.Error("different units equal")
	}
}

func TestValueCloneIsDeep(t *testing.T) {
	inner := VList(Number(1))
	outer := ListOf(Named("inner", inner))
	clone := outer.Clone()
	// Mutate the clone's nested list; original must be unaffected.
	items, _ := clone.AsList()
	items[0].Name = "mutated"
	origItems, _ := outer.AsList()
	if origItems[0].Name != "inner" {
		t.Error("clone shares item storage with original")
	}
}

func TestQuoteUnquoteRoundTrip(t *testing.T) {
	f := func(s string) bool {
		got, err := Unquote(quote(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnquoteErrors(t *testing.T) {
	for _, s := range []string{``, `"`, `no quotes`, `"dangling\`, `"bad\q"`} {
		if _, err := Unquote(s); err == nil {
			t.Errorf("Unquote(%q): want error", s)
		}
	}
}

func TestValueStringForms(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{ID("video"), "video"},
		{ID(""), "-"},
		{Number(42), "42"},
		{Quantity(units.MS(-40)), "-40ms"},
		{String(`say "hi"`), `"say \"hi\""`},
		{VList(Number(1), ID("x")), "[1 x]"},
		{ListOf(Named("min", Number(0)), Named("max", Quantity(units.Sec(2)))),
			"[(min 0) (max 2s)]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTextAccessor(t *testing.T) {
	if s, ok := ID("x").Text(); !ok || s != "x" {
		t.Error("ID Text failed")
	}
	if s, ok := String("y").Text(); !ok || s != "y" {
		t.Error("String Text failed")
	}
	if s, ok := Number(3).Text(); !ok || s != "3" {
		t.Error("Number Text failed")
	}
	if _, ok := VList().Text(); ok {
		t.Error("List Text should fail")
	}
}
