// Package media implements CMIF data blocks and data descriptors (Figure 2
// of the paper) together with synthetic capture tools standing in for the
// paper's hardware-backed Media Block Capture Tools.
//
// "Data blocks contain data that is typically associated with a single
// medium ... The fundamental property that a data block has is atomicity."
// "Data block descriptors are collections of attributes that describe the
// nature of the data block ... Example attributes may be structure
// information on the data block (its format, its resolution, its length,
// the resources required to support it, etc.)"
//
// Substitution note (DESIGN.md): payloads are deterministic synthetic bytes.
// CMIF tools never interpret payloads — only descriptor attributes flow
// through the pipeline — so synthetic blocks exercise exactly the same code
// paths as captured media.
package media

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/units"
)

// Block is one atomic single-medium data block plus its descriptor.
type Block struct {
	// ID is the content address (hex SHA-256 of medium and payload).
	ID string
	// Name is the human-oriented identifier used by "file" attributes.
	Name string
	// Medium classifies the payload.
	Medium core.Medium
	// Payload is the raw data. Never interpreted by document tools.
	Payload []byte
	// Descriptor carries the block's attributes.
	Descriptor attr.List
}

// Standard descriptor attribute names.
const (
	// DescFormat is the encoding format identifier (e.g. "gray8",
	// "pcm8", "utf8"). The paper encourages carrying well-accepted
	// format names even though formats are orthogonal to CMIF.
	DescFormat = "format"
	// DescDuration is the intrinsic presentation length.
	DescDuration = "duration"
	// DescWidth and DescHeight give raster dimensions.
	DescWidth  = "width"
	DescHeight = "height"
	// DescFrameRate and DescSampleRate carry media rates.
	DescFrameRate  = "framerate"
	DescSampleRate = "samplerate"
	// DescFrames and DescSamples count media units.
	DescFrames  = "frames"
	DescSamples = "samples"
	// DescBytes is the payload size.
	DescBytes = "bytes"
	// DescColorBits is bits per pixel (color depth).
	DescColorBits = "colorbits"
	// DescResources lists resource requirements (IDs) the paper mentions.
	DescResources = "resources"
	// DescTitle is a human-readable title.
	DescTitle = "title"
	// DescLang is a language tag for text blocks.
	DescLang = "lang"
)

// ContentAddress returns the content address a block with this medium and
// payload would carry — what NewBlock fills into ID. The durability layer
// uses it to verify replayed records without paying NewBlock's descriptor
// clone.
func ContentAddress(m core.Medium, payload []byte) string { return computeID(m, payload) }

// computeID returns the content address for a payload.
func computeID(m core.Medium, payload []byte) string {
	h := sha256.New()
	h.Write([]byte(m.String()))
	h.Write([]byte{0})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// NewBlock builds a block, computing its content address and filling the
// universal descriptor attributes (bytes, format defaulting by medium).
func NewBlock(name string, m core.Medium, payload []byte, desc attr.List) *Block {
	b := &Block{
		ID:         computeID(m, payload),
		Name:       name,
		Medium:     m,
		Payload:    payload,
		Descriptor: desc.Clone(),
	}
	b.Descriptor.Set(DescBytes, attr.Number(int64(len(payload))))
	b.Descriptor.SetDefault(DescFormat, attr.ID(defaultFormat(m)))
	return b
}

// NewBlockAt builds a block exactly as NewBlock does but takes the
// content address as given instead of digesting the payload. The caller
// must have established id == ContentAddress(m, payload) by other means
// — the dedupe fetch path does, assembling chunk-verified bytes under a
// manifest whose binding to id was proven on its first assembly.
func NewBlockAt(id, name string, m core.Medium, payload []byte, desc attr.List) *Block {
	b := &Block{
		ID:         id,
		Name:       name,
		Medium:     m,
		Payload:    payload,
		Descriptor: desc.Clone(),
	}
	b.Descriptor.Set(DescBytes, attr.Number(int64(len(payload))))
	b.Descriptor.SetDefault(DescFormat, attr.ID(defaultFormat(m)))
	return b
}

func defaultFormat(m core.Medium) string {
	switch m {
	case core.MediumVideo:
		return "gray8-frames"
	case core.MediumAudio:
		return "pcm8"
	case core.MediumImage:
		return "gray8"
	case core.MediumGraphic:
		return "strokes"
	default:
		return "utf8"
	}
}

// Duration returns the block's intrinsic presentation length from its
// descriptor, resolved with the block's own rates.
func (b *Block) Duration() (time.Duration, bool) {
	v, ok := b.Descriptor.Get(DescDuration)
	if !ok {
		return 0, false
	}
	q, ok := v.AsNumber()
	if !ok {
		return 0, false
	}
	d, err := b.Resolver().Duration(q)
	if err != nil {
		return 0, false
	}
	return d, true
}

// Resolver builds a unit resolver from the descriptor's rate attributes.
func (b *Block) Resolver() *units.Resolver {
	var r units.Rates
	if n, ok := b.Descriptor.GetInt(DescFrameRate); ok {
		r.FrameRate = n
	}
	if n, ok := b.Descriptor.GetInt(DescSampleRate); ok {
		r.SampleRate = n
	}
	return units.NewResolver(r)
}

// Width and Height return raster dimensions (0 when absent).
func (b *Block) Width() int64 {
	n, _ := b.Descriptor.GetInt(DescWidth)
	return n
}

// Height returns the raster height (0 when absent).
func (b *Block) Height() int64 {
	n, _ := b.Descriptor.GetInt(DescHeight)
	return n
}

// Frames returns the frame count for video blocks (0 when absent).
func (b *Block) Frames() int64 {
	n, _ := b.Descriptor.GetInt(DescFrames)
	return n
}

// Samples returns the sample count for audio blocks (0 when absent).
func (b *Block) Samples() int64 {
	n, _ := b.Descriptor.GetInt(DescSamples)
	return n
}

// ColorBits returns the color depth (8 when absent, matching the synthetic
// generators).
func (b *Block) ColorBits() int64 {
	if n, ok := b.Descriptor.GetInt(DescColorBits); ok {
		return n
	}
	return 8
}

// Verify recomputes the content address and checks descriptor/payload
// agreement; used after transport and by property tests.
func (b *Block) Verify() error {
	if want := computeID(b.Medium, b.Payload); b.ID != want {
		return fmt.Errorf("media: block %q content address mismatch", b.Name)
	}
	if n, ok := b.Descriptor.GetInt(DescBytes); ok && n != int64(len(b.Payload)) {
		return fmt.Errorf("media: block %q bytes attribute %d != payload %d",
			b.Name, n, len(b.Payload))
	}
	return nil
}

// PayloadReader exposes the payload for random or streaming access
// without copying it: *bytes.Reader implements io.Reader, io.ReaderAt,
// io.Seeker and io.WriterTo, so stream senders can io.Copy straight
// from a (possibly mmap-backed) payload into a connection.
func (b *Block) PayloadReader() *bytes.Reader { return bytes.NewReader(b.Payload) }

// Clone deep-copies the block.
func (b *Block) Clone() *Block {
	return &Block{
		ID:         b.ID,
		Name:       b.Name,
		Medium:     b.Medium,
		Payload:    append([]byte(nil), b.Payload...),
		Descriptor: b.Descriptor.Clone(),
	}
}

// String summarizes the block.
func (b *Block) String() string {
	return fmt.Sprintf("%s %s (%d bytes)", b.Medium, b.Name, len(b.Payload))
}
