package player

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/units"
)

// seekDoc builds seq(a[0,100], b[100,300]) under a par root with a text
// leaf cap[0,400], plus an arc from a.end to cap.end.
func seekDoc(t *testing.T) (*core.Document, *sched.Graph, *sched.Schedule) {
	t.Helper()
	root := core.NewPar().SetName("r")
	vseq := core.NewSeq().SetName("vseq")
	vseq.Add(leaf("a", "video", 100), leaf("b", "video", 200))
	cap := leaf("cap", "text", 400)
	cap.AddArc(core.SyncArc{DestEnd: core.End, Strict: core.May,
		Source: "../vseq/a", SrcEnd: core.End, Dest: "",
		MaxDelay: units.InfiniteQuantity()})
	root.Add(vseq, cap)
	d := doc(t, root)
	g, err := sched.Build(d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Solve(sched.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d, g, s
}

func TestSeekPastMakespan(t *testing.T) {
	_, _, s := seekDoc(t)
	if s.Makespan() != 400*time.Millisecond {
		t.Fatalf("makespan = %v", s.Makespan())
	}
	rep := AnalyzeSeek(s, s.Makespan()+time.Second)
	if len(rep.Active) != 0 {
		t.Errorf("active leaves past makespan: %v", rep.Active)
	}
	// Every arc lies entirely in the past: satisfied, never invalid.
	for _, sa := range rep.Arcs {
		if sa.State != ArcSatisfied {
			t.Errorf("arc %v past makespan: state %v, want satisfied", sa.Ref, sa.State)
		}
	}
}

func TestSeekAtExactMakespan(t *testing.T) {
	_, _, s := seekDoc(t)
	// The leaf interval is half-open [start, end): at exactly the
	// makespan nothing is active any more.
	rep := AnalyzeSeek(s, s.Makespan())
	if len(rep.Active) != 0 {
		t.Errorf("active leaves at exact makespan: %v", rep.Active)
	}
}

func TestSeekAtZero(t *testing.T) {
	_, _, s := seekDoc(t)
	rep := AnalyzeSeek(s, 0)
	if len(rep.Active) != 2 { // a and cap start at 0
		t.Errorf("active at t=0: %v", rep.Active)
	}
	for _, sa := range rep.Arcs {
		if sa.State != ArcValid {
			t.Errorf("arc %v at t=0: state %v, want valid", sa.Ref, sa.State)
		}
	}
}

func TestSeekBoundaryBetweenLeaves(t *testing.T) {
	d, _, s := seekDoc(t)
	// At exactly 100ms a's interval [0,100) has closed and b's [100,300)
	// has opened: only b (and cap) are active.
	rep := AnalyzeSeek(s, 100*time.Millisecond)
	names := map[string]bool{}
	for _, n := range rep.Active {
		names[n.Name()] = true
	}
	if names["a"] || !names["b"] || !names["cap"] {
		t.Errorf("active at 100ms = %v", rep.Active)
	}
	_ = d
}

func TestSeekIntoDroppedArcRegion(t *testing.T) {
	// A May arc that conflicts with seq order is dropped by relaxation.
	// Seeking into the region the dropped arc used to govern must still
	// classify every arc (the dropped one included) and resume cleanly.
	root := core.NewSeq().SetName("r")
	a, b, c := leaf("a", "video", 100), leaf("b", "video", 100), leaf("c", "video", 100)
	root.Add(a, b, c)
	// Demands c begin 50ms after its own end region: contradicts the
	// gap-free chain, droppable.
	root.AddArc(core.SyncArc{DestEnd: core.Begin, Strict: core.May,
		Source: "b", SrcEnd: core.End, Dest: "a",
		Offset: units.MS(50), MaxDelay: units.InfiniteQuantity()})
	d := doc(t, root)
	g, err := sched.Build(d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Solve(sched.SolveOptions{Relax: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dropped) != 1 {
		t.Fatalf("dropped = %v, want the conflicting May arc", s.Dropped)
	}

	rep := AnalyzeSeek(s, 150*time.Millisecond) // inside b, after a
	if len(rep.Arcs) != 1 {
		t.Fatalf("arcs classified = %d, want 1 (dropped arcs stay visible)", len(rep.Arcs))
	}
	// The arc's source (b.end at 200ms) has not executed at 150ms, so the
	// arc reads valid even though the plan dropped it.
	if rep.Arcs[0].State != ArcValid {
		t.Errorf("dropped-arc state at 150ms = %v", rep.Arcs[0].State)
	}

	rg := ResumeGraph(g, rep)
	if _, err := rg.Solve(sched.SolveOptions{Relax: true}); err != nil {
		t.Errorf("resume inside dropped-arc region unsolvable: %v", err)
	}

	// Past both endpoints the dropped arc reads satisfied — its window is
	// history even though playback never honoured it — and resuming still
	// needs relaxation, since satisfied arcs stay in the graph.
	rep = AnalyzeSeek(s, 250*time.Millisecond)
	if len(rep.Invalid()) != 0 {
		t.Fatalf("invalid arcs at 250ms = %v, want none", rep.Invalid())
	}
	if rep.Arcs[0].State != ArcSatisfied {
		t.Errorf("dropped-arc state at 250ms = %v, want satisfied", rep.Arcs[0].State)
	}
	rg = ResumeGraph(g, rep)
	if _, err := rg.Solve(sched.SolveOptions{}); err == nil {
		t.Error("resume keeps the conflicting May arc: expected a conflict without relaxation")
	}
	if _, err := rg.Solve(sched.SolveOptions{Relax: true}); err != nil {
		t.Errorf("resume with relaxation unsolvable: %v", err)
	}
}

func TestSeekNegativeTime(t *testing.T) {
	_, _, s := seekDoc(t)
	rep := AnalyzeSeek(s, -time.Second)
	if len(rep.Active) != 0 {
		t.Errorf("active before t=0: %v", rep.Active)
	}
	for _, sa := range rep.Arcs {
		if sa.State != ArcValid {
			t.Errorf("arc %v before start: %v, want valid", sa.Ref, sa.State)
		}
	}
}
