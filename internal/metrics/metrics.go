// Package metrics is a dependency-free observability registry: named
// counters, gauges and fixed-bucket histograms with an atomic hot path,
// rendered as Prometheus text exposition format or JSON. It is the
// instrumentation substrate of the production soak harness: the transport
// server, the scheduler, the client block cache and the durability layer
// all record into a Registry, and cmifd exposes one over HTTP.
//
// Design constraints, in order:
//
//  1. The record path (Counter.Inc, Gauge.Set, Histogram.Observe) must be
//     cheap enough to sit on every request — single atomic ops, no locks,
//     no allocation.
//  2. No dependencies beyond the standard library.
//  3. Quantiles (p50/p99/p999) come from fixed exponential buckets, so
//     they cost nothing at record time and are estimated only when read.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the Prometheus semantics to
// hold; Add does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (in-flight
// requests, queue depth, live WAL bytes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets, from which
// quantiles are estimated at read time. Observations are in seconds
// (Observe takes a time.Duration and converts); bucket bounds are upper
// bounds in seconds, strictly increasing, with an implicit +Inf bucket at
// the end.
type Histogram struct {
	bounds []float64 // upper bounds, seconds
	counts []atomic.Int64
	sumNS  atomic.Int64 // total observed time in nanoseconds
	count  atomic.Int64
}

// DefaultLatencyBuckets covers 10µs to ~84s in factor-of-two steps — wide
// enough for in-memory ops at the fast end and queue-saturated requests at
// the slow end, narrow enough that interpolated p99s stay meaningful.
func DefaultLatencyBuckets() []float64 {
	bounds := make([]float64, 24)
	b := 10e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveSeconds(d.Seconds())
}

// ObserveSeconds records one observation already expressed in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	h.sumNS.Add(int64(s * float64(time.Second)))
	h.count.Add(1)
	// Binary search beats linear scan only past ~32 buckets; with ~24
	// bounds the branch-predictable linear scan wins and stays simple.
	for i, b := range h.bounds {
		if s <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// Count reports how many observations the histogram has absorbed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation inside the bucket where the cumulative count crosses
// q*total. The +Inf bucket reports the largest finite bound (the estimate
// cannot exceed what the buckets can represent). Zero observations
// estimate 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := int64(0)
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind discriminates the registry's value types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument: a base name, optional constant
// labels (rendered Prometheus-style), help text and the typed value.
type metric struct {
	name   string // base name, e.g. cmif_requests_total
	labels string // rendered label set, e.g. {op="getblk"}, or ""
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// key is the registry map key: base name plus rendered labels.
func (m *metric) key() string { return m.name + m.labels }

// Registry holds named metrics. Lookups lock; the returned instruments
// record lock-free, so the idiom is to resolve instruments once at
// construction time and hold the pointers.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []*metric // registration order, for stable rendering
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// renderLabels formats name/value pairs as a Prometheus label set. Pairs
// must come in name, value order; stray odd arguments are dropped.
func renderLabels(pairs []string) string {
	if len(pairs) < 2 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", pairs[i], pairs[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// lookup finds or creates the metric under name+labels, enforcing kind
// agreement: re-registering an existing name with a different kind panics,
// since it is always a programming error.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labelPairs []string) *metric {
	labels := renderLabels(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + labels
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered with a different kind", key))
		}
		return m
	}
	m := &metric{name: name, labels: labels, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = newHistogram(bounds)
	}
	r.metrics[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under name (creating it on first
// use). Optional labelPairs attach a constant label set (name, value,
// name, value, ...), so per-op variants of one family share a base name.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	return r.lookup(name, help, kindCounter, nil, labelPairs).c
}

// Gauge returns the gauge registered under name (creating it on first use).
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labelPairs).g
}

// Histogram returns the histogram registered under name with the default
// latency buckets (creating it on first use).
func (r *Registry) Histogram(name, help string, labelPairs ...string) *Histogram {
	return r.lookup(name, help, kindHistogram, nil, labelPairs).h
}

// HistogramBuckets is Histogram with explicit upper bounds (seconds,
// strictly increasing). Bounds are fixed at first registration; later
// lookups of the same name return the existing instrument.
func (r *Registry) HistogramBuckets(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	return r.lookup(name, help, kindHistogram, bounds, labelPairs).h
}

// snapshotMetrics copies the metric list under the lock; values are read
// atomically afterwards, so a snapshot is consistent per-instrument, not
// across instruments — fine for monitoring.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.order))
	copy(out, r.order)
	return out
}

// HistogramSnapshot is one histogram's point-in-time summary.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
	P999  float64 `json:"p999_seconds"`
}

// Snapshot is a registry's point-in-time state, keyed by metric name plus
// rendered labels — the JSON face of the /metrics endpoint.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			snap.Counters[m.key()] = m.c.Value()
		case kindGauge:
			snap.Gauges[m.key()] = m.g.Value()
		case kindHistogram:
			snap.Histograms[m.key()] = HistogramSnapshot{
				Count: m.h.Count(),
				Sum:   m.h.Sum().Seconds(),
				P50:   m.h.Quantile(0.50),
				P99:   m.h.Quantile(0.99),
				P999:  m.h.Quantile(0.999),
			}
		}
	}
	return snap
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per family, then one sample
// line per instrument — histogram instruments expand into cumulative
// _bucket lines plus _sum and _count.
func (r *Registry) WritePrometheus(sb *strings.Builder) {
	ms := r.snapshotMetrics()
	// Families must render contiguously (one HELP/TYPE header each), so
	// group by base name while keeping first-registration order.
	byName := map[string][]*metric{}
	var names []string
	for _, m := range ms {
		if _, ok := byName[m.name]; !ok {
			names = append(names, m.name)
		}
		byName[m.name] = append(byName[m.name], m)
	}
	for _, name := range names {
		family := byName[name]
		first := family[0]
		if first.help != "" {
			fmt.Fprintf(sb, "# HELP %s %s\n", name, first.help)
		}
		switch first.kind {
		case kindCounter:
			fmt.Fprintf(sb, "# TYPE %s counter\n", name)
			for _, m := range family {
				fmt.Fprintf(sb, "%s%s %d\n", m.name, m.labels, m.c.Value())
			}
		case kindGauge:
			fmt.Fprintf(sb, "# TYPE %s gauge\n", name)
			for _, m := range family {
				fmt.Fprintf(sb, "%s%s %d\n", m.name, m.labels, m.g.Value())
			}
		case kindHistogram:
			fmt.Fprintf(sb, "# TYPE %s histogram\n", name)
			for _, m := range family {
				writePrometheusHistogram(sb, m)
			}
		}
	}
}

// writePrometheusHistogram renders one histogram instrument's cumulative
// bucket lines. The le label merges with any constant labels.
func writePrometheusHistogram(sb *strings.Builder, m *metric) {
	inner := strings.TrimSuffix(strings.TrimPrefix(m.labels, "{"), "}")
	leLabel := func(le string) string {
		if inner == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", inner, le)
	}
	cum := int64(0)
	for i, b := range m.h.bounds {
		cum += m.h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket%s %d\n", m.name, leLabel(formatBound(b)), cum)
	}
	cum += m.h.counts[len(m.h.bounds)].Load()
	fmt.Fprintf(sb, "%s_bucket%s %d\n", m.name, leLabel("+Inf"), cum)
	fmt.Fprintf(sb, "%s_sum%s %g\n", m.name, m.labels, m.h.Sum().Seconds())
	fmt.Fprintf(sb, "%s_count%s %d\n", m.name, m.labels, m.h.Count())
}

// formatBound renders a bucket bound without float noise.
func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}

// Prometheus renders the registry as a Prometheus text page.
func (r *Registry) Prometheus() string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}

// CounterTotals returns the counters sorted by key — the shape cmifd logs
// at shutdown so soak runs ending in SIGTERM still report complete
// numbers.
func (r *Registry) CounterTotals() []string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s=%d", k, snap.Counters[k])
	}
	return out
}
