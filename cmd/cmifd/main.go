// Command cmifd serves CMIF documents and data blocks over the interchange
// protocol — the stand-in for the distributed document store of the paper's
// section 6.
//
// Usage:
//
//	cmifd [-addr 127.0.0.1:7911] [-news N] [-idle 2m] [-grace 5s]
//	      [-max-inflight 32] [-max-proto 4] [-compress=false]
//	      [-data DIR] [-sync always|interval|never] [-snap-bytes N]
//	      [-metrics ADDR] [-max-concurrent N] [-max-queue N] [-max-wait D]
//	      [-max-subscribers N] [-sub-queue N]
//
// With -news, the built-in evening-news corpus is preloaded under the name
// "news". With -data, the server is durable: the corpus recovers from DIR
// on start (snapshot load plus WAL replay) and every mutation is
// write-ahead-logged before it is acknowledged, so a cmifd killed
// mid-ingest — even with SIGKILL — restarts with its exact pre-kill
// corpus. -sync picks the fsync policy and -snap-bytes the automatic
// snapshot/compaction threshold. The server speaks the multiplexed wire
// protocol, up to v4 with live-document subscriptions, negotiated frame
// compression (-compress=false declines) and chunk-deduped block
// fetches, to clients that negotiate it (cap with -max-proto; 1 forces
// the legacy protocol) and bounds per-connection pipelining with
// -max-inflight. -max-subscribers
// bounds live subscriptions server-wide and -sub-queue sets how many
// pending changes a slow watcher may buffer before it is shed.
//
// With -metrics, an HTTP endpoint serves the server's instruments at
// /metrics: Prometheus text exposition by default, JSON with
// ?format=json. With -max-concurrent, server-wide admission control
// bounds how many requests execute at once (-max-queue more may wait,
// each at most -max-wait); the excess is shed promptly with a busy
// error instead of collapsing every request's latency.
//
// It runs until SIGINT or SIGTERM, then drains gracefully: in-flight
// requests get their responses, the metrics listener drains after the
// wire listener, and the final counter totals are logged before exit.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmif"
	"repro/internal/daemon"
)

func main() {
	var common daemon.Flags
	common.Register(flag.CommandLine, "127.0.0.1:7911", "server-wide")
	news := flag.Int("news", 2, "preload the evening news with N stories (0 disables)")
	maxProto := flag.Int("max-proto", 4, "newest wire protocol version to negotiate (1 forces legacy)")
	compress := flag.Bool("compress", true, "offer negotiated per-frame compression to protocol-v4 clients")
	dataDir := flag.String("data", "", "durable data directory: recover the corpus from it and write-ahead-log every mutation (empty = in-memory only)")
	syncMode := flag.String("sync", "interval", "WAL fsync policy with -data: always, interval or never")
	snapBytes := flag.Int64("snap-bytes", 0, "snapshot+compact once the WAL grows past this many bytes (0 = default 64 MiB, negative disables)")
	flag.Parse()

	opts := []cmif.ServeOption{
		cmif.WithIdleTimeout(common.Idle),
		cmif.WithShutdownGrace(common.Grace),
		cmif.WithMaxInFlight(common.MaxInFlight),
		cmif.WithMaxProtocolVersion(*maxProto),
		cmif.WithServerCompression(*compress),
		cmif.WithSubscriberQueue(common.SubQueue),
	}
	if adm, ok := common.Admission(); ok {
		opts = append(opts, cmif.WithAdmission(adm))
	}
	if *dataDir != "" {
		policy, err := cmif.ParseSyncPolicy(*syncMode)
		if err != nil {
			fatal(err)
		}
		opts = append(opts,
			cmif.WithDataDir(*dataDir),
			cmif.WithSyncPolicy(policy),
			cmif.WithSnapshotThreshold(*snapBytes),
		)
	}
	if *news > 0 {
		doc, store, err := cmif.BuildNews(cmif.NewsConfig{Stories: *news})
		if err != nil {
			fatal(err)
		}
		opts = append(opts,
			cmif.WithServedStore(store),
			cmif.WithServedDocument("news", doc),
		)
	}

	ctx, stop := daemon.SignalContext()
	defer stop()

	s := cmif.NewServer(opts...)
	bound, err := s.Listen(common.Addr)
	if err != nil {
		s.Close()
		fatal(err)
	}
	fmt.Printf("cmifd: serving %d documents, %d blocks on %s\n",
		len(s.DocumentNames()), s.Store().Len(), bound)
	if *dataDir != "" {
		fmt.Printf("cmifd: durable in %s (sync=%s)\n", *dataDir, *syncMode)
	}
	if common.MaxConcurrent > 0 {
		fmt.Printf("cmifd: admission control: %d concurrent, %d queued, %v max wait\n",
			common.MaxConcurrent, common.MaxQueue, common.MaxWait)
	}

	os.Exit(daemon.Run(ctx, s, daemon.RunConfig{
		Name:        "cmifd",
		Grace:       common.Grace,
		MetricsAddr: common.Metrics,
		Metrics:     s.Metrics(),
	}))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmifd:", err)
	os.Exit(1)
}
