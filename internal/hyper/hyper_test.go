package hyper

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/units"
)

func TestParseCond(t *testing.T) {
	c, err := ParseCond("lang=en,audience!=expert")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clauses) != 2 || c.Clauses[0].Key != "lang" || !c.Clauses[1].Negate {
		t.Errorf("parsed %+v", c)
	}
	if c.String() != "lang=en,audience!=expert" {
		t.Errorf("String = %q", c.String())
	}
	if _, err := ParseCond("novalue"); err == nil {
		t.Error("clause without = accepted")
	}
	if _, err := ParseCond("=x"); err == nil {
		t.Error("empty key accepted")
	}
	empty, err := ParseCond("  ")
	if err != nil || !empty.Eval(Env{}) {
		t.Error("empty condition should be true")
	}
}

func TestCondEval(t *testing.T) {
	c, _ := ParseCond("lang=en")
	if !c.Eval(Env{"lang": "en"}) {
		t.Error("match failed")
	}
	if c.Eval(Env{"lang": "nl"}) {
		t.Error("mismatch passed")
	}
	if c.Eval(Env{}) {
		t.Error("missing key passed")
	}
	n, _ := ParseCond("lang!=en")
	if !n.Eval(Env{}) || !n.Eval(Env{"lang": "nl"}) || n.Eval(Env{"lang": "en"}) {
		t.Error("negation broken")
	}
	conj, _ := ParseCond("a=1,b=2")
	if !conj.Eval(Env{"a": "1", "b": "2"}) || conj.Eval(Env{"a": "1"}) {
		t.Error("conjunction broken")
	}
}

// bilingual builds a document with Dutch and English caption branches and a
// conditional arc.
func bilingual(t *testing.T) *core.Document {
	t.Helper()
	root := core.NewPar().SetName("story")
	video := core.NewExt().SetName("video").
		SetAttr("channel", attr.ID("video")).
		SetAttr("file", attr.String("v.vid")).
		SetAttr("duration", attr.Quantity(units.MS(500)))
	capEN := core.NewImm([]byte("worth ten million...")).SetName("cap-en").
		SetAttr("channel", attr.ID("captions")).
		SetAttr("duration", attr.Quantity(units.MS(500)))
	SetWhen(capEN, "lang=en")
	capNL := core.NewImm([]byte("waarde van tien miljoen...")).SetName("cap-nl").
		SetAttr("channel", attr.ID("captions")).
		SetAttr("duration", attr.Quantity(units.MS(500)))
	SetWhen(capNL, "lang=nl")
	// Conditional arc: captions sync to video start only for subtitled
	// languages.
	capEN.AddArc(core.SyncArc{
		DestEnd: core.Begin, Strict: core.Must,
		Source: "../video", SrcEnd: core.Begin, Dest: "",
		MaxDelay: units.MS(0), Cond: "lang=en",
	})
	root.Add(video, capEN, capNL)
	d, err := core.NewDocument(root)
	if err != nil {
		t.Fatal(err)
	}
	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "video", Medium: core.MediumVideo, Rates: units.Rates{FrameRate: 25}})
	cd.Define(core.Channel{Name: "captions", Medium: core.MediumText})
	d.SetChannels(cd)
	return d
}

func TestSpecializeSelectsBranch(t *testing.T) {
	d := bilingual(t)
	en, err := Specialize(d, Env{"lang": "en"})
	if err != nil {
		t.Fatal(err)
	}
	if en.Root.FindByName("cap-en") == nil {
		t.Error("english caption pruned")
	}
	if en.Root.FindByName("cap-nl") != nil {
		t.Error("dutch caption survived")
	}
	// Surviving nodes lose their when attributes.
	if en.Root.FindByName("cap-en").Attrs.Has(WhenAttr) {
		t.Error("when attribute not stripped")
	}
	// Surviving arcs lose their conditions.
	arcs, err := en.Root.FindByName("cap-en").Arcs()
	if err != nil || len(arcs) != 1 {
		t.Fatalf("arcs = %v, %v", arcs, err)
	}
	if arcs[0].Cond != "" {
		t.Errorf("arc condition not cleared: %q", arcs[0].Cond)
	}
	// Original untouched.
	if d.Root.FindByName("cap-nl") == nil {
		t.Error("Specialize mutated the original")
	}
	// The specialized document schedules normally.
	g, err := sched.Build(en, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Solve(sched.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecializeDropsFalseArcs(t *testing.T) {
	d := bilingual(t)
	nl, err := Specialize(d, Env{"lang": "nl"})
	if err != nil {
		t.Fatal(err)
	}
	if nl.Root.FindByName("cap-en") != nil {
		t.Error("english caption survived")
	}
	nlCap := nl.Root.FindByName("cap-nl")
	if nlCap == nil {
		t.Fatal("dutch caption pruned")
	}
	arcs, _ := nlCap.Arcs()
	if len(arcs) != 0 {
		t.Errorf("dutch caption has arcs: %v", arcs)
	}
}

func TestSpecializeUnknownEnvDropsAllConditionals(t *testing.T) {
	d := bilingual(t)
	none, err := Specialize(d, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if none.Root.FindByName("cap-en") != nil || none.Root.FindByName("cap-nl") != nil {
		t.Error("conditional branches survived empty env")
	}
	if none.Root.FindByName("video") == nil {
		t.Error("unconditional node pruned")
	}
}

func TestSpecializeNestedConditions(t *testing.T) {
	root := core.NewSeq().SetName("r")
	outer := core.NewSeq().SetName("outer")
	SetWhen(outer, "detail=full")
	inner := core.NewImm([]byte("deep")).SetName("inner")
	SetWhen(inner, "lang=en")
	outer.AddChild(inner)
	root.AddChild(outer)
	d, err := core.NewDocument(root)
	if err != nil {
		t.Fatal(err)
	}
	// Outer false: whole subtree gone regardless of inner.
	s1, err := Specialize(d, Env{"lang": "en"})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Root.FindByName("outer") != nil {
		t.Error("outer survived")
	}
	// Outer true, inner false: outer stays, inner pruned.
	s2, err := Specialize(d, Env{"detail": "full"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Root.FindByName("outer") == nil || s2.Root.FindByName("inner") != nil {
		t.Error("nested pruning wrong")
	}
}

func TestSpecializeErrors(t *testing.T) {
	root := core.NewSeq().SetName("r")
	bad := core.NewImm([]byte("x")).SetName("bad")
	bad.Attrs.Set(WhenAttr, attr.String("oops"))
	root.AddChild(bad)
	d, err := core.NewDocument(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Specialize(d, Env{}); err == nil {
		t.Error("malformed when condition accepted")
	}

	root2 := core.NewSeq().SetName("r")
	badArc := core.NewImm([]byte("x")).SetName("x")
	badArc.AddArc(core.SyncArc{Source: "..", Dest: "", Cond: "nope"})
	root2.AddChild(badArc)
	d2, err := core.NewDocument(root2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Specialize(d2, Env{}); err == nil {
		t.Error("malformed arc condition accepted")
	}
}

func TestVariables(t *testing.T) {
	d := bilingual(t)
	vars := Variables(d)
	if len(vars) != 1 || vars[0] != "lang" {
		t.Errorf("Variables = %v", vars)
	}
	// A second variable via a when on a fresh node.
	extra := core.NewImm([]byte("x")).SetName("extra")
	SetWhen(extra, "detail=full")
	d.Root.AddChild(extra)
	vars = Variables(d)
	if len(vars) != 2 || vars[0] != "detail" || vars[1] != "lang" {
		t.Errorf("Variables = %v", vars)
	}
}

func TestWhenAsIDAccepted(t *testing.T) {
	root := core.NewSeq().SetName("r")
	n := core.NewImm([]byte("x")).SetName("n")
	n.Attrs.Set(WhenAttr, attr.ID("lang=en"))
	root.AddChild(n)
	d, err := core.NewDocument(root)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Specialize(d, Env{"lang": "en"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Root.FindByName("n") == nil {
		t.Error("ID-valued when not honoured")
	}
}
