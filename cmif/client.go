package cmif

import (
	"context"
	"time"

	"repro/internal/transport"
)

// Client is one connection to an interchange server. Every operation takes
// a context.Context whose deadline and cancellation are enforced on the
// wire (connection read/write deadlines); a cancelled call poisons the
// connection, so open a fresh client afterwards. Not safe for concurrent
// use; open one client per goroutine.
type Client struct {
	c *transport.Client
}

// clientConfig collects the dial options.
type clientConfig struct {
	timeout time.Duration
}

// ClientOption configures Dial.
type ClientOption func(*clientConfig)

// WithRequestTimeout bounds each round trip that carries no context
// deadline of its own. Zero (the default) means unbounded.
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.timeout = d }
}

// Dial connects to an interchange server, honouring ctx during connection
// establishment.
func Dial(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	var cfg clientConfig
	for _, o := range opts {
		o(&cfg)
	}
	tc, err := transport.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	tc.Timeout = cfg.timeout
	return &Client{c: tc}, nil
}

// Close says goodbye and closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// BytesSent reports accumulated request traffic, for transport-cost
// accounting.
func (c *Client) BytesSent() int64 { return c.c.BytesSent }

// BytesReceived reports accumulated response traffic.
func (c *Client) BytesReceived() int64 { return c.c.BytesReceived }

// wireConfig collects the per-call wire options.
type wireConfig struct {
	encoding transport.Encoding
	inline   bool
}

// WireOption configures document transfers (Client.Document, Client.Put).
type WireOption func(*wireConfig)

// WithBinaryWire ships the document in the compact binary encoding instead
// of the text default.
func WithBinaryWire() WireOption {
	return func(c *wireConfig) { c.encoding = transport.EncodingBinary }
}

// WithInline asks the server to inline data payloads into the tree, so the
// transfer is self-contained (no shared storage server). Fetch-only.
func WithInline() WireOption {
	return func(c *wireConfig) { c.inline = true }
}

func wireConfigOf(opts []WireOption) wireConfig {
	cfg := wireConfig{encoding: transport.EncodingText}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Document fetches the document registered under name. A missing name
// matches both ErrRemote and ErrNotFound under errors.Is.
func (c *Client) Document(ctx context.Context, name string, opts ...WireOption) (*Document, error) {
	cfg := wireConfigOf(opts)
	d, err := c.c.GetDoc(ctx, name, transport.GetDocOptions{
		Encoding: cfg.encoding, Inline: cfg.inline,
	})
	if err != nil {
		return nil, wireError(err)
	}
	return wrapDocument(d), nil
}

// Put registers a document under name on the server. Inlined payloads are
// absorbed into the server's store.
func (c *Client) Put(ctx context.Context, name string, d *Document, opts ...WireOption) error {
	cfg := wireConfigOf(opts)
	return wireError(c.c.PutDoc(ctx, name, d.doc, cfg.encoding))
}

// Block fetches a data block by name or content address. A missing block
// matches both ErrRemote and ErrNotFound under errors.Is.
func (c *Client) Block(ctx context.Context, name string) (*Block, error) {
	b, err := c.c.GetBlock(ctx, name)
	if err != nil {
		return nil, wireError(err)
	}
	return b, nil
}

// PutBlock stores a block on the server, returning its content address.
func (c *Client) PutBlock(ctx context.Context, b *Block) (string, error) {
	id, err := c.c.PutBlock(ctx, b)
	if err != nil {
		return "", wireError(err)
	}
	return id, nil
}

// List returns the names of documents the server offers, sorted.
func (c *Client) List(ctx context.Context) ([]string, error) {
	names, err := c.c.ListDocs(ctx)
	if err != nil {
		return nil, wireError(err)
	}
	return names, nil
}
