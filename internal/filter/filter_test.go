package filter

import (
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/units"
)

// fixture builds a news-like document plus a store with real synthetic
// blocks: big video, audio, image, text caption.
func fixture(t *testing.T) (*core.Document, *media.Store) {
	t.Helper()
	store := media.NewStore()
	video := media.CaptureVideo("scene.vid", 4, 1600, 1200, 50, 1)
	audio := media.CaptureAudio("voice.aud", 1000, 8000, 440, 2)
	img := media.CaptureImage("painting.img", 800, 600, 3)
	store.Put(video)
	store.Put(audio)
	store.Put(img)

	root := core.NewPar().SetName("news")
	root.Add(
		core.NewExt().SetName("scene").
			SetAttr("channel", attr.ID("video")).
			SetAttr("file", attr.String("scene.vid")).
			SetAttr("duration", attr.Quantity(units.MS(1000))),
		core.NewExt().SetName("voice").
			SetAttr("channel", attr.ID("sound")).
			SetAttr("file", attr.String("voice.aud")).
			SetAttr("duration", attr.Quantity(units.MS(1000))),
		core.NewExt().SetName("painting").
			SetAttr("channel", attr.ID("graphic")).
			SetAttr("file", attr.String("painting.img")).
			SetAttr("duration", attr.Quantity(units.MS(800))),
		core.NewImm([]byte("Gestolen van Goghs...")).SetName("cap").
			SetAttr("channel", attr.ID("captions")).
			SetAttr("duration", attr.Quantity(units.MS(600))),
	)
	d, err := core.NewDocument(root)
	if err != nil {
		t.Fatal(err)
	}
	cd := core.NewChannelDict()
	cd.Define(core.Channel{Name: "video", Medium: core.MediumVideo, Rates: units.Rates{FrameRate: 50}})
	cd.Define(core.Channel{Name: "sound", Medium: core.MediumAudio, Rates: units.Rates{SampleRate: 8000}})
	cd.Define(core.Channel{Name: "graphic", Medium: core.MediumImage})
	cd.Define(core.Channel{Name: "captions", Medium: core.MediumText})
	d.SetChannels(cd)
	return d, store
}

func TestWorkstationTransforms(t *testing.T) {
	d, store := fixture(t)
	fm, err := Evaluate(d, store, Workstation1991)
	if err != nil {
		t.Fatal(err)
	}
	if !fm.Supportable() {
		t.Fatalf("workstation cannot support the news:\n%s", fm)
	}
	pass, transform, drop := fm.Counts()
	if drop != 0 {
		t.Errorf("drops on workstation: %d", drop)
	}
	// 1600x1200@50fps video needs downres (to 800x600) and subsample (to 25).
	var sceneDec *Decision
	for i := range fm.Decisions {
		if fm.Decisions[i].Node.Name() == "scene" {
			sceneDec = &fm.Decisions[i]
		}
	}
	if sceneDec == nil || sceneDec.Action != Transform {
		t.Fatalf("scene decision = %+v", sceneDec)
	}
	kinds := map[TransformKind]int64{}
	for _, tr := range sceneDec.Transforms {
		kinds[tr.Kind] = tr.Param
	}
	if kinds[Downres] != 1 {
		t.Errorf("scene downres = %d, want 1 halving", kinds[Downres])
	}
	if kinds[Subsample] != 2 {
		t.Errorf("scene subsample = %d, want 2", kinds[Subsample])
	}
	if pass == 0 || transform == 0 {
		t.Errorf("counts: pass=%d transform=%d", pass, transform)
	}
}

func TestTextTerminalDropsContinuousMedia(t *testing.T) {
	d, store := fixture(t)
	fm, err := Evaluate(d, store, TextTerminal)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Supportable() {
		t.Error("terminal claims to support video")
	}
	_, _, drop := fm.Counts()
	if drop != 3 { // video, audio, image dropped; caption passes
		t.Errorf("drops = %d, want 3\n%s", drop, fm)
	}
	for _, dec := range fm.Decisions {
		if dec.Node.Name() == "cap" && dec.Action != Pass {
			t.Errorf("caption decision = %+v", dec)
		}
	}
}

func TestApplyRealizesTransforms(t *testing.T) {
	d, store := fixture(t)
	fm, err := Evaluate(d, store, Workstation1991)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(fm, store)
	if err != nil {
		t.Fatal(err)
	}
	scene, ok := out.GetByName("scene.vid")
	if !ok {
		t.Fatal("transformed scene missing")
	}
	if scene.Width() != 800 || scene.Height() != 600 {
		t.Errorf("scene = %dx%d", scene.Width(), scene.Height())
	}
	if rate, _ := scene.Descriptor.GetInt(media.DescFrameRate); rate != 25 {
		t.Errorf("scene rate = %d", rate)
	}
	// Transformed payload is smaller.
	orig, _ := store.GetByName("scene.vid")
	if len(scene.Payload) >= len(orig.Payload) {
		t.Errorf("transform did not shrink payload: %d vs %d",
			len(scene.Payload), len(orig.Payload))
	}
	// Untransformed audio passes through unchanged.
	voice, ok := out.GetByName("voice.aud")
	if !ok || voice.ID == "" {
		t.Fatal("voice missing")
	}
	origVoice, _ := store.GetByName("voice.aud")
	if voice.ID != origVoice.ID {
		t.Error("pass-through block changed")
	}
}

func TestBandwidthVerdict(t *testing.T) {
	d, store := fixture(t)
	tight := Profile{Name: "tight", BandwidthBytesPerSec: 1024}
	fm, err := Evaluate(d, store, tight)
	if err != nil {
		t.Fatal(err)
	}
	if fm.BandwidthOK || fm.Supportable() {
		t.Errorf("1KB/s device claims support (needs %d B/s)", fm.BandwidthNeeded)
	}
	roomy := Profile{Name: "roomy", BandwidthBytesPerSec: 1 << 30}
	fm2, err := Evaluate(d, store, roomy)
	if err != nil {
		t.Fatal(err)
	}
	if !fm2.BandwidthOK || !fm2.Supportable() {
		t.Errorf("1GB/s device refuses support (needs %d B/s)", fm2.BandwidthNeeded)
	}
}

func TestMissingDescriptorDrops(t *testing.T) {
	d, store := fixture(t)
	ghost := core.NewExt().SetName("ghost").
		SetAttr("channel", attr.ID("video")).
		SetAttr("file", attr.String("missing.vid"))
	d.Root.AddChild(ghost)
	fm, err := Evaluate(d, store, Workstation1991)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Supportable() {
		t.Error("document with missing descriptor claimed supportable")
	}
	found := false
	for _, dec := range fm.Decisions {
		if dec.Node == ghost && dec.Action == Drop &&
			strings.Contains(dec.Reason, "missing.vid") {
			found = true
		}
	}
	if !found {
		t.Errorf("ghost not dropped:\n%s", fm)
	}
}

func TestExtWithoutFileDrops(t *testing.T) {
	d, store := fixture(t)
	bare := core.NewExt().SetName("bare").SetAttr("channel", attr.ID("video"))
	d.Root.AddChild(bare)
	fm, err := Evaluate(d, store, Workstation1991)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Supportable() {
		t.Error("file-less ext claimed supportable")
	}
}

func TestImmMediumAttribute(t *testing.T) {
	d, store := fixture(t)
	// An immediate node carrying audio on a terminal: dropped.
	beep := core.NewImm([]byte{1, 2, 3}).SetName("beep").
		SetAttr("channel", attr.ID("captions")).
		SetAttr("medium", attr.ID("audio"))
	d.Root.AddChild(beep)
	fm, err := Evaluate(d, store, TextTerminal)
	if err != nil {
		t.Fatal(err)
	}
	dropped := false
	for _, dec := range fm.Decisions {
		if dec.Node == beep && dec.Action == Drop {
			dropped = true
		}
	}
	if !dropped {
		t.Error("audio imm node not dropped on terminal")
	}
}

func TestProfileSupports(t *testing.T) {
	if !Workstation1991.Supports(core.MediumVideo) {
		t.Error("unrestricted profile rejects video")
	}
	if TextTerminal.Supports(core.MediumVideo) {
		t.Error("terminal supports video")
	}
	if !TextTerminal.Supports(core.MediumText) {
		t.Error("terminal rejects text")
	}
}

func TestFilterMapString(t *testing.T) {
	d, store := fixture(t)
	fm, err := Evaluate(d, store, Laptop1991)
	if err != nil {
		t.Fatal(err)
	}
	s := fm.String()
	for _, want := range []string{"laptop", "supportable", "B/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestTransformSpecStrings(t *testing.T) {
	if (TransformSpec{Kind: Quantize, Param: 4}).String() != "quantize(4)" {
		t.Error("TransformSpec.String broken")
	}
	for _, k := range []TransformKind{Quantize, Downres, Subsample} {
		if k.String() == "" {
			t.Error("empty TransformKind string")
		}
	}
	for _, a := range []Action{Pass, Transform, Drop} {
		if a.String() == "" {
			t.Error("empty Action string")
		}
	}
}
