package media

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/attr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/fsio"
)

// Filesystem persistence for block stores: payloads live in
// content-addressed files, and a CMIF manifest document records names,
// media and descriptors — the document structure describing the data, per
// the paper's separation of structure from payload.
//
// Layout:
//
//	dir/manifest.cmif      (seq (ext (name "...") (id "...") (medium ...)
//	                             (descriptor [...])) ...)
//	dir/blocks/<id>.bin    raw payloads
const manifestName = "manifest.cmif"

// SaveDir writes the store to dir, creating it if needed. The write is
// crash-safe: every payload file and the manifest go through a temp file,
// an fsync and an atomic rename, with the manifest renamed last — so a
// crash mid-save leaves either the previous manifest (naming only files
// that still exist) or the new one (naming only files already durable),
// never a torn manifest that bricks LoadDir.
func SaveDir(s *Store, dir string) error {
	blockDir := filepath.Join(dir, "blocks")
	if err := os.MkdirAll(blockDir, 0o755); err != nil {
		return fmt.Errorf("media: %w", err)
	}
	manifest := core.NewSeq().SetName("manifest")
	for _, name := range s.Names() {
		b, ok := s.GetByName(name)
		if !ok {
			continue
		}
		// Payload files skip the per-file directory sync; the single
		// SyncDir below makes them all durable before the manifest —
		// which names them — commits.
		if err := fsio.WriteFileNoDirSync(filepath.Join(blockDir, b.ID+".bin"), b.Payload, 0o644); err != nil {
			return fmt.Errorf("media: %w", err)
		}
		entry := core.NewExt().
			SetAttr("name", attr.String(b.Name)).
			SetAttr("id", attr.String(b.ID)).
			SetAttr("medium", attr.ID(b.Medium.String()))
		var items []attr.Item
		for _, p := range b.Descriptor.Pairs() {
			items = append(items, attr.Named(p.Name, p.Value))
		}
		entry.Attrs.Set("descriptor", attr.ListOf(items...))
		manifest.AddChild(entry)
	}
	if err := fsio.SyncDir(blockDir); err != nil {
		return fmt.Errorf("media: %w", err)
	}
	text, err := codec.EncodeNode(manifest, codec.WriteOptions{Form: codec.Conventional})
	if err != nil {
		return fmt.Errorf("media: %w", err)
	}
	if err := fsio.WriteFileAtomic(filepath.Join(dir, manifestName), []byte(text), 0o644); err != nil {
		return fmt.Errorf("media: %w", err)
	}
	return nil
}

// LoadDir reads a store previously written by SaveDir, verifying every
// payload against its content address. Payloads are read whole into
// heap slices.
func LoadDir(dir string) (*Store, error) { return loadDir(dir, os.ReadFile) }

// LoadDirMapped is LoadDir with payloads memory-mapped read-only
// instead of copied onto the heap (on platforms with mmap; elsewhere,
// and under the cmif_nommap build tag, it behaves exactly like
// LoadDir). Serving a block then moves bytes page-cache → conn with no
// intermediate heap copy: the store keeps the mapped slice (PutOwned),
// GetRef hands it out uncloned, and the transport writes it with
// writev. Mappings live until process exit; the content-address check
// still reads every page once up front.
func LoadDirMapped(dir string) (*Store, error) { return loadDir(dir, mapFile) }

// MmapSupported reports whether LoadDirMapped actually maps files in
// this build, or falls back to plain reads.
func MmapSupported() bool { return mmapSupported }

func loadDir(dir string, readPayload func(string) ([]byte, error)) (*Store, error) {
	text, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("media: %w", err)
	}
	manifest, err := codec.ParseNode(string(text))
	if err != nil {
		return nil, fmt.Errorf("media: manifest: %w", err)
	}
	s := NewStore()
	for _, entry := range manifest.Children() {
		name, ok := entry.Attrs.GetString("name")
		if !ok {
			return nil, fmt.Errorf("media: manifest entry without name")
		}
		id, ok := entry.Attrs.GetString("id")
		if !ok {
			return nil, fmt.Errorf("media: manifest entry %q without id", name)
		}
		mediumID, _ := entry.Attrs.GetID("medium")
		medium, err := core.ParseMedium(mediumID)
		if err != nil {
			return nil, fmt.Errorf("media: manifest entry %q: %w", name, err)
		}
		var desc attr.List
		if items, ok := entry.Attrs.GetList("descriptor"); ok {
			for _, it := range items {
				if it.Name == "" {
					return nil, fmt.Errorf("media: manifest entry %q has unnamed descriptor attr", name)
				}
				desc.Set(it.Name, it.Value)
			}
		}
		payload, err := readPayload(filepath.Join(dir, "blocks", id+".bin"))
		if err != nil {
			return nil, fmt.Errorf("media: manifest entry %q: %w", name, err)
		}
		b := NewBlock(name, medium, payload, desc)
		if b.ID != id {
			return nil, fmt.Errorf("media: block %q content address mismatch (%s != %s)",
				name, b.ID[:12], id[:12])
		}
		// PutOwned: the payload was read (or mapped) for this store and
		// is never touched again; cloning it would defeat the mapped
		// zero-copy path and double peak memory on the plain path.
		s.PutOwned(b, true)
	}
	return s, nil
}
