// Package transport implements document interchange: "The tree is a
// human-readable document that can be passed from one location to another
// with or without the underlying data" (section 5). A length-prefixed TCP
// protocol moves documents and data blocks between a server and clients,
// standing in for the Amoeba-based distributed system of section 6
// (DESIGN.md substitution 3).
//
// Two transport shapes matter for the paper's claims:
//
//   - structure-only: the tree travels alone; external nodes keep their
//     file attributes and the receiver resolves them against its own (or a
//     remote) store;
//   - inlined: external nodes are converted to immediate nodes carrying the
//     payload, "for transporting (large amounts of) data across
//     environments that have no common storage server" (section 5.1).
package transport

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/media"
)

// Inline converts every resolvable external node of a clone of doc into an
// immediate node carrying the block payload. Nodes whose file attribute
// cannot be resolved are left external (the receiver may have its own
// store); strict mode turns that into an error.
func Inline(doc *core.Document, store *media.Store, strict bool) (*core.Document, error) {
	clone := doc.Clone()
	var err error
	clone.Root.Walk(func(n *core.Node) bool {
		if err != nil || n.Type != core.Ext {
			return err == nil
		}
		file, ok := clone.FileOf(n)
		if !ok {
			if strict {
				err = fmt.Errorf("transport: %s has no file attribute", n.PathString())
			}
			return err == nil
		}
		blk, ok := store.GetByName(file)
		if !ok {
			if strict {
				err = fmt.Errorf("transport: block %q not in store", file)
			}
			return err == nil
		}
		n.Type = core.Imm
		n.Data = blk.Payload
		n.Attrs.Del("file")
		n.Attrs.Del("slice") // ranges were relative to the external file
		n.Attrs.Set("medium", attr.ID(blk.Medium.String()))
		// Carry the descriptor so the receiver can rebuild its store.
		descItems := make([]attr.Item, 0, blk.Descriptor.Len())
		for _, p := range blk.Descriptor.Pairs() {
			descItems = append(descItems, attr.Named(p.Name, p.Value))
		}
		n.Attrs.Set("descriptor", attr.ListOf(descItems...))
		n.Attrs.Set("origname", attr.String(blk.Name))
		return true
	})
	if err != nil {
		return nil, err
	}
	if refreshErr := clone.Refresh(); refreshErr != nil {
		return nil, refreshErr
	}
	return clone, nil
}

// Extract reverses Inline on a clone of doc: immediate nodes carrying an
// "origname" marker are converted back to external nodes and their payloads
// deposited into store.
func Extract(doc *core.Document, store *media.Store) (*core.Document, error) {
	clone := doc.Clone()
	var err error
	clone.Root.Walk(func(n *core.Node) bool {
		if err != nil || n.Type != core.Imm {
			return err == nil
		}
		name, ok := n.Attrs.GetString("origname")
		if !ok {
			return true
		}
		mediumID, _ := n.Attrs.GetID("medium")
		medium, parseErr := core.ParseMedium(mediumID)
		if parseErr != nil {
			err = fmt.Errorf("transport: %s: %w", n.PathString(), parseErr)
			return false
		}
		var desc attr.List
		if items, ok := n.Attrs.GetList("descriptor"); ok {
			for _, it := range items {
				if it.Name == "" {
					err = fmt.Errorf("transport: %s: unnamed descriptor entry", n.PathString())
					return false
				}
				desc.Set(it.Name, it.Value)
			}
		}
		blk := media.NewBlock(name, medium, n.Data, desc)
		store.Put(blk)
		n.Type = core.Ext
		n.Data = nil
		n.Attrs.Set("file", attr.String(name))
		n.Attrs.Del("descriptor")
		n.Attrs.Del("origname")
		n.Attrs.Del("medium")
		return true
	})
	if err != nil {
		return nil, err
	}
	if refreshErr := clone.Refresh(); refreshErr != nil {
		return nil, refreshErr
	}
	return clone, nil
}
