package cmif

import (
	"context"

	"repro/internal/experiments"
	"repro/internal/newsdoc"
)

// NewsConfig sizes the built-in evening-news corpus (the paper's running
// example, sections 4 and 5.3.4).
type NewsConfig = newsdoc.Config

// BuildNews generates the five-channel evening-news broadcast with its
// synthetic media store. A zero config gets three stories.
func BuildNews(cfg NewsConfig) (*Document, *Store, error) {
	d, store, err := newsdoc.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	return wrapDocument(d), store, nil
}

// Experiment pairs an experiment id (T1, F1..F10, A1, A2) with its
// generator, regenerating one artifact of the paper's evaluation.
type Experiment = experiments.Experiment

// ExperimentTable is one experiment's tabular result.
type ExperimentTable = experiments.Table

// Experiments lists every reproduction experiment in paper order.
func Experiments() []Experiment { return experiments.All() }

// StoreBenchConfig sizes the storage/fetch concurrent-load scenarios. The
// zero value is usable (64 blocks of 16 KiB, 1 and 16 clients, 256 fetches
// per client).
type StoreBenchConfig = experiments.StoreBenchConfig

// StoreBenchReport is the machine-readable result set of RunStoreBench;
// cmifbench writes it to BENCH_store.json.
type StoreBenchReport = experiments.StoreBenchReport

// RunStoreBench measures the storage/fetch path under concurrent load
// against an in-process server: per-block vs batched round trips, cold vs
// warmed shared cache, at each configured client count.
func RunStoreBench(ctx context.Context, cfg StoreBenchConfig) (*StoreBenchReport, error) {
	return experiments.StoreBench(ctx, cfg)
}
