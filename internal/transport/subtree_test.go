package transport

// Subtree-filtered subscriptions (opSubscribe [name, subtree]): the
// filter predicate tables, and the wire contract — filtered watchers
// receive every generation (zero-record deltas for irrelevant edits), so
// the contiguity invariant survives filtering.

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestPathTouchesTable(t *testing.T) {
	cases := []struct {
		p, subtree string
		want       bool
	}{
		{"/a/b", "/a", true},        // inside
		{"/a", "/a", true},          // the root itself
		{"/a", "/a/b", true},        // ancestor of the subtree
		{"/ab", "/a", false},        // component boundary respected
		{"/a", "/ab", false},        // both directions
		{"/x", "/a", false},         // disjoint
		{"", "/a", true},            // empty path: conservative
		{"/", "/a", true},           // root path normalizes to ""
		{"/a/b/", "/a", true},       // trailing slash insignificant
		{"/a/b/c", "/a/b", true},    // deep inside
		{"/a/b", "/a/b/c/d", true},  // deep ancestor
		{"/news/#2", "/news", true}, // positional components match textually
		{"/news/#2", "/news/#3", false},
	}
	for _, tc := range cases {
		if got := pathTouches(tc.p, normalizeSubtree(tc.subtree)); got != tc.want {
			t.Errorf("pathTouches(%q, %q) = %v, want %v", tc.p, tc.subtree, got, tc.want)
		}
	}
	// An unfiltered subscription (subtree "") touches everything.
	if !pathTouches("/anything", normalizeSubtree("")) || !pathTouches("/anything", normalizeSubtree("/")) {
		t.Error("empty subtree must match every path")
	}
}

func TestFilterRecordsConservative(t *testing.T) {
	recs := setDuration(t, "/intro", 100)
	if got := filterRecords(recs, "/voice"); len(got) != 0 {
		t.Errorf("irrelevant record survived the filter: %v", got)
	}
	if got := filterRecords(recs, "/intro"); len(got) != 1 {
		t.Errorf("relevant record filtered out")
	}
	// A record carrying neither a path nor a destination is delivered,
	// never silently dropped.
	blank := []core.ChangeRecord{{}}
	if got := filterRecords(blank, "/intro"); len(got) != 1 {
		t.Error("pathless record must be delivered conservatively")
	}
}

func TestSubscribeSubtreeWire(t *testing.T) {
	addr, _ := liveServer(t, nil)
	ctx := context.Background()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	filtered, err := c.SubscribeDocSubtree(ctx, "news", "/intro")
	if err != nil {
		t.Fatalf("SubscribeDocSubtree: %v", err)
	}
	defer filtered.Close()
	full, err := c.SubscribeDoc(ctx, "news")
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if filtered.Doc == nil || filtered.Doc.Root.Name() != "news" {
		t.Fatal("filtered subscription must still open with the full snapshot")
	}

	// An edit outside the subtree: the full watcher gets the record, the
	// filtered watcher gets a zero-record delta with the SAME
	// authoritative generations — the stream stays contiguous.
	gen, err := c.SubmitEdit(ctx, "news", setDuration(t, "/voice", 150))
	if err != nil {
		t.Fatal(err)
	}
	fev, err := full.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fev.Kind != SubDelta || len(fev.Records) != 1 || fev.Gen != gen {
		t.Fatalf("full watcher: kind=%v records=%d gen=%d, want delta/1/%d", fev.Kind, len(fev.Records), fev.Gen, gen)
	}
	ev, err := filtered.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != SubDelta || len(ev.Records) != 0 {
		t.Fatalf("filtered watcher: kind=%v records=%d, want an empty delta", ev.Kind, len(ev.Records))
	}
	if ev.FromGen != fev.FromGen || ev.Gen != fev.Gen {
		t.Fatalf("filtered delta gens [%d,%d] diverge from authoritative [%d,%d]",
			ev.FromGen, ev.Gen, fev.FromGen, fev.Gen)
	}

	// An edit inside the subtree reaches both, record included, and the
	// filtered stream continues exactly where the empty delta left off.
	gen2, err := c.SubmitEdit(ctx, "news", setDuration(t, "/intro", 250))
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := filtered.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Kind != SubDelta || len(ev2.Records) != 1 {
		t.Fatalf("filtered watcher missed an in-subtree edit: kind=%v records=%d", ev2.Kind, len(ev2.Records))
	}
	if ev2.FromGen != ev.Gen || ev2.Gen != gen2 {
		t.Fatalf("filtered stream not contiguous: [%d,%d] after gen %d", ev2.FromGen, ev2.Gen, ev.Gen)
	}
	if ev2.Records[0].Path != "/intro" {
		t.Fatalf("filtered record path %q, want /intro", ev2.Records[0].Path)
	}

	// An edit touching the subtree's ancestor chain (the root) is
	// relevant to every watcher.
	if _, err := c.SubmitEdit(ctx, "news", setDuration(t, "/", 900)); err != nil {
		t.Fatal(err)
	}
	ev3, err := filtered.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev3.Records) != 1 {
		t.Fatalf("ancestor edit filtered out: %d records", len(ev3.Records))
	}
}
