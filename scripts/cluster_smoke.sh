#!/bin/sh
# Cluster crash-tolerance smoke: soak a live 3-node cluster under the
# standard soak gate while one replica is SIGKILLed mid-load, then prove
# the cluster's durability story end to end:
#
#   1. three cmifcluster nodes (sync=always, replication 3) gossip into
#      a cluster; the soak driver runs its steady phases plus overload
#      flood against node 1 under the same SLO gate as soak-smoke;
#   2. node 2 is killed -9 in the middle of the steady phase — the gate
#      still holds, so the kill cost the client nothing;
#   3. after the soak, every document the driver acked must be served by
#      node 3 (a different survivor): zero acknowledged-write loss;
#   4. node 2 restarts on its own data directory, rejoins, resyncs, and
#      must serve one of those documents within the recovery SLO.
#
# Binaries are taken from $BIN (default ./bin) — build them first:
#   go build -race -o bin/ ./cmd/cmifcluster ./cmd/cmifsoak ./cmd/cmifget
# Run from the repository root: ./scripts/cluster_smoke.sh
set -eu

BIN=${BIN:-bin}
N1=127.0.0.1:7931
N2=127.0.0.1:7932
N3=127.0.0.1:7933
M1=127.0.0.1:7941
SOAK_SECONDS=${SOAK_SECONDS:-30}
KILL_AFTER=${KILL_AFTER:-12}
RECOVERY_SLO=${RECOVERY_SLO:-30}

work=$(mktemp -d)
n1=""; n2=""; n3=""
cleanup() {
    for pid in $n1 $n2 $n3; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in $n1 $n2 $n3; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$work"
}
trap cleanup EXIT

# A node is "up" once it answers a listing; give each a bounded window.
wait_up() {
    i=0
    until "$BIN"/cmifget -addr "$1" -timeout 2s list >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 50 ] && { echo "node $1 never came up" >&2; exit 1; }
        sleep 0.2
    done
}

"$BIN"/cmifcluster -addr "$N1" -metrics "$M1" -data "$work/n1" \
    -sync always -gossip-interval 100ms \
    -max-concurrent 8 -max-queue 32 &
n1=$!
wait_up "$N1"
"$BIN"/cmifcluster -addr "$N2" -data "$work/n2" -peers "$N1" \
    -sync always -gossip-interval 100ms &
n2=$!
"$BIN"/cmifcluster -addr "$N3" -data "$work/n3" -peers "$N1" \
    -sync always -gossip-interval 100ms &
n3=$!
wait_up "$N2"
wait_up "$N3"

# SIGKILL node 2 mid-steady-phase; the soak gate must hold regardless.
(
    sleep "$KILL_AFTER"
    echo "cluster_smoke: killing node 2 (-9)"
    kill -9 "$n2" 2>/dev/null || true
) &
killer=$!

# -overload-conns 2 (a quarter of the default flood) keeps the
# admitted-tail SLO honest: three race-built daemons share the runner,
# so the default flood would measure CPU starvation, not shedding
# quality. Two connections (16 pipelined requests each) still
# oversubscribe the 8-slot admission bound and force real shedding.
"$BIN"/cmifsoak -addr "$N1" -metrics-url "http://$M1/metrics" \
    -seconds "$SOAK_SECONDS" -overload-seconds 5 -rounds 1 \
    -overload-conns 2 \
    -out BENCH_cluster_ci.json
wait "$killer"
wait "$n2" 2>/dev/null || true
n2=""

# Zero acked-write loss: every document the soak acked is listed by a
# survivor the soak never spoke to, and every one of them is fetchable
# from it. The soak gate already failed above if any write errored, so
# the listing is exactly the acked set.
names=$("$BIN"/cmifget -addr "$N3" list)
count=$(printf '%s\n' "$names" | grep -c . || true)
if [ "$count" -eq 0 ]; then
    echo "survivor $N3 lists no documents after the soak" >&2
    exit 1
fi
for name in $names; do
    if ! "$BIN"/cmifget -addr "$N3" doc "$name" >/dev/null; then
        echo "acked document $name lost: survivor $N3 cannot serve it" >&2
        exit 1
    fi
done
echo "cluster_smoke: survivor $N3 serves all $count acked documents"

# Recovery SLO: the killed node restarts on its own data directory,
# rejoins via gossip, resyncs what it missed, and serves.
first=$(printf '%s\n' "$names" | head -1)
"$BIN"/cmifcluster -addr "$N2" -data "$work/n2" -peers "$N1" \
    -sync always -gossip-interval 100ms &
n2=$!
deadline=$((RECOVERY_SLO * 5))
i=0
until "$BIN"/cmifget -addr "$N2" -timeout 2s doc "$first" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge "$deadline" ]; then
        echo "restarted node $N2 did not serve $first within ${RECOVERY_SLO}s" >&2
        exit 1
    fi
    sleep 0.2
done
echo "cluster_smoke: node 2 rejoined and serves again — gate passed"
