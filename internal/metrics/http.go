package metrics

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler serves the registry over HTTP: the Prometheus text exposition
// format by default, JSON when the request asks for it with
// ?format=json or an Accept: application/json header. Any path works, so
// one handler backs both /metrics and /metrics.json on cmifd's metrics
// listener.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Prometheus()))
	})
}

// wantsJSON decides the response format: an explicit ?format=json, a
// .json path suffix, or a JSON Accept header.
func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	if strings.HasSuffix(req.URL.Path, ".json") {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}
