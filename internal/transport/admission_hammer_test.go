package transport

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestAdmissionHammer saturates the admission queue from many
// connections at once and verifies the three overload invariants at the
// heart of graceful degradation: admitted requests complete with bounded
// latency, shed requests get their busy error promptly instead of
// rotting in a queue, and the whole server drains back to its baseline
// goroutine count afterwards.
func TestAdmissionHammer(t *testing.T) {
	baseline := runtime.NumGoroutine()

	_, store := fixture(t)
	reg := NewRegistry(store)
	srv := NewServer(reg)
	srv.Admission = Admission{MaxConcurrent: 2, MaxQueue: 4, MaxWait: 25 * time.Millisecond}
	srv.Metrics = NewServerMetrics(metrics.NewRegistry())
	// A few milliseconds of synthetic work per fetch pins the two slots,
	// so the flood below reliably overflows the four-deep queue.
	srv.testOpDelay = func(op byte) {
		if op == opGetBlk {
			time.Sleep(3 * time.Millisecond)
		}
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const (
		conns   = 8
		perConn = 8
		opsPer  = 25
	)
	var (
		mu       sync.Mutex
		admitted []time.Duration
		busy     []time.Duration
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	clients := make([]*Client, 0, conns)
	for i := 0; i < conns; i++ {
		c, err := DialContext(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		c.Timeout = 10 * time.Second
		for g := 0; g < perConn; g++ {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				for n := 0; n < opsPer; n++ {
					start := time.Now()
					_, err := c.GetBlock(ctx, "anchor.vid")
					lat := time.Since(start)
					mu.Lock()
					switch {
					case err == nil:
						admitted = append(admitted, lat)
					case errors.Is(err, ErrBusy):
						busy = append(busy, lat)
					default:
						mu.Unlock()
						errCh <- fmt.Errorf("unexpected error: %w", err)
						return
					}
					mu.Unlock()
				}
			}(c)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if len(admitted) == 0 {
		t.Fatal("flood was never admitted: shedding must degrade service, not deny it")
	}
	if len(busy) == 0 {
		t.Fatalf("flood of %d concurrent requests against a %d-slot/%d-queue server shed nothing",
			conns*perConn, srv.Admission.MaxConcurrent, srv.Admission.MaxQueue)
	}
	// Admitted requests pay at most the queue wait plus a handful of
	// 3 ms service slots plus scheduling noise; shed requests must answer
	// at least as fast. The bounds are deliberately loose for CI boxes —
	// the invariant is "bounded", not "fast".
	if p := quantileDur(admitted, 0.99); p > 2*time.Second {
		t.Errorf("admitted p99 %v not bounded", p)
	}
	if p := quantileDur(busy, 0.99); p > 1*time.Second {
		t.Errorf("shed p99 %v; busy errors must be prompt", p)
	}

	snap := srv.Metrics.reg.Snapshot()
	var sheds int64
	for name, val := range snap.Counters {
		if strings.HasPrefix(name, "cmif_busy_rejections_total") {
			sheds += val
		}
	}
	if sheds != int64(len(busy)) {
		t.Errorf("server counted %d sheds, clients saw %d busy errors", sheds, len(busy))
	}

	for _, c := range clients {
		c.Close()
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything the hammer spawned — handler goroutines, per-connection
	// readers and writers, admission waiters — must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after drain: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// quantileDur returns the q-quantile of the (unsorted) latency sample.
func quantileDur(sample []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}
