package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSchedBenchSmoke(t *testing.T) {
	cfg := SchedBenchConfig{
		Leaves: []int{256}, Arms: 4, ArcDensities: []int{40}, Edits: 6,
	}
	report, err := SchedBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 scenarios", len(report.Rows))
	}
	if !report.SchedulesIdentical {
		t.Fatal("schedules diverged between solver paths")
	}
	if report.Env.GoMaxProcs < 1 || report.Env.GoVersion == "" {
		t.Fatalf("env not captured: %+v", report.Env)
	}
	for _, row := range report.Rows {
		if row.Scenario == "full-parallel" && row.Components != 4 {
			t.Errorf("full-parallel components = %d, want 4", row.Components)
		}
		if row.Scenario == "edit-incremental" && row.ComponentsResolvedPerOp > 1.01 {
			t.Errorf("edit-incremental resolved %.2f components per edit, want 1",
				row.ComponentsResolvedPerOp)
		}
		if row.MSPerOp <= 0 {
			t.Errorf("%s: non-positive ms/op", row.Scenario)
		}
	}
	if report.IncrementalSpeedup < 1 {
		t.Errorf("incremental slower than full re-solve: %.2fx", report.IncrementalSpeedup)
	}

	// The report must round-trip through its JSON form (the committed
	// file) without losing the gated fields.
	data, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SchedBenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.IncrementalSpeedup != report.IncrementalSpeedup || !back.SchedulesIdentical {
		t.Fatal("gated fields lost in JSON round trip")
	}
}

func TestCheckSchedReportCatchesDivergence(t *testing.T) {
	report := &SchedBenchReport{
		Env:                BenchEnv{GoMaxProcs: 8, GoVersion: "go1.24"},
		SchedulesIdentical: false,
		IncrementalSpeedup: 50,
		ParallelSpeedup:    3,
		Rows: []SchedBenchRow{
			{Leaves: 100, Arms: 4, Scenario: "full-single", MakespanMS: 10},
			{Leaves: 100, Arms: 4, Scenario: "full-parallel", Components: 4, MakespanMS: 11},
		},
	}
	v := CheckSchedReport(report, true)
	if len(v) == 0 {
		t.Fatal("divergent report passed the gate")
	}
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "schedules_identical") {
		t.Errorf("missing equality violation in %q", joined)
	}
	if !strings.Contains(joined, "makespan mismatch") {
		t.Errorf("missing makespan violation in %q", joined)
	}
}

func TestCheckSchedReportEnforcesCommittedFloors(t *testing.T) {
	report := &SchedBenchReport{
		Env:                BenchEnv{GoMaxProcs: 8, GoVersion: "go1.24"},
		SchedulesIdentical: true,
		IncrementalSpeedup: 3, // below the committed 10x floor
		ParallelSpeedup:    1, // below the committed 2x floor at GOMAXPROCS>=4
		Rows: []SchedBenchRow{
			{Leaves: 100, Arms: 4, Scenario: "full-parallel", Components: 4, MakespanMS: 10},
		},
	}
	v := CheckSchedReport(report, true)
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "incremental speedup") {
		t.Errorf("missing incremental floor violation in %q", joined)
	}
	if !strings.Contains(joined, "parallel speedup") {
		t.Errorf("missing parallel floor violation in %q", joined)
	}
	// The same numbers from a 1-core run are acceptable for the parallel
	// floor (there was nothing to parallelize) but not the incremental one.
	report.Env.GoMaxProcs = 1
	joined = strings.Join(CheckSchedReport(report, true), "\n")
	if strings.Contains(joined, "parallel speedup") {
		t.Errorf("parallel floor applied at GOMAXPROCS=1: %q", joined)
	}
	if !strings.Contains(joined, "incremental speedup") {
		t.Errorf("incremental floor must not depend on cores: %q", joined)
	}
}

func TestCheckStoreReportCatchesWireRegression(t *testing.T) {
	report := &StoreBenchReport{
		Env:    BenchEnv{GoMaxProcs: 4, GoVersion: "go1.24"},
		Config: StoreBenchConfig{Clients: []int{1}},
		Rows: []StoreBenchRow{
			// A per-block client that somehow made extra round trips.
			{Scenario: "per-block-cold", Clients: 1, Fetches: 64, WireCalls: 90},
			// Batching that stopped batching.
			{Scenario: "batched-cold", Clients: 1, Fetches: 64, WireCalls: 64},
			// A warm cache that fetched more than cold.
			{Scenario: "per-block-warm", Clients: 1, Fetches: 64, WireCalls: 99},
		},
		SpeedupWarmBatched: 0.5,
	}
	v := CheckStoreReport(report, false)
	if len(v) < 4 {
		t.Fatalf("expected wire, batch, warm and speedup violations, got %v", v)
	}
}

func TestLoadReportsRejectGarbage(t *testing.T) {
	if _, err := LoadStoreReport("/nonexistent/BENCH_store.json"); err == nil {
		t.Error("missing store report loaded")
	}
	if _, err := LoadSchedReport("/nonexistent/BENCH_sched.json"); err == nil {
		t.Error("missing sched report loaded")
	}
}
