package core

import (
	"fmt"
	"strings"

	"repro/internal/attr"
	"repro/internal/units"
)

// EndPoint selects the beginning or the end of an event block. Section
// 5.3.2: the type field indicates "whether this synchronization arc concerns
// the beginning or the end of the event block being synchronized", and
// reference times are "specified relative to the start or end of a
// controlling event".
type EndPoint int

const (
	// Begin refers to the start of an event.
	Begin EndPoint = iota
	// End refers to the completion of an event.
	End
)

// String returns "begin" or "end".
func (e EndPoint) String() string {
	if e == End {
		return "end"
	}
	return "begin"
}

// ParseEndPoint maps "begin"/"end" to an EndPoint.
func ParseEndPoint(s string) (EndPoint, error) {
	switch s {
	case "begin":
		return Begin, nil
	case "end":
		return End, nil
	default:
		return Begin, fmt.Errorf("core: unknown endpoint %q", s)
	}
}

// Strictness is the May/Must component of an arc's type field. "May
// synchronization is an indication ... that the requested type of
// synchronization is desirable but not essential. ... Must synchronization
// is a stricter form": the environment should do all it can to honour it,
// even at the expense of overall system performance.
type Strictness int

const (
	// Must synchronization has to be honoured.
	Must Strictness = iota
	// May synchronization is desirable but droppable.
	May
)

// String returns "must" or "may".
func (s Strictness) String() string {
	if s == May {
		return "may"
	}
	return "must"
}

// ParseStrictness maps "must"/"may" to a Strictness.
func ParseStrictness(s string) (Strictness, error) {
	switch s {
	case "must":
		return Must, nil
	case "may":
		return May, nil
	default:
		return Must, fmt.Errorf("core: unknown strictness %q", s)
	}
}

// SyncArc is the explicit synchronization arc of Figure 9:
//
//	type  source  offset  destination  min_delay  max_delay
//
// The arc is directed "from the controlling event to the controlled event".
// Source and Dest are relative path names resolved against the node carrying
// the arc. The timing semantics are the synchronization equation of section
// 5.3.1:
//
//	tref + δ ≤ tactual ≤ tref + ε
//
// where tref is the time of SrcEnd of the source event plus Offset, δ is
// MinDelay (≤ 0; negative allows starting the target early) and ε is
// MaxDelay (≥ 0, possibly infinite).
type SyncArc struct {
	// DestEnd says whether the arc constrains the beginning or the end of
	// the controlled event.
	DestEnd EndPoint
	// Strict is the Must/May component.
	Strict Strictness
	// Source is the relative path of the controlling event ("" = self).
	Source string
	// SrcEnd selects the reference point on the controlling event.
	SrcEnd EndPoint
	// Offset is an integral positive offset from SrcEnd of the controlling
	// node, in media-dependent units.
	Offset units.Quantity
	// Dest is the relative path of the controlled event ("" = self).
	Dest string
	// MinDelay is δ, the minimum acceptable delay (zero or negative).
	MinDelay units.Quantity
	// MaxDelay is ε, the maximum tolerable delay (zero, positive or
	// infinite — see units.Infinite).
	MaxDelay units.Quantity
	// Cond is an extension beyond the paper (its section 3.2 sketches
	// "conditional synchronization arcs" as the route to hyper documents):
	// a predicate over an environment, e.g. "lang=en". An arc with a false
	// condition is ignored. Empty means unconditional. See internal/hyper.
	Cond string
}

// IsHard reports whether the arc requests hard synchronization (δ = ε = 0):
// "A minimum delay of 0 units indicates a hard synchronization relationship."
func (a SyncArc) IsHard() bool {
	return a.MinDelay.Value == 0 && a.MaxDelay.Value == 0
}

// String renders the arc in the tabular order of Figure 9.
func (a SyncArc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s %s) %s.%s +%s -> %s.%s [%s, ",
		a.DestEnd, a.Strict, pathOrSelf(a.Source), a.SrcEnd, a.Offset,
		pathOrSelf(a.Dest), a.DestEnd, a.MinDelay)
	if units.IsInfinite(a.MaxDelay) {
		b.WriteString("inf]")
	} else {
		fmt.Fprintf(&b, "%s]", a.MaxDelay)
	}
	return b.String()
}

func pathOrSelf(p string) string {
	if p == "" {
		return "."
	}
	return p
}

// Validate checks the arc's field-level rules from section 5.3.1/5.3.2:
// offset non-negative, δ ≤ 0, ε ≥ 0.
func (a SyncArc) Validate() error {
	if a.Offset.Value < 0 {
		return fmt.Errorf("core: arc offset must be a positive integral offset, got %v", a.Offset)
	}
	if a.MinDelay.Value > 0 {
		return fmt.Errorf("core: positive min_delay %v has no meaning", a.MinDelay)
	}
	if a.MaxDelay.Value < 0 {
		return fmt.Errorf("core: negative max_delay %v has no meaning", a.MaxDelay)
	}
	return nil
}

// Value encodes the arc as an attribute value, the form carried inside a
// node's "syncarcs" list:
//
//	((type (begin must)) (src "../audio") (srcend end) (offset 40ms)
//	 (dest "caption/intro") (min -10ms) (max 100ms))
//
// Zero-valued fields are omitted except type, src and dest.
func (a SyncArc) Value() attr.Value {
	items := []attr.Item{
		attr.Named("type", attr.VList(attr.ID(a.DestEnd.String()), attr.ID(a.Strict.String()))),
		attr.Named("src", attr.String(a.Source)),
	}
	if a.SrcEnd != Begin {
		items = append(items, attr.Named("srcend", attr.ID(a.SrcEnd.String())))
	}
	if !a.Offset.IsZero() {
		items = append(items, attr.Named("offset", attr.Quantity(a.Offset)))
	}
	items = append(items, attr.Named("dest", attr.String(a.Dest)))
	if !a.MinDelay.IsZero() {
		items = append(items, attr.Named("min", attr.Quantity(a.MinDelay)))
	}
	if units.IsInfinite(a.MaxDelay) {
		items = append(items, attr.Named("max", attr.ID("inf")))
	} else if !a.MaxDelay.IsZero() {
		items = append(items, attr.Named("max", attr.Quantity(a.MaxDelay)))
	}
	if a.Cond != "" {
		items = append(items, attr.Named("cond", attr.String(a.Cond)))
	}
	return attr.ListOf(items...)
}

// ParseArc decodes one arc from its attribute value form.
func ParseArc(v attr.Value) (SyncArc, error) {
	items, ok := v.AsList()
	if !ok {
		return SyncArc{}, fmt.Errorf("core: sync arc must be a list, got %v", v.Kind())
	}
	var a SyncArc
	seen := map[string]bool{}
	for _, it := range items {
		if it.Name == "" {
			return SyncArc{}, fmt.Errorf("core: sync arc contains unnamed field")
		}
		if seen[it.Name] {
			return SyncArc{}, fmt.Errorf("core: sync arc repeats field %q", it.Name)
		}
		seen[it.Name] = true
		switch it.Name {
		case "type":
			tItems, ok := it.Value.AsList()
			if !ok || len(tItems) != 2 {
				return SyncArc{}, fmt.Errorf("core: arc type must be (endpoint strictness)")
			}
			epID, _ := tItems[0].Value.AsID()
			stID, _ := tItems[1].Value.AsID()
			ep, err := ParseEndPoint(epID)
			if err != nil {
				return SyncArc{}, err
			}
			st, err := ParseStrictness(stID)
			if err != nil {
				return SyncArc{}, err
			}
			a.DestEnd, a.Strict = ep, st
		case "src":
			s, err := pathText(it.Value)
			if err != nil {
				return SyncArc{}, fmt.Errorf("core: arc src: %w", err)
			}
			a.Source = s
		case "dest":
			s, err := pathText(it.Value)
			if err != nil {
				return SyncArc{}, fmt.Errorf("core: arc dest: %w", err)
			}
			a.Dest = s
		case "srcend":
			id, _ := it.Value.AsID()
			ep, err := ParseEndPoint(id)
			if err != nil {
				return SyncArc{}, err
			}
			a.SrcEnd = ep
		case "offset":
			q, ok := it.Value.AsNumber()
			if !ok {
				return SyncArc{}, fmt.Errorf("core: arc offset must be a number")
			}
			a.Offset = q
		case "min":
			q, ok := it.Value.AsNumber()
			if !ok {
				return SyncArc{}, fmt.Errorf("core: arc min must be a number")
			}
			a.MinDelay = q
		case "max":
			if id, ok := it.Value.AsID(); ok && id == "inf" {
				a.MaxDelay = units.InfiniteQuantity()
				continue
			}
			q, ok := it.Value.AsNumber()
			if !ok {
				return SyncArc{}, fmt.Errorf("core: arc max must be a number or inf")
			}
			a.MaxDelay = q
		case "cond":
			s, ok := it.Value.AsString()
			if !ok {
				return SyncArc{}, fmt.Errorf("core: arc cond must be a string")
			}
			a.Cond = s
		default:
			return SyncArc{}, fmt.Errorf("core: unknown arc field %q", it.Name)
		}
	}
	if !seen["type"] {
		return SyncArc{}, fmt.Errorf("core: sync arc missing type field")
	}
	return a, nil
}

// pathText accepts a STRING or ID value as a path.
func pathText(v attr.Value) (string, error) {
	if s, ok := v.AsString(); ok {
		return s, nil
	}
	if id, ok := v.AsID(); ok {
		return id, nil
	}
	return "", fmt.Errorf("path must be STRING or ID, got %v", v.Kind())
}

// Arcs decodes the node's explicit synchronization arcs from its "syncarcs"
// attribute. A missing attribute yields no arcs: "If detailed
// synchronization is not required, then the synchronization arc can be
// omitted from the description."
func (n *Node) Arcs() ([]SyncArc, error) {
	v, ok := n.Attrs.Get("syncarcs")
	if !ok {
		return nil, nil
	}
	items, ok := v.AsList()
	if !ok {
		return nil, fmt.Errorf("core: syncarcs on %s must be a list", n.PathString())
	}
	arcs := make([]SyncArc, 0, len(items))
	for i, it := range items {
		a, err := ParseArc(it.Value)
		if err != nil {
			return nil, fmt.Errorf("core: syncarcs[%d] on %s: %w", i, n.PathString(), err)
		}
		arcs = append(arcs, a)
	}
	return arcs, nil
}

// AddArc appends an arc to the node's syncarcs attribute.
func (n *Node) AddArc(a SyncArc) *Node {
	var items []attr.Item
	if v, ok := n.Attrs.Get("syncarcs"); ok {
		items, _ = v.AsList()
		items = append([]attr.Item(nil), items...)
	}
	items = append(items, attr.Item{Value: a.Value()})
	n.Attrs.Set("syncarcs", attr.ListOf(items...))
	return n
}

// ResolveArc resolves the arc's source and destination paths against the
// carrying node, returning the endpoints.
func (n *Node) ResolveArc(a SyncArc) (src, dst *Node, err error) {
	src, err = n.Resolve(a.Source)
	if err != nil {
		return nil, nil, err
	}
	dst, err = n.Resolve(a.Dest)
	if err != nil {
		return nil, nil, err
	}
	return src, dst, nil
}
