package media

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	s.Put(CaptureVideo("clip.vid", 4, 8, 8, 25, 1))
	s.Put(CaptureAudio("voice.aud", 100, 8000, 440, 2))
	s.Put(CaptureText("label.txt", "Story 3. Paintings", "en"))

	if err := SaveDir(s, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), s.Len())
	}
	for _, name := range s.Names() {
		a, _ := s.GetByName(name)
		b, ok := back.GetByName(name)
		if !ok {
			t.Errorf("%s missing after reload", name)
			continue
		}
		if a.ID != b.ID || a.Medium != b.Medium || !a.Descriptor.Equal(b.Descriptor) {
			t.Errorf("%s mismatch after reload", name)
		}
	}
	if err := back.VerifyAll(); err != nil {
		t.Error(err)
	}
}

func TestLoadDirDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	b := CaptureText("x.txt", "original content", "en")
	s.Put(b)
	if err := SaveDir(s, dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload on disk.
	path := filepath.Join(dir, "blocks", b.ID+".bin")
	if err := os.WriteFile(path, []byte("tampered!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("tampered payload loaded without error")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory loaded")
	}
	// Unparseable manifest.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, manifestName), []byte("(junk"), 0o644)
	if _, err := LoadDir(dir); err == nil {
		t.Error("bad manifest loaded")
	}
	// Manifest referencing a missing payload.
	dir2 := t.TempDir()
	s := NewStore()
	blk := CaptureText("y.txt", "content", "en")
	s.Put(blk)
	if err := SaveDir(s, dir2); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir2, "blocks", blk.ID+".bin"))
	if _, err := LoadDir(dir2); err == nil {
		t.Error("missing payload loaded")
	}
}
