package baseline

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// FlatEvent is one absolutely-timed entry of a flat timeline.
type FlatEvent struct {
	Channel string
	Name    string
	Start   time.Duration
	Dur     time.Duration
}

// End returns the event's absolute end time.
func (e FlatEvent) End() time.Duration { return e.Start + e.Dur }

// FlatDocument is the Muse-style baseline: a flat, absolutely-timed event
// list per document.
type FlatDocument struct {
	Events []FlatEvent
	// TouchedEvents counts events whose times were rewritten by edits:
	// the edit-cost metric of experiment A1.
	TouchedEvents int
}

// Flatten converts a scheduled CMIF document into the flat model — what an
// export to a Muse-like system would produce. All structure is lost.
func Flatten(s *sched.Schedule) *FlatDocument {
	fd := &FlatDocument{}
	for ch, slots := range s.ChannelTimeline() {
		for _, slot := range slots {
			fd.Events = append(fd.Events, FlatEvent{
				Channel: ch,
				Name:    slot.Node.PathString(),
				Start:   slot.Start,
				Dur:     slot.End - slot.Start,
			})
		}
	}
	fd.sort()
	return fd
}

func (fd *FlatDocument) sort() {
	sort.SliceStable(fd.Events, func(i, j int) bool {
		if fd.Events[i].Start != fd.Events[j].Start {
			return fd.Events[i].Start < fd.Events[j].Start
		}
		return fd.Events[i].Channel < fd.Events[j].Channel
	})
}

// Len reports the number of events.
func (fd *FlatDocument) Len() int { return len(fd.Events) }

// Makespan returns the latest end time.
func (fd *FlatDocument) Makespan() time.Duration {
	var max time.Duration
	for _, e := range fd.Events {
		if e.End() > max {
			max = e.End()
		}
	}
	return max
}

// InsertAt inserts an event on a channel at an absolute time, shifting
// every event at or after that time (on every channel — the timeline is
// global) later by the new event's duration. This is the flat model's
// fundamental cost: no structural locality.
func (fd *FlatDocument) InsertAt(ev FlatEvent) {
	for i := range fd.Events {
		if fd.Events[i].Start >= ev.Start {
			fd.Events[i].Start += ev.Dur
			fd.TouchedEvents++
		}
	}
	fd.Events = append(fd.Events, ev)
	fd.TouchedEvents++
	fd.sort()
}

// Lengthen grows the named event by delta, shifting every later event.
func (fd *FlatDocument) Lengthen(name string, delta time.Duration) error {
	idx := -1
	for i := range fd.Events {
		if fd.Events[i].Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("baseline: no event %q", name)
	}
	boundary := fd.Events[idx].End()
	fd.Events[idx].Dur += delta
	fd.TouchedEvents++
	for i := range fd.Events {
		if i != idx && fd.Events[i].Start >= boundary {
			fd.Events[i].Start += delta
			fd.TouchedEvents++
		}
	}
	fd.sort()
	return nil
}

// Delete removes the named event and closes the gap it leaves.
func (fd *FlatDocument) Delete(name string) error {
	idx := -1
	for i := range fd.Events {
		if fd.Events[i].Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("baseline: no event %q", name)
	}
	gone := fd.Events[idx]
	fd.Events = append(fd.Events[:idx], fd.Events[idx+1:]...)
	fd.TouchedEvents++
	for i := range fd.Events {
		if fd.Events[i].Start >= gone.End() {
			fd.Events[i].Start -= gone.Dur
			fd.TouchedEvents++
		}
	}
	fd.sort()
	return nil
}

// WireSize estimates serialized size: one fixed-size record per event plus
// the name bytes. Used by the A1 transport comparison.
func (fd *FlatDocument) WireSize() int {
	size := 0
	for _, e := range fd.Events {
		size += 8 + 8 + len(e.Channel) + len(e.Name) + 8
	}
	return size
}

// CMIFEditCost measures the CMIF side of experiment A1: the number of tree
// nodes touched to apply the same edit structurally. Inserting a leaf into
// a seq touches the new node and its parent — O(1) regardless of document
// size — after which times are re-derived by the solver.
type CMIFEditCost struct {
	NodesTouched int
	ResolveMS    float64
}

// InsertLeafCMIF inserts a leaf under the named seq node and reports the
// edit cost. The document is edited in place.
func InsertLeafCMIF(d *core.Document, seqName string, leaf *core.Node) (CMIFEditCost, error) {
	parent := d.Root.FindByName(seqName)
	if parent == nil {
		return CMIFEditCost{}, fmt.Errorf("baseline: no node %q", seqName)
	}
	if parent.Type.IsLeaf() {
		return CMIFEditCost{}, fmt.Errorf("baseline: %q is a leaf", seqName)
	}
	start := time.Now()
	parent.AddChild(leaf)
	cost := CMIFEditCost{NodesTouched: 2}
	cost.ResolveMS = float64(time.Since(start)) / float64(time.Millisecond)
	return cost, nil
}

// Expressiveness is the structure-only comparison: for each synchronization
// pattern the paper's evening news needs, whether each model can state it.
type Expressiveness struct {
	Pattern       string
	CMIF          bool
	FlatTimeline  bool
	StructureOnly bool
}

// ExpressivenessTable enumerates the paper's required patterns (section 4
// lists them for the news example) against the three models.
func ExpressivenessTable() []Expressiveness {
	return []Expressiveness{
		{Pattern: "start synchronization across all blocks", CMIF: true, FlatTimeline: true, StructureOnly: false},
		{Pattern: "block synchronization between video and audio", CMIF: true, FlatTimeline: true, StructureOnly: false},
		{Pattern: "offset synchronization (graphic after audio start)", CMIF: true, FlatTimeline: true, StructureOnly: false},
		{Pattern: "delay windows (min/max tolerance)", CMIF: true, FlatTimeline: false, StructureOnly: false},
		{Pattern: "must/may strictness", CMIF: true, FlatTimeline: false, StructureOnly: false},
		{Pattern: "device-independent re-timing (transportability)", CMIF: true, FlatTimeline: false, StructureOnly: false},
		{Pattern: "local edits without global rewrites", CMIF: true, FlatTimeline: false, StructureOnly: true},
		{Pattern: "hierarchical structure (stories, segments)", CMIF: true, FlatTimeline: false, StructureOnly: true},
		{Pattern: "data/structure separation (descriptors)", CMIF: true, FlatTimeline: false, StructureOnly: true},
	}
}
