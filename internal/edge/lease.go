package edge

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// DefaultLeaseTTL is how long an idle, unwatched document stays leased
// before the edge releases its upstream subscription and drops the
// cached copy. Access renews implicitly: an expired document re-leases
// on its next read.
const DefaultLeaseTTL = 2 * time.Minute

// Lease state machine. A document at the edge is in exactly one of
// three states:
//
//	cold    — not in the registry; no upstream subscription. The first
//	          downstream access (GetDoc, Subscribe, SubmitEdit relay)
//	          drives LoadDoc, which subscribes upstream and registers
//	          the snapshot: cold → leased.
//	leased  — registered locally with a live upstream subscription (the
//	          lease). Upstream edits arrive as deltas and re-apply into
//	          the registry, fanning out to downstream subscribers; the
//	          document is as fresh as the change stream. A delta gap,
//	          apply failure or dropped connection re-snapshots in place
//	          (still leased). The TTL sweeper moves an idle, unwatched
//	          document leased → cold; an unrecoverable upstream loss
//	          moves it leased → stale.
//	stale   — the upstream subscription died and could not be
//	          re-established. The document leaves the registry (watchers
//	          are shed and resynchronize), so the next access retries
//	          cold → leased rather than serving bytes of unknown age.
//	          Stale is therefore transient: it is observable only as
//	          the shed reason on the way back to cold.
//
// Blocks never participate: content addressing means a cached block is
// immortal, and only LRU pressure evicts it.

// endReasonLeaseExpired sheds downstream watchers when an idle lease
// expires (they resubscribe, re-driving LoadDoc). Unwatched documents
// expire silently.
const endReasonLeaseExpired = "lease_expired"

// endReasonLeaseLost sheds downstream watchers when the upstream
// subscription died and resubscribing failed.
const endReasonLeaseLost = "lease_lost"

// lease is one leased document's table entry. The pump goroutine owns
// gen; lastUse is touched from request handlers.
type lease struct {
	name    string
	cancel  context.CancelFunc
	done    chan struct{}
	lastUse atomic.Int64 // unix nanos of the last explicit access
	gen     uint64       // upstream generation the pump last applied
}

func (l *lease) touch() { l.lastUse.Store(time.Now().UnixNano()) }

// leaseTable tracks the edge's live leases, with singleflight on
// establishment so a thundering herd of first accesses subscribes
// upstream once.
type leaseTable struct {
	mu      sync.Mutex
	leases  map[string]*lease
	pending map[string]chan struct{}
}

func newLeaseTable() *leaseTable {
	return &leaseTable{
		leases:  make(map[string]*lease),
		pending: make(map[string]chan struct{}),
	}
}

// Len reports the live lease count.
func (lt *leaseTable) Len() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.leases)
}

// leaseDoc ensures the document under name is leased: a hit renews the
// existing lease, a miss establishes one (subscribe upstream, register
// the snapshot, start the invalidation pump), and concurrent misses for
// one name collapse into a single upstream subscribe. Reports whether
// the document exists upstream.
func (e *Edge) leaseDoc(name string) bool {
	lt := e.lt
	for {
		lt.mu.Lock()
		if l, ok := lt.leases[name]; ok {
			if _, exists := e.reg.GetDoc(name); exists {
				l.touch()
				lt.mu.Unlock()
				return true
			}
			// A racing eviction dropped the document out from under a
			// live lease (expiry losing to a concurrent re-lease). Tear
			// the broken lease down and establish a fresh one.
			delete(lt.leases, name)
			lt.mu.Unlock()
			l.cancel()
			continue
		}
		if ch, ok := lt.pending[name]; ok {
			lt.mu.Unlock()
			select {
			case <-ch:
				continue // the leader finished; re-check the table
			case <-e.baseCtx.Done():
				return false
			}
		}
		ch := make(chan struct{})
		lt.pending[name] = ch
		lt.mu.Unlock()

		ok := e.establishLease(name)
		lt.mu.Lock()
		delete(lt.pending, name)
		lt.mu.Unlock()
		close(ch)
		return ok
	}
}

// establishLease subscribes upstream, registers the snapshot locally and
// starts the pump. Reports false when the document does not exist
// upstream (or upstream is unreachable).
func (e *Edge) establishLease(name string) bool {
	ctx, cancel := context.WithCancel(e.baseCtx)
	sub, err := e.subscribeUpstream(ctx, name)
	if err != nil {
		cancel()
		return false
	}
	l := &lease{name: name, cancel: cancel, done: make(chan struct{})}
	l.touch()
	l.gen = sub.Gen
	// Registering at the upstream generation keeps downstream watchers on
	// the origin's generation numbers, so a writer can correlate the
	// generation its forwarded edit returned with the deltas it observes.
	e.reg.PutDocAt(name, sub.Doc, sub.Gen)
	e.lt.mu.Lock()
	e.lt.leases[name] = l
	e.lt.mu.Unlock()
	e.met.docLeases.Inc()
	e.wg.Add(1)
	go e.pumpLease(ctx, l, sub)
	return true
}

// subscribeUpstream opens the upstream v3 subscription that is the
// lease, bounding only the handshake with the upstream timeout.
func (e *Edge) subscribeUpstream(ctx context.Context, name string) (*transport.DocSubscription, error) {
	hctx, hcancel := context.WithTimeout(ctx, e.upstreamTimeout())
	defer hcancel()
	return e.pick().SubscribeDoc(hctx, name)
}

// pumpLease is the invalidation loop: it drains one upstream
// subscription, folding every event into the edge registry — deltas
// re-apply through EditDoc (advancing the edge's own generations and
// fanning out to downstream watchers), snapshots re-register wholesale.
// A gap, an apply failure, a shed or a dead connection re-subscribes and
// re-snapshots in place; only when that fails does the lease end and the
// document leave the registry.
func (e *Edge) pumpLease(ctx context.Context, l *lease, sub *transport.DocSubscription) {
	defer e.wg.Done()
	defer close(l.done)
	resync := func() bool {
		_ = sub.Close()
		if ctx.Err() != nil {
			// Cancelled (expiry or shutdown): whoever cancelled owns the
			// registry state; touching it here would race their DropDoc.
			return false
		}
		next, err := e.subscribeUpstream(ctx, l.name)
		if err != nil {
			if ctx.Err() == nil {
				e.endLease(l, endReasonLeaseLost)
			}
			return false
		}
		sub = next
		l.gen = sub.Gen
		e.reg.PutDocAt(l.name, sub.Doc, sub.Gen)
		e.met.leaseResyncs.Inc()
		return true
	}
	for {
		ev, err := sub.Recv(ctx)
		if err != nil {
			if ctx.Err() != nil {
				// Cancelled: expiry or shutdown already settled the state.
				_ = sub.Close()
				return
			}
			if !resync() {
				return
			}
			continue
		}
		switch ev.Kind {
		case transport.SubSnapshot:
			l.gen = ev.Gen
			e.reg.PutDocAt(l.name, ev.Doc, ev.Gen)
		case transport.SubDelta:
			if ev.FromGen != l.gen {
				if !resync() {
					return
				}
				continue
			}
			if len(ev.Records) > 0 {
				gen, err := e.reg.EditDoc(l.name, ev.Records)
				if err != nil || gen != ev.Gen {
					// The replica failed to re-execute what the origin
					// accepted, or advanced to a different generation:
					// it diverged — rebuild from a snapshot.
					if !resync() {
						return
					}
					continue
				}
			}
			l.gen = ev.Gen
		case transport.SubEnd:
			if !resync() {
				return
			}
		}
	}
}

// endLease moves a lease to stale-then-cold: the table entry goes, the
// document leaves the registry, and downstream watchers are shed with
// reason so they resynchronize (re-driving LoadDoc — which will retry
// upstream afresh).
func (e *Edge) endLease(l *lease, reason string) {
	e.lt.mu.Lock()
	owner := e.lt.leases[l.name] == l
	if owner {
		delete(e.lt.leases, l.name)
	}
	e.lt.mu.Unlock()
	if !owner {
		// A replacement lease already took the name over; dropping the
		// document now would evict the replacement's fresh copy.
		return
	}
	e.reg.DropDoc(l.name, reason)
	e.met.leasesLost.Inc()
}

// sweepLeases is the TTL loop: every quarter-TTL it releases leases that
// are idle past the TTL and have no downstream watchers. The document
// drops with the lease — cache eviction, not deletion — and the next
// access re-leases.
func (e *Edge) sweepLeases(ctx context.Context) {
	defer e.wg.Done()
	ttl := e.leaseTTL()
	tick := ttl / 4
	if tick < time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-ttl).UnixNano()
		var expired []*lease
		e.lt.mu.Lock()
		for name, l := range e.lt.leases {
			if l.lastUse.Load() < cutoff && e.reg.SubscribersOf(name) == 0 {
				delete(e.lt.leases, name)
				expired = append(expired, l)
			}
		}
		e.lt.mu.Unlock()
		for _, l := range expired {
			// The pump must be fully gone before the document drops:
			// DropDoc racing a resync's PutDoc would strand an orphan
			// replica that nothing invalidates.
			l.cancel()
			<-l.done
			e.reg.DropDoc(l.name, endReasonLeaseExpired)
			e.met.leaseExpiries.Inc()
		}
	}
}
