package media

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	s.Put(CaptureVideo("clip.vid", 4, 8, 8, 25, 1))
	s.Put(CaptureAudio("voice.aud", 100, 8000, 440, 2))
	s.Put(CaptureText("label.txt", "Story 3. Paintings", "en"))

	if err := SaveDir(s, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), s.Len())
	}
	for _, name := range s.Names() {
		a, _ := s.GetByName(name)
		b, ok := back.GetByName(name)
		if !ok {
			t.Errorf("%s missing after reload", name)
			continue
		}
		if a.ID != b.ID || a.Medium != b.Medium || !a.Descriptor.Equal(b.Descriptor) {
			t.Errorf("%s mismatch after reload", name)
		}
	}
	if err := back.VerifyAll(); err != nil {
		t.Error(err)
	}
}

func TestSaveDirAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	s.Put(CaptureText("a.txt", "first corpus", "en"))
	if err := SaveDir(s, dir); err != nil {
		t.Fatal(err)
	}
	// Overwrite the directory with a different corpus: the manifest is
	// replaced through a temp file + rename, and no temp residue may
	// survive a successful save.
	s2 := NewStore()
	s2.Put(CaptureText("a.txt", "second corpus, re-pointing the name", "en"))
	s2.Put(CaptureImage("b.img", 4, 4, 3))
	if err := SaveDir(s2, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != manifestName && e.Name() != "blocks" {
			t.Fatalf("SaveDir left unexpected file %q", e.Name())
		}
	}
	blockEntries, err := os.ReadDir(filepath.Join(dir, "blocks"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range blockEntries {
		if filepath.Ext(e.Name()) != ".bin" {
			t.Fatalf("SaveDir left temp residue %q in blocks/", e.Name())
		}
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := back.GetByName("a.txt"); got == nil || got.ID != mustGet(t, s2, "a.txt").ID {
		t.Fatal("re-pointed name did not survive the atomic replace")
	}
	if _, ok := back.GetByName("b.img"); !ok {
		t.Fatal("new block missing after atomic replace")
	}
}

func mustGet(t *testing.T, s *Store, name string) *Block {
	t.Helper()
	b, ok := s.GetByName(name)
	if !ok {
		t.Fatalf("fixture block %q missing", name)
	}
	return b
}

func TestLoadDirDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	b := CaptureText("x.txt", "original content", "en")
	s.Put(b)
	if err := SaveDir(s, dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload on disk.
	path := filepath.Join(dir, "blocks", b.ID+".bin")
	if err := os.WriteFile(path, []byte("tampered!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("tampered payload loaded without error")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory loaded")
	}
	// Unparseable manifest.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, manifestName), []byte("(junk"), 0o644)
	if _, err := LoadDir(dir); err == nil {
		t.Error("bad manifest loaded")
	}
	// Manifest referencing a missing payload.
	dir2 := t.TempDir()
	s := NewStore()
	blk := CaptureText("y.txt", "content", "en")
	s.Put(blk)
	if err := SaveDir(s, dir2); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir2, "blocks", blk.ID+".bin"))
	if _, err := LoadDir(dir2); err == nil {
		t.Error("missing payload loaded")
	}
}
